"""Repo-level pytest configuration shared by tests/ and benchmarks/."""

#: The sequence count `--runs-seeded` selects with no value — the CI depth.
CI_SEEDED_RUNS = 200


def pytest_addoption(parser):
    parser.addoption(
        "--runs-seeded",
        nargs="?",
        const=CI_SEEDED_RUNS,
        default=25,
        type=int,
        help=(
            "seeded operation sequences per view-invariant property test; "
            f"the bare flag selects the CI depth of {CI_SEEDED_RUNS}"
        ),
    )


def capped_runs(runs: int, ci_cap: int) -> int:
    """Cap heavyweight seeded suites at *ci_cap* for the CI depth, scaling
    proportionally beyond it — the nightly soak's ``--runs-seeded 1000``
    runs them at 5x CI depth instead of being pinned to the cap."""
    return min(runs, max(ci_cap, runs * ci_cap // CI_SEEDED_RUNS))


#: Seed fixtures of the property suites, with the per-suite CI caps (None =
#: uncapped).  Centralized so every suite scales off the same CI depth:
#: op_seed/live_seed/fleet_seed drive tests/test_view_invariants.py,
#: qr_seed/ae_seed drive tests/test_query_router.py, construct_seed drives
#: tests/test_construction_parallel.py, store_seed drives
#: tests/test_model_triples_columnar.py, kgq_seed drives
#: tests/test_live_executor_vectorized.py, fd_seed drives
#: tests/test_front_door.py, rpq_seed/rpq_fleet_seed drive
#: tests/test_live_rpq.py, ivm_seed/join_fleet_seed drive
#: tests/test_join_ivm.py.  The heavyweight caps exist because
#: those sequences spin up serving-fleet worker threads (fleet_seed,
#: qr_seed, fd_seed, rpq_fleet_seed, join_fleet_seed), audit full checksum
#: maps per round (ae_seed), or run the full linking pipeline twice per
#: sequence (construct_seed).
SEED_FIXTURES = {
    "op_seed": None,
    "live_seed": 60,
    "fleet_seed": 60,
    "qr_seed": 40,
    "ae_seed": 30,
    "construct_seed": 40,
    "store_seed": None,
    "kgq_seed": None,
    "fd_seed": 40,
    "rpq_seed": None,
    "rpq_fleet_seed": 30,
    "ivm_seed": None,
    "join_fleet_seed": 30,
}


def pytest_generate_tests(metafunc):
    runs = int(metafunc.config.getoption("--runs-seeded"))
    for fixture, ci_cap in SEED_FIXTURES.items():
        if fixture in metafunc.fixturenames:
            count = runs if ci_cap is None else capped_runs(runs, ci_cap)
            metafunc.parametrize(fixture, range(count))
