"""Repo-level pytest configuration shared by tests/ and benchmarks/."""


def pytest_addoption(parser):
    parser.addoption(
        "--runs-seeded",
        nargs="?",
        const=200,
        default=25,
        type=int,
        help=(
            "seeded operation sequences per view-invariant property test; "
            "the bare flag selects the CI depth of 200"
        ),
    )
