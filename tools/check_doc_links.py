#!/usr/bin/env python
"""Docs link lint: every relative link resolves, every doc is reachable.

Checks two invariants over ``README.md`` and ``docs/*.md``:

1. every relative markdown link ``[text](target)`` points at a file that
   exists (absolute ``http(s)://`` links and pure ``#fragment`` anchors are
   skipped; a ``target#fragment`` suffix is stripped before the existence
   check);
2. every file under ``docs/`` is reachable from ``README.md`` by following
   relative links — no orphaned documentation.

Exits non-zero listing every violation, so the CI lint job fails on dangling
links or unreferenced docs.  Run from the repo root (or pass it as argv[1]):

    python tools/check_doc_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline links [text](target); images ![alt](target) match too via the [text]
# part.  Reference-style links are not used in this repo.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def links_in(path: Path) -> list[str]:
    text = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    return LINK_RE.findall(text)


def is_relative(target: str) -> bool:
    return "://" not in target and not target.startswith(("#", "mailto:"))


def check(root: Path) -> list[str]:
    errors: list[str] = []
    readme = root / "README.md"
    docs = sorted((root / "docs").glob("*.md"))
    if not readme.is_file():
        return ["README.md is missing"]

    # Invariant 1: every relative link in README.md and docs/*.md resolves.
    resolved: dict[Path, set[Path]] = {}
    for source in [readme, *docs]:
        targets: set[Path] = set()
        for raw in links_in(source):
            if not is_relative(raw):
                continue
            target = (source.parent / raw.split("#", 1)[0]).resolve()
            if not target.exists():
                rel = source.relative_to(root)
                errors.append(f"{rel}: dangling link -> {raw}")
            else:
                targets.add(target)
        resolved[source.resolve()] = targets

    # Invariant 2: every docs/*.md is reachable from README.md.
    reachable = {readme.resolve()}
    frontier = [readme.resolve()]
    while frontier:
        source = frontier.pop()
        for target in resolved.get(source, set()):
            if target not in reachable:
                reachable.add(target)
                frontier.append(target)
    for doc in docs:
        if doc.resolve() not in reachable:
            errors.append(
                f"{doc.relative_to(root)}: not reachable from README.md's "
                "subsystem map"
            )
    return errors


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path.cwd()
    errors = check(root)
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"\n{len(errors)} docs link problem(s)", file=sys.stderr)
        return 1
    checked = 1 + len(sorted((root / 'docs').glob('*.md')))
    print(f"docs links OK ({checked} files checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
