"""Journal shipping: publish committed view deltas to subscriber replicas.

The :class:`JournalShipper` hangs off the primary
:class:`~repro.engine.views.ViewManager`'s journal-event hook.  Every
committed delta of a *shipped* view becomes a :class:`ShipmentBatch` — the
LSN-ranged entity delta plus the actual artifact rows for the changed
entities — persisted to the :class:`~repro.serving.journal_store.JournalStore`
(when one is attached) and published on the :class:`ReplicationBus` to every
subscribed replica.  From-scratch rebuilds ship as snapshot batches (the full
row set; incremental history restarts), and drops ship as drop batches.

Batches are chained: each delta batch carries ``prev_lsn``, the LSN of the
batch it extends.  A replica whose applied LSN does not reach ``prev_lsn``
has missed a shipment (backpressure drop, crash, late subscription) and must
resync — it pulls :meth:`JournalShipper.catchup_batch`, which serves the gap
from the persisted journal when it reaches back far enough and falls back to
a full snapshot otherwise.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Sequence

from repro.engine.views import JournalEvent, ViewDelta, ViewManager
from repro.engine.views import rows_by_subject as _rows_by_subject
from repro.errors import JournalGapError, ServingError
from repro.serving.journal_store import JournalStore


@dataclass(frozen=True)
class ShipmentBatch:
    """One per-view, LSN-ranged replication message.

    ``kind`` is ``"delta"`` (apply ``rows`` / ``delta.deleted`` on top of
    ``prev_lsn``), ``"snapshot"`` (``rows`` is the whole view; replace the
    served copy), or ``"drop"`` (stop serving the view).  ``rows`` maps the
    subject to its current artifact row; a subject in ``delta.changed`` with
    no row vanished from the artifact and must stop being served.
    """

    kind: str
    view_name: str
    revision: int
    lsn: int
    prev_lsn: int = 0
    delta: ViewDelta | None = None
    rows: tuple[dict, ...] = ()

    def rows_by_subject(self) -> dict[str, dict]:
        """The batch's rows keyed by subject.

        Memoized: the same batch object fans out to every subscribed replica,
        so the mapping is built once instead of once per replica apply.  The
        cache slips past the frozen dataclass via ``__dict__``; batch rows are
        never mutated after publication.
        """
        cached = self.__dict__.get("_rows_by_subject")
        if cached is None:
            cached = {row["subject"]: row for row in self.rows}
            self.__dict__["_rows_by_subject"] = cached
        return cached


class ReplicationBus:
    """Fan-out of shipment batches to subscribed replica nodes.

    Delivery is per-subscriber fire-and-forget: a failing or dead subscriber
    is counted (``delivery_errors``) and never blocks the other replicas or
    the publishing flush.  Gap detection on the replica side repairs any
    missed delivery.
    """

    def __init__(self) -> None:
        self.subscribers: dict[str, object] = {}
        self.batches_published = 0
        self.deliveries = 0
        self.delivery_failures = 0
        # Bounded: a replica left down for days must not grow memory.
        self.delivery_errors: deque[str] = deque(maxlen=256)

    def subscribe(self, node) -> None:
        """Add a replica node (anything with ``name`` and ``offer(batch)``)."""
        self.subscribers[node.name] = node

    def unsubscribe(self, name: str) -> None:
        """Remove a subscriber; undelivered batches surface as gaps."""
        self.subscribers.pop(name, None)

    def publish(self, batch: ShipmentBatch) -> int:
        """Deliver *batch* to every subscriber; returns successful deliveries."""
        self.batches_published += 1
        delivered = 0
        for name, node in list(self.subscribers.items()):
            try:
                node.offer(batch)
                delivered += 1
                self.deliveries += 1
            except Exception as exc:  # noqa: BLE001 - a dead replica must not stop the fleet
                self.delivery_failures += 1
                self.delivery_errors.append(f"{name} <- {batch.view_name}@{batch.lsn}: {exc}")
        return delivered


def rows_by_subject(artifact: object, view_name: str) -> dict[str, dict]:
    """Normalize a row-shaped artifact into a subject → row mapping.

    Accepts the two row shapes the platform produces: a sequence of dicts
    with a ``subject`` key (the live layer's contract) or a mapping whose
    values are such dicts.  Anything else cannot be shipped.  The shape
    contract itself is defined once, in
    :func:`repro.engine.views.rows_by_subject`; this wrapper only swaps the
    error class so serving callers keep catching :class:`ServingError`.
    """
    return _rows_by_subject(artifact, view_name, error=ServingError)


def rows_for_subjects(
    artifact: object, subjects: list[str], view_name: str
) -> dict[str, dict]:
    """The artifact rows of *subjects* only (a subject without a row is skipped).

    Subject-keyed dict artifacts — the platform's normal row shape — are
    indexed directly, keeping per-delta shipping O(|delta|) instead of
    O(|artifact|); sequence artifacts fall back to a full normalization.
    """
    if isinstance(artifact, dict):
        rows: dict[str, dict] = {}
        for subject in subjects:
            row = artifact.get(subject)
            if row is None:
                continue
            if not isinstance(row, dict) or "subject" not in row:
                raise ServingError(
                    f"view artifact {view_name!r} rows need a 'subject' key to be shipped"
                )
            rows[str(row["subject"])] = row
        return rows
    by_subject = rows_by_subject(artifact, view_name)
    return {s: by_subject[s] for s in subjects if s in by_subject}


class JournalShipper:
    """Primary-side publisher of per-view delta batches.

    Attach to a manager, then :meth:`ship_view` each row-shaped view that the
    fleet serves.  The shipper persists deltas through the journal store
    (restart durability) before publishing them on the bus (replica
    liveness), so a batch a replica missed can always be re-derived.
    """

    def __init__(
        self,
        manager: ViewManager,
        bus: ReplicationBus,
        journal_store: JournalStore | None = None,
    ) -> None:
        self.manager = manager
        self.bus = bus
        self.journal_store = journal_store
        self.shipped_views: dict[str, int] = {}       # view -> last shipped LSN
        self.batches_shipped = 0
        self.snapshots_shipped = 0
        manager.add_journal_listener(self._on_journal_event)

    def detach(self) -> None:
        """Stop listening to the manager entirely (fleet shutdown).

        Without this a stopped fleet would keep persisting and publishing on
        every later flush — and a restarted fleet would stack a second
        pipeline on top.
        """
        self.manager.remove_journal_listener(self._on_journal_event)
        self.shipped_views.clear()

    # -------------------------------------------------------------- #
    # shipping
    # -------------------------------------------------------------- #
    def ship_view(self, view_name: str) -> ShipmentBatch:
        """Start (or resume) shipping a view: publishes its snapshot batch.

        The snapshot also becomes the persisted journal's new baseline
        (history is truncated to the snapshot LSN): deltas that fell into an
        unshipped window were never persisted, so pre-snapshot history must
        not be trusted for catch-up.
        """
        self.shipped_views.setdefault(view_name, 0)
        return self._publish_snapshot(view_name)

    def unship_view(self, view_name: str) -> None:
        """Stop shipping a view (already-shipped batches stay applied).

        Deltas committed while unshipped are neither persisted nor
        published; re-shipping later snapshots over the hole (see
        :meth:`ship_view`), so no consumer can catch up through it.
        """
        self.shipped_views.pop(view_name, None)

    def snapshot_batch(self, view_name: str) -> ShipmentBatch:
        """A full-row snapshot of the view's current artifact.

        Rows are shallow-copied: replica workers read batches asynchronously
        and must not alias dicts a later flush may patch in place.
        """
        rows = rows_by_subject(self.manager.artifact(view_name), view_name)
        return ShipmentBatch(
            kind="snapshot",
            view_name=view_name,
            revision=self.manager.state_revision(view_name),
            lsn=self.manager.built_at_lsn(view_name),
            rows=tuple(dict(row) for row in rows.values()),
        )

    def _publish_snapshot(self, view_name: str) -> ShipmentBatch:
        """Snapshot-resync subscribers and re-baseline the persisted journal."""
        batch = self.snapshot_batch(view_name)
        if self.journal_store is not None:
            self.journal_store.record_truncate(view_name, batch.revision, batch.lsn)
        self.shipped_views[view_name] = batch.lsn
        self.bus.publish(batch)
        self.snapshots_shipped += 1
        return batch

    def repair_batch(
        self,
        view_name: str,
        subjects: Sequence[str],
        prev_lsn: int,
        snapshot: tuple[int, int, dict[str, dict]] | None = None,
    ) -> ShipmentBatch:
        """A targeted delta batch that re-ships only *subjects* from the primary.

        The anti-entropy repair path: the batch carries the primary's rows
        for the named subjects (a subject with no row is a delete — the
        primary no longer serves it), so a diverged replica converges by
        rewriting exactly the diverged rows instead of absorbing a full
        snapshot.  *snapshot* is the ``(lsn, revision, rows)`` the audit was
        taken against (:meth:`~repro.engine.views.ViewManager.view_rows_snapshot`
        is taken when omitted): the batch is stamped with the **snapshot**
        LSN, never the live head — a repair must not advance the replica's
        watermark past delta batches it has not applied, or a flush landing
        between audit and repair would be dropped as a duplicate and its
        rows served stale under a satisfied consistency check.
        """
        if snapshot is None:
            snapshot = self.manager.view_rows_snapshot(view_name)
        lsn, revision, snapshot_rows = snapshot
        ordered = sorted(set(subjects))
        rows = {s: snapshot_rows[s] for s in ordered if s in snapshot_rows}
        delta = ViewDelta(
            updated=frozenset(rows),
            deleted=frozenset(subject for subject in ordered if subject not in rows),
            first_lsn=prev_lsn,
            last_lsn=lsn,
        )
        return ShipmentBatch(
            kind="delta",
            view_name=view_name,
            revision=revision,
            lsn=lsn,
            prev_lsn=prev_lsn,
            delta=delta,
            rows=tuple(dict(row) for row in rows.values()),
        )

    def catchup_batch(self, view_name: str, applied_lsn: int, revision: int) -> ShipmentBatch:
        """The batch that brings a consumer at (*applied_lsn*, *revision*) current.

        Serves a delta batch from the persisted journal when history reaches
        back to *applied_lsn* under the same revision; a gap, a redefinition,
        or a missing journal store answers with a full snapshot instead.  A
        view that is not materialized right now (dropped, or invalidated and
        not yet rebuilt) answers with a drop batch: the consumer must stop
        serving it rather than crash its whole catch-up.
        """
        if not self.manager.is_materialized(view_name):
            return ShipmentBatch(
                kind="drop", view_name=view_name,
                revision=self.manager.state_revision(view_name),
                lsn=self.manager.built_at_lsn(view_name),
            )
        current_revision = self.manager.state_revision(view_name)
        if revision == current_revision and applied_lsn > 0:
            try:
                delta = self._deltas_since(view_name, applied_lsn)
            except JournalGapError:
                delta = None
            if delta is not None:
                return self._delta_batch(view_name, current_revision, delta,
                                         prev_lsn=applied_lsn)
        return self.snapshot_batch(view_name)

    # -------------------------------------------------------------- #
    # journal-event plumbing
    # -------------------------------------------------------------- #
    def _on_journal_event(self, event: JournalEvent) -> None:
        if event.view_name not in self.shipped_views:
            return
        if event.kind == "append":
            if self.journal_store is not None:
                try:
                    self.journal_store.append_delta(event.view_name, event.revision,
                                                    event.delta)
                except Exception:
                    # Persisted history is now incomplete (the store poisoned
                    # its floor).  The live chain must not silently skip the
                    # delta either — the next batch's prev_lsn would extend
                    # every replica's applied LSN and they would diverge
                    # undetectably.  Resync subscribers via snapshot, then
                    # surface the persistence error to the manager's log.
                    self._publish_snapshot(event.view_name)
                    raise
            prev_lsn = self.shipped_views[event.view_name]
            batch = self._delta_batch(event.view_name, event.revision, event.delta,
                                      prev_lsn=prev_lsn)
            self.shipped_views[event.view_name] = batch.lsn
            self.bus.publish(batch)
            self.batches_shipped += 1
        elif event.kind == "advance":
            # Watermark-only progress: an empty delta batch lets replicas
            # advance their applied LSN without row work.  Not persisted —
            # a catch-up batch stamps the current watermark anyway.
            prev_lsn = self.shipped_views[event.view_name]
            self.shipped_views[event.view_name] = event.lsn
            self.bus.publish(ShipmentBatch(
                kind="delta",
                view_name=event.view_name,
                revision=event.revision,
                lsn=event.lsn,
                prev_lsn=prev_lsn,
                delta=ViewDelta(first_lsn=prev_lsn, last_lsn=event.lsn),
            ))
            self.batches_shipped += 1
        elif event.kind == "truncate":
            self._publish_snapshot(event.view_name)
        elif event.kind == "drop":
            if self.journal_store is not None:
                self.journal_store.record_drop(event.view_name, event.revision)
            self.shipped_views[event.view_name] = 0
            self.bus.publish(ShipmentBatch(
                kind="drop", view_name=event.view_name,
                revision=event.revision, lsn=event.lsn,
            ))

    def _delta_batch(
        self, view_name: str, revision: int, delta: ViewDelta, prev_lsn: int
    ) -> ShipmentBatch:
        # Shallow-copied: replica workers read batches asynchronously and
        # must not alias dicts a later flush may patch in place.
        rows = tuple(
            dict(row)
            for row in rows_for_subjects(
                self.manager.artifact(view_name), sorted(delta.changed), view_name
            ).values()
        )
        return ShipmentBatch(
            kind="delta",
            view_name=view_name,
            revision=revision,
            lsn=max(delta.last_lsn, self.manager.built_at_lsn(view_name)),
            prev_lsn=prev_lsn,
            delta=delta,
            rows=rows,
        )

    def _deltas_since(self, view_name: str, lsn: int) -> ViewDelta | None:
        # The persisted journal is authoritative for catch-up: it survives
        # restarts and may retain more history than the manager's bounded
        # in-memory journal.  Fall back to the manager when no store exists.
        if self.journal_store is not None:
            if self.journal_store.revision_of(view_name) != (
                self.manager.state_revision(view_name)
            ):
                return None
            return self.journal_store.deltas_since(view_name, lsn)
        return self.manager.view_deltas_since(view_name, lsn, strict=True)
