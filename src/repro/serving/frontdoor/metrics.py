"""Serving observability: streaming latency histograms and tenant counters.

The front door answers "is serving healthy, and for whom?" with bounded
memory: latencies stream into geometric-bucket histograms (one global, one
per tenant) that answer p50/p95/p99 without retaining samples, and every
admission outcome increments a per-tenant counter.  Snapshots are plain
dicts, surfaced by ``FrontDoor.stats()`` and mirrored into the platform
:class:`~repro.engine.metadata.MetadataStore` serving-metrics namespace so
fleet health is observable with the same machinery as freshness.

Counter glossary (per tenant and summed globally):

* ``requests`` — everything that arrived, before any gate;
* ``admitted`` — passed isolation + bucket + queue and reached a worker (or
  was served from the tenant's result cache);
* ``completed`` — returned rows (``cache_hits`` of them without touching
  the fleet);
* ``rate_limited`` — refused by the tenant's token bucket;
* ``shed`` — refused or displaced by the bounded admission queue;
* ``deadline_exceeded`` — expired on arrival, while queued, or at dispatch;
* ``isolation_rejections`` — refused at plan time for crossing the tenant
  boundary;
* ``execution_errors`` — admitted but failed fleet-side (stale reads, dead
  replicas); the error propagates to the caller after counting.
"""

from __future__ import annotations

import threading
from collections import defaultdict

#: Histogram bucket geometry: upper bounds grow by BUCKET_RATIO from
#: BUCKET_FLOOR_MS; everything above the last bound lands in the overflow
#: bucket.  80 buckets cover 0.01 ms .. ~28 s at ~14% resolution.
BUCKET_FLOOR_MS = 0.01
BUCKET_RATIO = 1.2
BUCKET_COUNT = 80

_OUTCOMES = (
    "requests",
    "admitted",
    "completed",
    "cache_hits",
    "rate_limited",
    "shed",
    "deadline_exceeded",
    "isolation_rejections",
    "execution_errors",
)


class LatencyHistogram:
    """Streaming latency histogram with geometric buckets (ms domain).

    ``observe`` is O(log buckets); ``percentile`` interpolates inside the
    winning bucket's geometric span, so percentiles are stable to bucket
    resolution (~14%) with O(1) memory regardless of request volume.
    """

    def __init__(self) -> None:
        self._bounds = [
            BUCKET_FLOOR_MS * (BUCKET_RATIO ** index) for index in range(BUCKET_COUNT)
        ]
        self._counts = [0] * (BUCKET_COUNT + 1)   # +1: overflow bucket
        self.count = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0

    def observe(self, latency_ms: float) -> None:
        """Record one latency sample."""
        value = max(0.0, float(latency_ms))
        self.count += 1
        self.sum_ms += value
        self.max_ms = max(self.max_ms, value)
        low, high = 0, BUCKET_COUNT
        while low < high:
            mid = (low + high) // 2
            if value <= self._bounds[mid]:
                high = mid
            else:
                low = mid + 1
        self._counts[low] += 1

    def percentile(self, percentile: float) -> float:
        """The latency (ms) at *percentile* (0 when no samples)."""
        if self.count == 0:
            return 0.0
        target = max(1, int(round(percentile / 100.0 * self.count)))
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= target:
                if index >= BUCKET_COUNT:
                    return self.max_ms
                upper = self._bounds[index]
                return min(upper, self.max_ms) if self.max_ms else upper
        return self.max_ms

    def snapshot(self) -> dict[str, float]:
        """count / mean / p50 / p95 / p99 / max, ms."""
        return {
            "count": self.count,
            "mean_ms": round(self.sum_ms / self.count, 4) if self.count else 0.0,
            "p50_ms": round(self.percentile(50.0), 4),
            "p95_ms": round(self.percentile(95.0), 4),
            "p99_ms": round(self.percentile(99.0), 4),
            "max_ms": round(self.max_ms, 4),
        }


class ServingMetrics:
    """Per-tenant admission counters plus global and per-tenant histograms.

    Thread-safe: worker completions, the event loop, and maintenance-thread
    invalidations all record through one lock.  Latency is observed only for
    requests that produced rows — refusals are counted, not timed, so the
    percentile figures describe *served* traffic (the benchmark's gate).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, dict[str, int]] = defaultdict(
            lambda: dict.fromkeys(_OUTCOMES, 0)
        )
        self._histograms: dict[str, LatencyHistogram] = {}
        self.global_histogram = LatencyHistogram()

    def count(self, tenant_id: str, outcome: str, amount: int = 1) -> None:
        """Increment *outcome* for *tenant_id* (outcomes are the glossary's)."""
        if outcome not in _OUTCOMES:
            raise ValueError(f"unknown serving outcome {outcome!r}")
        with self._lock:
            self._counters[tenant_id][outcome] += amount

    def observe_latency(self, tenant_id: str, latency_ms: float) -> None:
        """Record one served request's latency for the tenant and globally."""
        with self._lock:
            histogram = self._histograms.get(tenant_id)
            if histogram is None:
                histogram = self._histograms[tenant_id] = LatencyHistogram()
            histogram.observe(latency_ms)
            self.global_histogram.observe(latency_ms)

    def tenant_snapshot(self, tenant_id: str) -> dict[str, object]:
        """Counters + latency snapshot of one tenant."""
        with self._lock:
            counters = dict(self._counters.get(tenant_id, dict.fromkeys(_OUTCOMES, 0)))
            histogram = self._histograms.get(tenant_id)
            latency = histogram.snapshot() if histogram else LatencyHistogram().snapshot()
        return {**counters, "latency": latency}

    def snapshot(self) -> dict[str, object]:
        """The full picture: global totals + latency, and every tenant's."""
        with self._lock:
            tenants = {
                tenant_id: {
                    **dict(counters),
                    "latency": (
                        self._histograms[tenant_id].snapshot()
                        if tenant_id in self._histograms
                        else LatencyHistogram().snapshot()
                    ),
                }
                for tenant_id, counters in sorted(self._counters.items())
            }
            totals = dict.fromkeys(_OUTCOMES, 0)
            for counters in self._counters.values():
                for outcome, value in counters.items():
                    totals[outcome] += value
            return {
                **totals,
                "latency": self.global_histogram.snapshot(),
                "tenants": tenants,
            }
