"""Admission control: token buckets, a priority shed queue, honest refusals.

The front door never queues silently and never queues forever.  Three gates
stand between an arriving request and a worker slot:

* a per-tenant :class:`TokenBucket` (sustained rate + burst) — the fairness
  gate, so one tenant's flood cannot starve the fleet for everyone else;
* a global concurrency gate (the front door's bounded worker pool);
* a bounded, deadline-aware :class:`AdmissionQueue` for requests that arrive
  while every slot is busy.  When the queue is full the *least important*
  request loses: an arriving request displaces a strictly lower-priority
  queued one (which is shed with :class:`~repro.errors.OverloadedError`), or
  is itself refused when nothing queued is less important.  A queued request
  whose deadline passes is removed and failed with
  :class:`~repro.errors.DeadlineExceededError` — at pop time and by its own
  waiting timeout, whichever fires first.

Every refusal carries ``retry_after``: the bucket's next-token time or the
queue's expected drain time, so well-behaved clients can back off honestly
instead of hammering a saturated door.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Callable

from repro.errors import DeadlineExceededError, FrontDoorError, OverloadedError


class Priority(IntEnum):
    """Request priority classes; lower values are more important.

    ``INTERACTIVE`` models the consumer question-answering path the paper
    serves at interactive latencies; ``NORMAL`` is the default API traffic;
    ``BATCH`` is offline/analytical traffic that is always shed first.
    """

    INTERACTIVE = 0
    NORMAL = 1
    BATCH = 2


class TokenBucket:
    """A continuously-refilling token bucket (sustained *rate*, burst cap).

    ``try_acquire`` never blocks: it returns ``0.0`` when a token was taken
    and otherwise the seconds until enough tokens will have accrued — the
    ``retry_after`` the front door hands to the rejected caller.  Time comes
    from an injectable monotonic *clock* so refill boundaries are testable
    without sleeping.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if rate <= 0:
            raise FrontDoorError("token bucket rate must be positive")
        if burst < 1:
            raise FrontDoorError("token bucket burst must admit at least one request")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock if clock is not None else time.monotonic
        self._tokens = self.burst
        self._stamp = self._clock()
        self.acquired = 0
        self.rejected = 0

    @property
    def tokens(self) -> float:
        """The tokens available right now (refilled to the current instant)."""
        self._refill(self._clock())
        return self._tokens

    def _refill(self, now: float) -> None:
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        # A backwards clock (never with the monotonic default) just re-stamps.
        self._stamp = now

    def try_acquire(self, cost: float = 1.0) -> float:
        """Take *cost* tokens if available; else seconds until they accrue."""
        now = self._clock()
        self._refill(now)
        if self._tokens >= cost:
            self._tokens -= cost
            self.acquired += 1
            return 0.0
        self.rejected += 1
        return (cost - self._tokens) / self.rate


@dataclass
class Waiter:
    """One queued admission request awaiting a worker slot.

    ``deadline`` is absolute on the front door's clock (``None`` = no
    deadline).  ``slot_granted`` is flipped by the queue's owner when a slot
    is handed over; the asyncio future is managed by the front door — the
    queue itself is loop-agnostic and only *selects* waiters, so its
    shed/expire/pop logic is testable synchronously.
    """

    priority: int
    seq: int
    tenant_id: str
    deadline: float | None = None
    future: object = None           # asyncio.Future, owned by the front door
    shed: bool = False              # displaced by a higher-priority arrival
    expired: bool = False           # deadline passed while queued
    dequeued: bool = False          # left the queue (granted, shed, or expired)
    sort_key: tuple[int, int] = field(init=False)

    def __post_init__(self) -> None:
        self.sort_key = (self.priority, self.seq)


class AdmissionQueue:
    """Bounded priority queue of waiters with lowest-priority-first shedding.

    ``offer`` either admits the waiter, displaces (and returns) a strictly
    lower-priority queued waiter to make room, or raises
    :class:`~repro.errors.OverloadedError` when the arrival is not important
    enough to displace anything.  ``pop_ready`` returns the most important
    non-expired waiter and collects the expired ones it skipped.  Entries are
    tombstoned rather than re-heapified on removal, so every operation stays
    ``O(log n)`` amortized.
    """

    def __init__(
        self, capacity: int, clock: Callable[[], float] | None = None
    ) -> None:
        if capacity <= 0:
            raise FrontDoorError("the admission queue needs positive capacity")
        self.capacity = capacity
        self._clock = clock if clock is not None else time.monotonic
        self._heap: list[tuple[tuple[int, int], Waiter]] = []
        self._live = 0
        self.max_depth = 0          # high-water mark, proves boundedness
        self.offered = 0
        self.sheds = 0              # waiters displaced by a better arrival
        self.expirations = 0        # waiters that timed out while queued

    @property
    def depth(self) -> int:
        """Waiters currently queued (tombstones excluded)."""
        return self._live

    def offer(self, waiter: Waiter, retry_after: float) -> Waiter | None:
        """Queue *waiter*; returns the waiter it displaced, if any.

        *retry_after* is the drain estimate quoted on refusals.  Raises
        :class:`~repro.errors.OverloadedError` when the queue is full and no
        queued waiter has strictly lower priority than the arrival.
        """
        self.offered += 1
        displaced: Waiter | None = None
        if self._live >= self.capacity:
            victim = self._worst()
            if victim is None or victim.priority <= waiter.priority:
                raise OverloadedError(
                    f"admission queue is full ({self._live}/{self.capacity}) and "
                    f"priority {Priority(waiter.priority).name} does not outrank "
                    "any queued request",
                    retry_after=retry_after,
                )
            victim.shed = True
            victim.dequeued = True
            self._live -= 1
            self.sheds += 1
            displaced = victim
        heapq.heappush(self._heap, (waiter.sort_key, waiter))
        self._live += 1
        self.max_depth = max(self.max_depth, self._live)
        return displaced

    def pop_ready(self, now: float | None = None) -> tuple[Waiter | None, list[Waiter]]:
        """The most important live waiter, plus the expired ones skipped over.

        Expired waiters are marked (``expired``) and counted; the caller
        fails their futures.  Returns ``(None, expired)`` when nothing live
        remains.
        """
        current = now if now is not None else self._clock()
        expired: list[Waiter] = []
        while self._heap:
            _, waiter = heapq.heappop(self._heap)
            if waiter.dequeued:
                continue                      # tombstone (shed or discarded)
            self._live -= 1
            waiter.dequeued = True
            if waiter.deadline is not None and current > waiter.deadline:
                waiter.expired = True
                self.expirations += 1
                expired.append(waiter)
                continue
            return waiter, expired
        return None, expired

    def discard(self, waiter: Waiter) -> bool:
        """Tombstone *waiter* (its own deadline timeout fired); False if gone."""
        if waiter.dequeued:
            return False
        waiter.dequeued = True
        waiter.expired = True
        self._live -= 1
        self.expirations += 1
        return True

    def _worst(self) -> Waiter | None:
        """The least important live waiter (highest priority value, newest)."""
        worst: Waiter | None = None
        for _, waiter in self._heap:
            if waiter.dequeued:
                continue
            if worst is None or (waiter.priority, waiter.seq) > (worst.priority, worst.seq):
                worst = waiter
        return worst

    def stats(self) -> dict[str, int]:
        """Queue counters: depth, high-water mark, offers, sheds, expirations."""
        return {
            "depth": self._live,
            "max_depth": self.max_depth,
            "capacity": self.capacity,
            "offered": self.offered,
            "sheds": self.sheds,
            "expirations": self.expirations,
        }


def deadline_error(tenant_id: str, phase: str, retry_after: float = 0.0) -> DeadlineExceededError:
    """A uniformly-worded deadline refusal for *tenant_id* during *phase*."""
    return DeadlineExceededError(
        f"tenant {tenant_id!r}: deadline exceeded {phase}", retry_after=retry_after
    )
