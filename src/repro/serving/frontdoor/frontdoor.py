"""The multi-tenant asyncio front door over the serving fleet.

:class:`FrontDoor` is the request layer the paper's "millions of users" hit:
an asyncio surface accepting per-tenant KGQ requests with deadlines and
priority classes, executing the fleet's synchronous scatter-gather
(:meth:`~repro.serving.fleet.ServingFleet.query`) on a bounded worker pool,
and refusing work honestly when saturated.  One request flows through:

1. **tenancy** — the tenant is resolved and the query compiled through the
   tenant's own plan cache, with the view and entity-type boundary enforced
   at plan time (:class:`~repro.serving.frontdoor.tenancy.TenantRegistry`);
2. **admission** — deadline-already-expired check, per-tenant token bucket,
   then either a free worker slot or the bounded priority queue; refusals
   raise typed :class:`~repro.errors.OverloadedError` /
   :class:`~repro.errors.DeadlineExceededError` carrying ``retry_after``
   (:mod:`~repro.serving.frontdoor.admission`);
3. **serving** — per-tenant result cache (invalidated per view when the
   primary commits a delta), else the compiled plan scatter-gathers over the
   fleet with replica-side caches off — the front door's per-tenant caches
   *are* the serving cache, so a cross-tenant hit is structurally
   impossible;
4. **observability** — every outcome and served latency streams into
   :class:`~repro.serving.frontdoor.metrics.ServingMetrics`, surfaced by
   :meth:`FrontDoor.stats` and mirrored into the
   :class:`~repro.engine.metadata.MetadataStore` serving-metrics namespace.

Deadlines bound *waiting*, not execution: a request that reached a worker
runs to completion (the synchronous fleet call cannot be cancelled
mid-scatter), but it can never sit in the queue past its deadline and an
expired request is never dispatched.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Callable

from repro.errors import (
    DeadlineExceededError,
    FrontDoorError,
    OverloadedError,
    TenantIsolationError,
)
from repro.live.executor import QueryResult
from repro.serving.frontdoor.admission import (
    AdmissionQueue,
    Priority,
    Waiter,
    deadline_error,
)
from repro.serving.frontdoor.metrics import ServingMetrics
from repro.serving.frontdoor.tenancy import TenantRegistry
from repro.serving.router import ANY, Consistency

#: Journal-event kinds that change a view's served content.  ``advance`` is a
#: watermark-only event (a flush that proved the view unaffected) — cached
#: results stay valid through it.
_CONTENT_EVENTS = frozenset({"append", "truncate", "drop"})


class FrontDoor:
    """Admission-controlled, tenant-isolated asyncio serving surface.

    *fleet* supplies the scatter-gather executor (``fleet.query_router``) and
    the primary view manager whose journal events drive per-view cache
    invalidation (``fleet.manager``); *registry* scopes tenants.  All
    coroutine methods must be driven from one event loop; the synchronous
    fleet calls run on the door's own bounded thread pool, which is also the
    global concurrency gate (``max_concurrency`` in-flight requests, then
    the bounded queue, then load shedding).
    """

    def __init__(
        self,
        fleet,
        registry: TenantRegistry | None = None,
        max_concurrency: int = 8,
        queue_capacity: int = 64,
        default_deadline: float | None = None,
        clock: Callable[[], float] | None = None,
        metadata=None,
        retry_after_floor: float = 0.05,
    ) -> None:
        if max_concurrency <= 0:
            raise FrontDoorError("the front door needs at least one worker slot")
        if default_deadline is not None and default_deadline <= 0:
            raise FrontDoorError("the default deadline must be positive seconds")
        self.fleet = fleet
        self.query_router = fleet.query_router
        self.manager = fleet.manager
        self._clock = clock if clock is not None else time.monotonic
        self.registry = registry if registry is not None else TenantRegistry(clock=self._clock)
        self.max_concurrency = max_concurrency
        self.default_deadline = default_deadline
        self.metadata = metadata if metadata is not None else getattr(fleet, "metadata", None)
        self.retry_after_floor = retry_after_floor
        self.metrics = ServingMetrics()
        self.queue = AdmissionQueue(queue_capacity, clock=self._clock)
        self._pool = ThreadPoolExecutor(
            max_workers=max_concurrency, thread_name_prefix="frontdoor"
        )
        self._in_flight = 0
        self._max_in_flight = 0
        self._seq = 0
        self._ewma_service_s = 0.01     # drain estimate seed; updated per completion
        self._closed = False
        self.view_invalidations = 0
        # Shipped deltas invalidate per-tenant result caches per view; the
        # listener fires on the same committed journal events the shipper
        # consumes, from maintenance threads (the registry is thread-safe).
        self._journal_listener = self._on_journal_event
        self.manager.add_journal_listener(self._journal_listener)

    # -------------------------------------------------------------- #
    # the request path
    # -------------------------------------------------------------- #
    async def query(
        self,
        tenant_id: str,
        query,
        view_name: str,
        consistency: Consistency = ANY,
        priority: Priority = Priority.NORMAL,
        deadline: float | None = None,
        use_cache: bool = True,
    ) -> QueryResult:
        """Serve one tenant KGQ over the fleet, under admission control.

        *deadline* is relative seconds (``None`` falls back to the door's
        ``default_deadline``); an already-expired deadline is refused before
        it can consume tokens or a slot.  Raises
        :class:`~repro.errors.TenantIsolationError` for boundary violations,
        :class:`~repro.errors.OverloadedError` (with ``retry_after``) for
        rate-limit and shed refusals, and
        :class:`~repro.errors.DeadlineExceededError` for expired requests.
        Fleet-side errors (stale reads, dead replicas) propagate unchanged
        after being counted.
        """
        if self._closed:
            raise FrontDoorError("the front door is closed")
        state = self.registry.get(tenant_id)
        self.metrics.count(tenant_id, "requests")
        arrived = self._clock()

        try:
            self.registry.ensure_view_allowed(tenant_id, view_name)
            plan = self.registry.compile(tenant_id, query, self.query_router.planner)
        except TenantIsolationError:
            self.metrics.count(tenant_id, "isolation_rejections")
            raise

        effective = deadline if deadline is not None else self.default_deadline
        if effective is not None and effective <= 0:
            self.metrics.count(tenant_id, "deadline_exceeded")
            raise deadline_error(tenant_id, "already expired on arrival")
        absolute_deadline = arrived + effective if effective is not None else None

        wait = state.bucket.try_acquire()
        if wait > 0.0:
            self.metrics.count(tenant_id, "rate_limited")
            raise OverloadedError(
                f"tenant {tenant_id!r} exceeded its request rate "
                f"({state.profile.rate}/s, burst {state.profile.burst})",
                retry_after=max(wait, self.retry_after_floor),
            )

        cache_key = self._cache_key(plan, consistency)
        if use_cache:
            rows = self.registry.cached_rows(tenant_id, view_name, cache_key)
            if rows is not None:
                latency_ms = (self._clock() - arrived) * 1000.0
                self.metrics.count(tenant_id, "admitted")
                self.metrics.count(tenant_id, "completed")
                self.metrics.count(tenant_id, "cache_hits")
                self.metrics.observe_latency(tenant_id, latency_ms)
                return QueryResult(rows=rows, latency_ms=latency_ms, from_cache=True)

        try:
            await self._acquire_slot(priority, absolute_deadline, tenant_id)
        except OverloadedError:
            self.metrics.count(tenant_id, "shed")
            raise
        except DeadlineExceededError:
            self.metrics.count(tenant_id, "deadline_exceeded")
            raise

        self.metrics.count(tenant_id, "admitted")
        try:
            if absolute_deadline is not None and self._clock() > absolute_deadline:
                self.metrics.count(tenant_id, "deadline_exceeded")
                raise deadline_error(tenant_id, "before dispatch")
            loop = asyncio.get_running_loop()
            execute = partial(
                self.query_router.execute,
                plan,
                view_name,
                consistency,
                use_cache=False,
            )
            started_execution = self._clock()
            try:
                result = await loop.run_in_executor(self._pool, execute)
            except Exception:
                self.metrics.count(tenant_id, "execution_errors")
                raise
            elapsed = self._clock() - started_execution
            self._ewma_service_s = 0.8 * self._ewma_service_s + 0.2 * elapsed
        finally:
            self._release_slot()

        latency_ms = (self._clock() - arrived) * 1000.0
        self.metrics.count(tenant_id, "completed")
        self.metrics.observe_latency(tenant_id, latency_ms)
        if use_cache:
            self.registry.store_rows(tenant_id, view_name, cache_key, result.rows)
        return result

    @staticmethod
    def _cache_key(plan, consistency: Consistency) -> str:
        return (
            f"{plan.query.render()} "
            f"|{consistency.level}:{consistency.max_lag_lsns}:{consistency.min_lsn}"
        )

    # -------------------------------------------------------------- #
    # the concurrency gate
    # -------------------------------------------------------------- #
    async def _acquire_slot(
        self, priority: Priority, deadline: float | None, tenant_id: str
    ) -> None:
        """Take a worker slot, queueing (bounded, deadline-aware) when busy."""
        if self._in_flight < self.max_concurrency:
            self._in_flight += 1
            self._max_in_flight = max(self._max_in_flight, self._in_flight)
            return
        loop = asyncio.get_running_loop()
        self._seq += 1
        waiter = Waiter(
            priority=int(priority),
            seq=self._seq,
            tenant_id=tenant_id,
            deadline=deadline,
            future=loop.create_future(),
        )
        displaced = self.queue.offer(waiter, self._drain_estimate())
        if displaced is not None:
            future = displaced.future
            if future is not None and not future.done():
                future.set_exception(OverloadedError(
                    f"tenant {displaced.tenant_id!r}: request shed from the "
                    f"admission queue by a higher-priority arrival",
                    retry_after=self._drain_estimate(),
                ))
        if deadline is None:
            await waiter.future
            return
        remaining = deadline - self._clock()
        if remaining <= 0:
            self.queue.discard(waiter)
            waiter.future.cancel()
            raise deadline_error(tenant_id, "while queued for admission")
        try:
            await asyncio.wait_for(asyncio.shield(waiter.future), timeout=remaining)
        except asyncio.TimeoutError:
            if waiter.future.done() and not waiter.future.cancelled() \
                    and waiter.future.exception() is None:
                # The slot was granted in the same instant the timer fired:
                # hand it straight to the next waiter instead of leaking it.
                self._release_slot()
            else:
                self.queue.discard(waiter)
                waiter.future.cancel()
            raise deadline_error(tenant_id, "while queued for admission") from None

    def _release_slot(self) -> None:
        """Hand the freed slot to the best live waiter, or retire it."""
        while True:
            waiter, expired = self.queue.pop_ready(self._clock())
            for dead in expired:
                future = dead.future
                if future is not None and not future.done():
                    future.set_exception(
                        deadline_error(dead.tenant_id, "while queued for admission")
                    )
                self.metrics.count(dead.tenant_id, "deadline_exceeded")
            if waiter is None:
                self._in_flight -= 1
                return
            future = waiter.future
            if future is not None and not future.done():
                future.set_result(None)     # slot transferred, in_flight unchanged
                return
            # The waiter timed out or was cancelled concurrently; try the next.

    def _drain_estimate(self) -> float:
        """Expected seconds until a shed/refused request could be admitted."""
        backlog = self.queue.depth + 1
        estimate = backlog * self._ewma_service_s * self._in_flight / self.max_concurrency
        return max(estimate, self.retry_after_floor)

    # -------------------------------------------------------------- #
    # invalidation
    # -------------------------------------------------------------- #
    def _on_journal_event(self, event) -> None:
        if event.kind in _CONTENT_EVENTS:
            self.view_invalidations += self.registry.invalidate_view(event.view_name)

    # -------------------------------------------------------------- #
    # observability and lifecycle
    # -------------------------------------------------------------- #
    def stats(self) -> dict[str, object]:
        """One self-describing snapshot of the whole serving funnel.

        Combines the metrics layer (per-tenant counters, latency
        percentiles), the saturation gauges (queue depth / high-water mark,
        in-flight), the registry's cache counters, and the query router's
        plan-cache and scatter-gather stats.  Mirrored into the metadata
        store's serving-metrics namespace (component ``front_door``) when
        one is attached.
        """
        snapshot = {
            **self.metrics.snapshot(),
            "in_flight": self._in_flight,
            "max_in_flight": self._max_in_flight,
            "max_concurrency": self.max_concurrency,
            "queue": self.queue.stats(),
            "view_invalidations": self.view_invalidations,
            "tenant_caches": self.registry.stats(),
            "query_router": self.query_router.stats(),
        }
        if self.metadata is not None:
            self.metadata.update_serving_metrics("front_door", snapshot)
        return snapshot

    def close(self) -> None:
        """Detach from the view manager and retire the worker pool.

        Idempotent.  In-flight work drains; queued waiters are failed with
        :class:`~repro.errors.OverloadedError` by their own awaits only if a
        loop is still driving them — close from outside the event loop after
        request traffic stopped.
        """
        if self._closed:
            return
        self._closed = True
        self.manager.remove_journal_listener(self._journal_listener)
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "FrontDoor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
