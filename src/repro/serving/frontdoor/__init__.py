"""Multi-tenant asyncio front door over the serving fleet.

See ``docs/frontdoor.md``.  :class:`FrontDoor` is the request layer:
per-tenant KGQ requests with deadlines and priority classes are admitted
through token buckets and a bounded priority queue
(:mod:`~repro.serving.frontdoor.admission`), scoped and cached per tenant
(:mod:`~repro.serving.frontdoor.tenancy`), executed over the fleet's
scatter-gather on a bounded worker pool, and observed end to end
(:mod:`~repro.serving.frontdoor.metrics`).
"""

from repro.serving.frontdoor.admission import (
    AdmissionQueue,
    Priority,
    TokenBucket,
    Waiter,
)
from repro.serving.frontdoor.frontdoor import FrontDoor
from repro.serving.frontdoor.metrics import LatencyHistogram, ServingMetrics
from repro.serving.frontdoor.tenancy import TenantProfile, TenantRegistry

__all__ = [
    "AdmissionQueue",
    "FrontDoor",
    "LatencyHistogram",
    "Priority",
    "ServingMetrics",
    "TenantProfile",
    "TenantRegistry",
    "TokenBucket",
    "Waiter",
]
