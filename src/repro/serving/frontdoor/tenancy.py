"""Tenant scoping: allowed views, KG slices, and per-tenant caches.

A tenant is scoped twice, and both boundaries are enforced at *plan* time —
before any replica sees a fragment:

* **views** — the set of served views the tenant may query.  A request
  naming any other view raises :class:`~repro.errors.TenantIsolationError`;
  one tenant's query can never touch another tenant's views.
* **entity types** — the tenant's slice of the KG.  KGQ's restricted
  expressiveness makes a plan's type scope decidable statically
  (:func:`repro.live.planner.plan_scope`), so a MATCH outside the slice is
  refused at compile time, not filtered after execution.

Caches are strictly per tenant — separate objects, so a cross-tenant cache
hit is structurally impossible, not merely key-disambiguated:

* a **compiled-plan LRU** keyed by query text; plans are validated against
  the tenant's scope *before* insertion, so a cached plan is a proven-safe
  plan;
* **result caches**, one :class:`~repro.live.executor.QueryCache` per
  ``(tenant, view)``, invalidated per view when the primary commits (and the
  fleet ships) a delta for that view — a tenant only ever re-reads its own
  freshly-invalidated cache, never another tenant's.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.errors import FrontDoorError, KGQPlanError, TenantIsolationError
from repro.live.executor import QueryCache, QueryResultRow
from repro.live.kgq import parse
from repro.live.planner import PhysicalPlan, QueryPlanner, ensure_plan_within_types
from repro.serving.frontdoor.admission import TokenBucket


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's isolation boundary and admission budget.

    ``entity_types=None`` grants the whole KG slice (every type); an empty
    frozenset forbids all typed queries.  ``rate``/``burst`` parameterize the
    tenant's token bucket (requests per second, burst size).
    """

    tenant_id: str
    views: frozenset[str]
    entity_types: frozenset[str] | None = None
    rate: float = 100.0
    burst: float = 50.0
    plan_cache_size: int = 128
    result_cache_size: int = 256


class _TenantState:
    """Runtime state: bucket, plan LRU, per-view result caches, counters."""

    def __init__(self, profile: TenantProfile, clock: Callable[[], float]) -> None:
        self.profile = profile
        self.bucket = TokenBucket(profile.rate, profile.burst, clock=clock)
        self.plans: OrderedDict[str, PhysicalPlan] = OrderedDict()
        self.result_caches: dict[str, QueryCache] = {}
        self.plan_hits = 0
        self.plan_misses = 0
        self.result_invalidations = 0
        self.isolation_rejections = 0


class TenantRegistry:
    """The tenant catalog the front door admits and scopes requests against.

    Thread-safe: the front door's event loop resolves tenants and caches
    results while view-maintenance threads fire invalidation events.
    """

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock if clock is not None else time.monotonic
        self._tenants: dict[str, _TenantState] = {}
        self._lock = threading.Lock()

    # -------------------------------------------------------------- #
    # membership
    # -------------------------------------------------------------- #
    def register(
        self,
        tenant_id: str,
        views: frozenset[str] | set[str] | tuple[str, ...] | list[str],
        entity_types: frozenset[str] | set[str] | tuple[str, ...] | list[str] | None = None,
        rate: float = 100.0,
        burst: float = 50.0,
        plan_cache_size: int = 128,
        result_cache_size: int = 256,
    ) -> TenantProfile:
        """Onboard *tenant_id* with its allowed views, KG slice, and budget."""
        if not tenant_id:
            raise FrontDoorError("tenant id must be non-empty")
        if plan_cache_size <= 0:
            raise FrontDoorError("tenant plan cache needs positive capacity")
        if result_cache_size <= 0:
            raise FrontDoorError("tenant result cache needs positive capacity")
        profile = TenantProfile(
            tenant_id=tenant_id,
            views=frozenset(views),
            entity_types=None if entity_types is None else frozenset(entity_types),
            rate=rate,
            burst=burst,
            plan_cache_size=plan_cache_size,
            result_cache_size=result_cache_size,
        )
        with self._lock:
            if tenant_id in self._tenants:
                raise FrontDoorError(f"tenant {tenant_id!r} is already registered")
            self._tenants[tenant_id] = _TenantState(profile, self._clock)
        return profile

    def remove(self, tenant_id: str) -> None:
        """Offboard a tenant; its caches and budget vanish with it."""
        with self._lock:
            self._tenants.pop(tenant_id, None)

    def tenant_ids(self) -> list[str]:
        """Registered tenants, sorted."""
        with self._lock:
            return sorted(self._tenants)

    def get(self, tenant_id: str) -> _TenantState:
        """The runtime state of *tenant_id*; unknown tenants are refused."""
        with self._lock:
            state = self._tenants.get(tenant_id)
        if state is None:
            raise FrontDoorError(f"unknown tenant {tenant_id!r}")
        return state

    # -------------------------------------------------------------- #
    # plan-time enforcement
    # -------------------------------------------------------------- #
    def ensure_view_allowed(self, tenant_id: str, view_name: str) -> None:
        """Refuse a view outside the tenant's allowed set (hard boundary)."""
        state = self.get(tenant_id)
        if view_name not in state.profile.views:
            state.isolation_rejections += 1
            raise TenantIsolationError(
                f"tenant {tenant_id!r} is not allowed to query view {view_name!r} "
                f"(allowed: {sorted(state.profile.views)})"
            )

    def compile(
        self, tenant_id: str, query: object, planner: QueryPlanner
    ) -> PhysicalPlan:
        """Compile *query* through the tenant's own plan cache, scope-checked.

        Query text hits the per-tenant LRU; pre-parsed queries plan directly.
        Every plan — cached or fresh — was validated against the tenant's
        entity-type slice before it became visible, so a cache hit is a
        proven-safe plan and never re-validates.
        """
        state = self.get(tenant_id)
        if not isinstance(query, str):
            plan = query if isinstance(query, PhysicalPlan) else planner.plan(query)
            self._validate(state, plan)
            return plan
        with self._lock:
            plan = state.plans.get(query)
            if plan is not None:
                state.plans.move_to_end(query)
                state.plan_hits += 1
                return plan
            state.plan_misses += 1
        plan = planner.plan(parse(query))
        self._validate(state, plan)
        with self._lock:
            state.plans[query] = plan
            while len(state.plans) > state.profile.plan_cache_size:
                state.plans.popitem(last=False)
        return plan

    def _validate(self, state: _TenantState, plan: PhysicalPlan) -> None:
        try:
            ensure_plan_within_types(plan, state.profile.entity_types)
        except KGQPlanError as exc:
            state.isolation_rejections += 1
            raise TenantIsolationError(
                f"tenant {state.profile.tenant_id!r}: {exc}"
            ) from None

    # -------------------------------------------------------------- #
    # per-tenant result caches
    # -------------------------------------------------------------- #
    def cached_rows(
        self, tenant_id: str, view_name: str, key: str
    ) -> list[QueryResultRow] | None:
        """The tenant's cached rows for *key* on *view_name* (None on miss)."""
        state = self.get(tenant_id)
        with self._lock:
            cache = state.result_caches.get(view_name)
            if cache is None:
                return None
            return cache.get(key)

    def store_rows(
        self, tenant_id: str, view_name: str, key: str, rows: list[QueryResultRow]
    ) -> None:
        """Cache *rows* under the tenant's own cache for *view_name*."""
        state = self.get(tenant_id)
        with self._lock:
            cache = state.result_caches.get(view_name)
            if cache is None:
                cache = QueryCache(capacity=state.profile.result_cache_size)
                state.result_caches[view_name] = cache
            cache.put(key, rows)

    def invalidate_view(self, view_name: str) -> int:
        """Drop every tenant's result cache for *view_name*; returns tenants hit.

        Called when the primary commits (and the fleet ships) a delta for the
        view.  Only caches for that view are dropped — each tenant's other
        views keep serving — and only tenants that had actually cached
        results for it are counted.
        """
        invalidated = 0
        with self._lock:
            for state in self._tenants.values():
                cache = state.result_caches.pop(view_name, None)
                if cache is not None:
                    state.result_invalidations += 1
                    invalidated += 1
        return invalidated

    # -------------------------------------------------------------- #
    # introspection
    # -------------------------------------------------------------- #
    def stats(self) -> dict[str, dict[str, object]]:
        """Per-tenant cache and isolation counters."""
        with self._lock:
            report = {}
            for tenant_id, state in sorted(self._tenants.items()):
                caches = state.result_caches.values()
                report[tenant_id] = {
                    "plan_cache_hits": state.plan_hits,
                    "plan_cache_misses": state.plan_misses,
                    "result_cache_hits": sum(cache.hits for cache in caches),
                    "result_cache_misses": sum(cache.misses for cache in caches),
                    "result_cache_evictions": sum(cache.evictions for cache in caches),
                    "result_invalidations": state.result_invalidations,
                    "isolation_rejections": state.isolation_rejections,
                    "bucket_acquired": state.bucket.acquired,
                    "bucket_rejected": state.bucket.rejected,
                }
        return report
