"""Scatter-gather KGQ execution over the replica fleet.

The :class:`QueryRouter` turns the fleet from a point-read cache into a
serving tier: a KGQ is compiled **once** (plans are cached by query text),
split into :class:`~repro.live.planner.PlanFragment`\\ s along the
:class:`~repro.serving.router.ShardRouter`'s consistent-hash partitions of
the subject space, scattered to the replicas that own those partitions, and
the partial results are gathered back through
:func:`~repro.live.executor.merge_partial_results` (union, dedup by entity
id, entity-ordered merge, LIMIT).

Consistency is enforced **per fragment**: a replica only receives a fragment
when its applied-LSN watermark for the queried view satisfies the requested
:class:`~repro.serving.router.Consistency` level.  Replicas that fail the
check are skipped and their partitions reassigned to the next eligible owner
on the ring — exactly the fallback walk a point read performs — and when no
live replica can legally serve some partition the router raises an honest
:class:`~repro.errors.StaleReadError` that names each lagging replica and
how far it lags, or :class:`~repro.errors.ReplicaUnavailableError` when no
owner is alive at all.

A replica that dies *between* partitioning and fragment execution is handled
the same way: its fragment is re-dispatched to a surviving eligible replica
(counted in ``fragment_retries``), so a crash mid-query degrades to a
retried partition, never to a lost partial result.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

from repro.errors import (
    KGQPlanError,
    ReplicaUnavailableError,
    ServingError,
    StaleReadError,
)
from repro.live.executor import (
    QueryResult,
    QueryResultRow,
    canonical_join_key,
    finalize_joined_rows,
    merge_partial_results,
    projected_join_key,
)
from repro.live.kgq import CallQuery, Query, default_virtual_operators, parse
from repro.live.planner import PhysicalPlan, PlanFragment, QueryPlanner, extract_fragments
from repro.live.rpq import accepting_answers, initial_frontier, merge_frontier
from repro.serving.router import ANY, Consistency, ShardRouter, stable_hash


class QueryRouter:
    """Compile-once, scatter-gather KGQ execution over routed replicas."""

    def __init__(
        self,
        router: ShardRouter,
        planner: QueryPlanner | None = None,
        plan_cache_size: int = 256,
    ) -> None:
        if plan_cache_size <= 0:
            raise ServingError("the query router's plan cache needs capacity")
        self.router = router
        self.planner = planner or QueryPlanner(default_virtual_operators())
        self.plan_cache_size = plan_cache_size
        self._plans: OrderedDict[str, PhysicalPlan] = OrderedDict()
        # Queries are served concurrently; the LRU's get/move/evict sequence
        # must not interleave across threads (a racing eviction would turn a
        # cache hit into a KeyError).
        self._plans_lock = threading.Lock()
        self.queries_routed = 0
        self.fragments_dispatched = 0
        self.fragment_retries = 0            # re-dispatches after a mid-query death
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0           # text compiles that had to plan
        self.plan_cache_evictions = 0        # LRU entries pushed out by capacity
        self.consistency_rejections = 0      # replicas skipped for staleness
        self.reach_queries = 0               # REACH plans run via the round protocol
        self.reach_rounds = 0                # frontier scatter rounds across them
        self.join_queries = 0                # cross-view joins through execute_join
        self.broadcast_joins = 0             # joins that shipped the small side
        self.shuffle_joins = 0               # joins re-partitioned by key hash
        self.join_rows_broadcast = 0         # build rows shipped across all fragments
        self.join_rows_shuffled = 0          # rows re-partitioned to key owners

    # -------------------------------------------------------------- #
    # compilation (once per query text)
    # -------------------------------------------------------------- #
    def compile(self, query: str | Query | CallQuery | PhysicalPlan) -> PhysicalPlan:
        """Compile *query* to a physical plan, caching by query text.

        Pre-parsed queries plan without touching the cache (their text is not
        authoritative), and an already-compiled :class:`PhysicalPlan` passes
        through untouched — the front door compiles through per-tenant plan
        caches and must not re-plan per execution.
        """
        if isinstance(query, PhysicalPlan):
            return query
        if not isinstance(query, str):
            return self.planner.plan(query)
        with self._plans_lock:
            plan = self._plans.get(query)
            if plan is not None:
                self._plans.move_to_end(query)
                self.plan_cache_hits += 1
                return plan
            self.plan_cache_misses += 1
        plan = self.planner.plan(parse(query))
        with self._plans_lock:
            self._plans[query] = plan
            while len(self._plans) > self.plan_cache_size:
                self._plans.popitem(last=False)
                self.plan_cache_evictions += 1
        return plan

    # -------------------------------------------------------------- #
    # partitioning (per execution: membership and lag move constantly)
    # -------------------------------------------------------------- #
    def eligible_replicas(
        self, view_name: str, consistency: Consistency
    ) -> list[str]:
        """Live replicas serving *view_name* that satisfy *consistency*.

        Raises :class:`~repro.errors.ReplicaUnavailableError` when no live
        replica serves the view at all, and :class:`~repro.errors.StaleReadError`
        — naming each lagging replica and its lag in log positions — when
        live servers exist but every one fails the consistency check.
        """
        if not self.router.replicas:
            raise ReplicaUnavailableError(
                "the query router has no replicas to scatter fragments to"
            )
        eligible: list[str] = []
        lagging: dict[str, int] = {}
        saw_live_server = False
        for name, node in sorted(self.router.replicas.items()):
            if not node.alive or not node.serves_view(view_name):
                continue
            saw_live_server = True
            if self.router.satisfies(node, view_name, consistency):
                eligible.append(name)
            else:
                self.consistency_rejections += 1
                head = self.router.head_lsn_source()
                lagging[name] = max(0, head - node.applied_lsn(view_name))
        if eligible:
            return eligible
        if not saw_live_server:
            raise ReplicaUnavailableError(
                f"no live replica serves view {view_name!r}; cannot scatter the query"
            )
        worst = max(lagging, key=lambda name: lagging[name])
        raise StaleReadError(
            f"no replica satisfies {consistency.level} for view {view_name!r}: "
            f"replica {worst!r} lags the head by {lagging[worst]} LSNs "
            f"(lagging: {lagging}, head LSN {self.router.head_lsn_source()})",
            lagging=lagging,
        )

    def partition_fragments(
        self,
        plan: PhysicalPlan,
        view_name: str,
        consistency: Consistency,
        exclude: set[str] | None = None,
    ) -> list[PlanFragment]:
        """Fragment *plan* along the hash partitions of the eligible replicas."""
        eligible = self.eligible_replicas(view_name, consistency)
        if exclude:
            eligible = [name for name in eligible if name not in exclude]
            if not eligible:
                raise ReplicaUnavailableError(
                    f"every eligible replica for view {view_name!r} died mid-query"
                )
        partitions = self.router.hash_partitions(eligible)
        return extract_fragments(plan, view_name, partitions)

    # -------------------------------------------------------------- #
    # execution
    # -------------------------------------------------------------- #
    def execute(
        self,
        query: str | Query | CallQuery | PhysicalPlan,
        view_name: str,
        consistency: Consistency = ANY,
        use_cache: bool = True,
        vectorized: bool | None = None,
    ) -> QueryResult:
        """Scatter *query* over the fleet's copy of *view_name* and gather.

        Fragments execute on the replicas owning their partitions; a replica
        dying between partitioning and execution re-partitions its share over
        the survivors.  The merged result is ordered by entity id and carries
        the fleet-wide ``candidates_examined`` total; ``latency_ms`` is the
        wall-clock of the whole scatter-gather.  *vectorized* overrides each
        replica executor's strategy for this query (both strategies are
        result-identical; the override exists so equivalence suites can run
        the same fleet both ways).
        """
        started = time.perf_counter()
        plan = self.compile(query)
        self.queries_routed += 1
        if plan.reach is not None:
            return self._execute_reach(plan, view_name, consistency, vectorized, started)
        dead: set[str] = set()
        partials = self._gather_fragments(
            plan, view_name, consistency, dead,
            lambda node, fragment: node.execute_fragment(
                fragment, use_cache=use_cache, vectorized=vectorized
            ),
        )
        result = merge_partial_results(plan, partials)
        result.latency_ms = (time.perf_counter() - started) * 1000.0
        return result

    def _gather_fragments(
        self,
        plan: PhysicalPlan,
        view_name: str,
        consistency: Consistency,
        dead: set[str],
        dispatch,
    ) -> list[QueryResult]:
        """Run *dispatch(node, fragment)* over every partition of the plan.

        The shared scatter loop of the one-shot paths (plain execution and
        both join steps): fragments execute on the replicas owning their
        partitions, and an owner dying between partitioning and execution has
        its share re-partitioned over the survivors (mutating *dead* so later
        phases of the same query skip it too).
        """
        partials: list[QueryResult] = []
        pending = self.partition_fragments(plan, view_name, consistency, exclude=dead)
        while pending:
            fragment = pending.pop()
            node = self.router.replicas.get(fragment.owner)
            try:
                if node is None:
                    raise ReplicaUnavailableError(
                        f"replica {fragment.owner!r} left the fleet mid-query"
                    )
                partials.append(dispatch(node, fragment))
                self.fragments_dispatched += 1
            except ReplicaUnavailableError:
                # The owner died after partitioning: re-partition only this
                # fragment's share of the hash space over the survivors.
                dead.add(fragment.owner)
                self.fragment_retries += 1
                replacements = self.partition_fragments(
                    plan, view_name, consistency, exclude=dead
                )
                pending.extend(
                    replacement.intersect(fragment.ranges)
                    for replacement in replacements
                )
                pending = [fragment for fragment in pending if fragment.ranges]
        return partials

    # -------------------------------------------------------------- #
    # distributed cross-view joins (broadcast / shuffle)
    # -------------------------------------------------------------- #
    def execute_join(
        self,
        left_query: str | Query | CallQuery | PhysicalPlan,
        left_view: str,
        right_query: str | Query | CallQuery | PhysicalPlan,
        right_view: str,
        left_key: str,
        right_key: str,
        how: str = "inner",
        consistency: Consistency = ANY,
        strategy: str = "auto",
        broadcast_threshold: int = 64,
        limit: int | None = None,
        use_cache: bool = True,
        vectorized: bool | None = None,
    ) -> QueryResult:
        """Join two views' query results replica-side, result-identical to primary.

        Executes *right_query* over *right_view* and *left_query* over
        *left_view*, then joins the row sets on
        ``left_key == right_key`` (both must be projected columns; key
        equality is :func:`~repro.live.executor.canonical_join_key`) exactly
        as :func:`~repro.live.executor.join_results` would on the primary.
        The join itself runs **on the replicas**, by one of two shapes:

        * **broadcast** — the right side is gathered first; when it is small
          (``≤ broadcast_threshold`` rows, or ``strategy="broadcast"``) it is
          shipped to every fragment of the left side, each replica probing
          only its own partition of the left view
          (:meth:`~repro.serving.replica.ReplicaNode.join_fragment`) — the
          big side never materializes at the router;
        * **shuffle** — otherwise both gathered sides are re-partitioned by
          ``stable_hash`` of their canonical join-key value, and each replica
          joins the one key-range share it owns
          (:meth:`~repro.serving.replica.ReplicaNode.join_partition`), so
          per-replica work is ~1/R of the primary-side join.

        Both shapes enforce *consistency* per fragment and re-dispatch dead
        replicas' shares over the survivors, like the scatter-gather path.
        Side queries must be plain MATCH pipelines: REACH sides route through
        the round protocol instead, and a per-side LIMIT is rejected
        (:class:`~repro.errors.KGQPlanError`) because a per-partition LIMIT
        under-collects — bound the joined result with *limit*.
        """
        started = time.perf_counter()
        if how not in ("inner", "left"):
            raise ServingError(f"unsupported join type {how!r}")
        if strategy not in ("auto", "broadcast", "shuffle"):
            raise ServingError(
                f"unknown join strategy {strategy!r}; "
                "use 'auto', 'broadcast', or 'shuffle'"
            )
        left_plan = self._join_side_plan(left_query, "left")
        right_plan = self._join_side_plan(right_query, "right")
        self.join_queries += 1
        dead: set[str] = set()
        right_result = self._gather_side(
            right_plan, right_view, consistency, dead, use_cache, vectorized
        )
        examined = right_result.candidates_examined
        if strategy == "broadcast" or (
            strategy == "auto" and len(right_result.rows) <= broadcast_threshold
        ):
            self.broadcast_joins += 1
            partials = self._gather_fragments(
                left_plan, left_view, consistency, dead,
                lambda node, fragment: self._dispatch_broadcast(
                    node, fragment, right_result.rows,
                    left_key, right_key, how, use_cache, vectorized,
                ),
            )
            joined = [row for partial in partials for row in partial.rows]
            examined += sum(partial.candidates_examined for partial in partials)
        else:
            self.shuffle_joins += 1
            left_result = self._gather_side(
                left_plan, left_view, consistency, dead, use_cache, vectorized
            )
            examined += left_result.candidates_examined
            joined = self._shuffle_join(
                left_plan, left_view, consistency, dead,
                left_result.rows, right_result.rows, left_key, right_key, how,
            )
        return QueryResult(
            rows=finalize_joined_rows(joined, limit),
            latency_ms=(time.perf_counter() - started) * 1000.0,
            from_cache=False,
            candidates_examined=examined,
        )

    def _join_side_plan(
        self, query: str | Query | CallQuery | PhysicalPlan, side: str
    ) -> PhysicalPlan:
        """Compile and validate one join side's plan."""
        plan = self.compile(query)
        if plan.reach is not None:
            raise KGQPlanError(
                f"the {side} side of a distributed join must be a plain MATCH "
                "pipeline; REACH queries route through the round protocol"
            )
        if plan.limit is not None:
            raise KGQPlanError(
                f"the {side} side of a distributed join must not carry LIMIT — "
                "a per-partition LIMIT under-collects; bound the joined result "
                "with execute_join(limit=...)"
            )
        return plan

    def _gather_side(
        self,
        plan: PhysicalPlan,
        view_name: str,
        consistency: Consistency,
        dead: set[str],
        use_cache: bool,
        vectorized: bool | None,
    ) -> QueryResult:
        """Scatter-gather one join side into a merged (dedup'd, ordered) result."""
        partials = self._gather_fragments(
            plan, view_name, consistency, dead,
            lambda node, fragment: node.execute_fragment(
                fragment, use_cache=use_cache, vectorized=vectorized
            ),
        )
        return merge_partial_results(plan, partials)

    def _dispatch_broadcast(
        self,
        node,
        fragment: PlanFragment,
        broadcast_rows: list[QueryResultRow],
        left_key: str,
        right_key: str,
        how: str,
        use_cache: bool,
        vectorized: bool | None,
    ) -> QueryResult:
        self.join_rows_broadcast += len(broadcast_rows)
        return node.join_fragment(
            fragment, broadcast_rows, left_key, right_key, how,
            use_cache=use_cache, vectorized=vectorized,
        )

    def _shuffle_join(
        self,
        plan: PhysicalPlan,
        view_name: str,
        consistency: Consistency,
        dead: set[str],
        left_rows: list[QueryResultRow],
        right_rows: list[QueryResultRow],
        left_key: str,
        right_key: str,
        how: str,
    ) -> list[QueryResultRow]:
        """Re-partition both sides by canonical key hash and join per owner.

        Entries are ``(canonical_key, side, row)``; the shared scatter
        protocol hashes the canonical key, so both sides' rows with equal
        join keys always land on the same owner and no match can be split.
        """
        entries: list[tuple[str, str, QueryResultRow]] = []
        for side, rows, key in (("L", left_rows, left_key), ("R", right_rows, right_key)):
            for row in rows:
                entries.append(
                    (canonical_join_key(projected_join_key(row, key)), side, row)
                )

        def dispatch(node, owner_entries: list) -> list[QueryResultRow]:
            lefts = [row for _, side, row in owner_entries if side == "L"]
            rights = [row for _, side, row in owner_entries if side == "R"]
            self.join_rows_shuffled += len(owner_entries)
            return node.join_partition(lefts, rights, left_key, right_key, how)

        return self._scatter_entries(
            plan, view_name, consistency, dead, entries, dispatch
        )

    # -------------------------------------------------------------- #
    # distributed REACH (round-based frontier scatter until fixpoint)
    # -------------------------------------------------------------- #
    def _execute_reach(
        self,
        plan: PhysicalPlan,
        view_name: str,
        consistency: Consistency,
        vectorized: bool | None,
        started: float,
    ) -> QueryResult:
        """Distributed RPQ: seed scatter, frontier rounds, answer gather.

        REACH plans cannot use the one-shot fragment path — a node reachable
        only from another partition's seed would be lost — so the router runs
        the shared round protocol (:mod:`repro.live.rpq`): (1) every replica
        seeds its own partition (the plan's MATCH/WHERE pipeline, LIMIT
        deferred); (2) each BFS round's frontier is scattered by subject hash,
        replicas expand one product step over their full view copy, and the
        router merges the candidates — the semiring *plus* keeps the canonical
        witness, making the merge order-insensitive — until the frontier is
        empty; (3) accepting answers are gathered partition-wise (fetch, ``TO``
        gate, projection) and the router attaches each row's witness.  A
        replica dying in any phase re-dispatches its share to the survivors,
        exactly like the fragment path.  Results are bit-identical to the
        primary's: same rows, same ordering, same canonical witnesses.
        """
        self.reach_queries += 1
        dead: set[str] = set()
        seeds: set[str] = set()
        examined = 0
        pending = self.partition_fragments(plan, view_name, consistency)
        while pending:
            fragment = pending.pop()
            node = self.router.replicas.get(fragment.owner)
            try:
                if node is None:
                    raise ReplicaUnavailableError(
                        f"replica {fragment.owner!r} left the fleet mid-query"
                    )
                subjects, fragment_examined = node.reach_seed_fragment(
                    fragment, vectorized=vectorized
                )
                seeds.update(subjects)
                examined += fragment_examined
                self.fragments_dispatched += 1
            except ReplicaUnavailableError:
                dead.add(fragment.owner)
                self.fragment_retries += 1
                replacements = self.partition_fragments(
                    plan, view_name, consistency, exclude=dead
                )
                pending.extend(
                    replacement.intersect(fragment.ranges)
                    for replacement in replacements
                )
                pending = [fragment for fragment in pending if fragment.ranges]

        automaton = plan.reach.automaton
        visited, frontier = initial_frontier(seeds, automaton)
        while frontier:
            self.reach_rounds += 1
            examined += len(frontier)
            candidates = self._scatter_entries(
                plan, view_name, consistency, dead, frontier,
                lambda node, entries: node.expand_reach(view_name, automaton, entries),
            )
            frontier = merge_frontier(visited, candidates)
        answers = accepting_answers(visited, automaton.accepting)

        rows = self._scatter_entries(
            plan, view_name, consistency, dead, sorted(answers),
            lambda node, subjects: node.project_reach(view_name, plan, subjects),
        )
        prefix = f"{view_name}:"
        for row in rows:
            subject = row.entity_id[len(prefix):] if row.entity_id.startswith(prefix) else row.entity_id
            row.witness = answers.get(subject)
        rows.sort(key=lambda row: row.entity_id)
        if plan.limit is not None:
            rows = rows[: plan.limit.limit]
        return QueryResult(
            rows=rows,
            latency_ms=(time.perf_counter() - started) * 1000.0,
            from_cache=False,
            candidates_examined=examined,
        )

    def _scatter_entries(
        self,
        plan: PhysicalPlan,
        view_name: str,
        consistency: Consistency,
        dead: set[str],
        entries: list,
        dispatch,
    ) -> list:
        """Scatter *entries* to their partition owners, gathering the outputs.

        Each entry is assigned to the replica whose hash partition covers its
        subject (frontier entries hash their node; answer subjects hash
        themselves); *dispatch(node, owner_entries)* runs the phase and its
        outputs are concatenated.  An owner dying mid-phase is excluded and
        its entries re-assigned over the survivors — mutating *dead* so later
        phases skip it too.
        """
        outputs: list = []
        pending = list(entries)
        while pending:
            fragments = self.partition_fragments(
                plan, view_name, consistency, exclude=dead
            )
            by_owner: dict[str, list] = {}
            for entry in pending:
                subject = entry[0] if isinstance(entry, tuple) else entry
                subject_hash = stable_hash(subject)
                owner = next(
                    (f.owner for f in fragments if f.covers(subject_hash)), None
                )
                if owner is None:
                    raise ServingError(
                        f"no partition covers subject {subject!r} for view "
                        f"{view_name!r} — the hash ring left a gap"
                    )
                by_owner.setdefault(owner, []).append(entry)
            pending = []
            for owner, owner_entries in sorted(by_owner.items()):
                node = self.router.replicas.get(owner)
                try:
                    if node is None:
                        raise ReplicaUnavailableError(
                            f"replica {owner!r} left the fleet mid-query"
                        )
                    outputs.extend(dispatch(node, owner_entries))
                    self.fragments_dispatched += 1
                except ReplicaUnavailableError:
                    dead.add(owner)
                    self.fragment_retries += 1
                    pending.extend(owner_entries)
        return outputs

    def explain(self, query: str | Query | CallQuery, view_name: str) -> list[str]:
        """EXPLAIN-style rendering: the shared plan plus current fragments."""
        plan = self.compile(query)
        steps = list(plan.explain())
        for fragment in self.partition_fragments(plan, view_name, ANY):
            steps.append(fragment.describe())
        return steps

    # -------------------------------------------------------------- #
    # introspection
    # -------------------------------------------------------------- #
    def stats(self) -> dict[str, float]:
        """Operational counters of the distributed query path.

        ``plan_cache_hit_ratio`` is hits over text compiles (0.0 before the
        first); pre-parsed and precompiled queries bypass the cache and count
        in neither term.
        """
        compiles = self.plan_cache_hits + self.plan_cache_misses
        return {
            "queries_routed": self.queries_routed,
            "fragments_dispatched": self.fragments_dispatched,
            "fragment_retries": self.fragment_retries,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "plan_cache_evictions": self.plan_cache_evictions,
            "plan_cache_hit_ratio": (
                self.plan_cache_hits / compiles if compiles else 0.0
            ),
            "consistency_rejections": self.consistency_rejections,
            "reach_queries": self.reach_queries,
            "reach_rounds": self.reach_rounds,
            "join_queries": self.join_queries,
            "broadcast_joins": self.broadcast_joins,
            "shuffle_joins": self.shuffle_joins,
            "join_rows_broadcast": self.join_rows_broadcast,
            "join_rows_shuffled": self.join_rows_shuffled,
        }
