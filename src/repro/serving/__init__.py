"""Replicated serving fleet: persistent journals, shipping, routed reads.

Turns the view/journal machinery of :mod:`repro.engine.views` into a
replicated serving tier (see ``docs/serving.md``): the primary's committed
view deltas are durably journaled (:class:`JournalStore`), shipped as
LSN-ranged batches (:class:`JournalShipper` over a :class:`ReplicationBus`)
to live replicas (:class:`ReplicaNode`) that apply them asynchronously, and
reads are routed across the replicas by consistent hashing under a
selectable consistency level (:class:`ShardRouter`, :class:`Consistency`).
Whole KGQs scatter-gather over the same partitions through the
:class:`QueryRouter`, and the :class:`AntiEntropyAuditor` periodically
checksums replica state against the primary, repairing lag by journal
replay and divergence by targeted row re-shipment.
:class:`ServingFleet` wires all of it over one view manager, and the
multi-tenant asyncio :class:`FrontDoor` (see ``docs/frontdoor.md``) admits,
isolates, and observes request traffic on top of it.
"""

from repro.serving.anti_entropy import AntiEntropyAuditor, AuditReport, ReplicaAudit
from repro.serving.fleet import ServingFleet
from repro.serving.frontdoor import (
    AdmissionQueue,
    FrontDoor,
    LatencyHistogram,
    Priority,
    ServingMetrics,
    TenantProfile,
    TenantRegistry,
    TokenBucket,
)
from repro.serving.journal_store import (
    FileJournalBackend,
    InMemoryJournalBackend,
    JournalBackend,
    JournalRecord,
    JournalStore,
)
from repro.serving.query_router import QueryRouter
from repro.serving.replica import ReplicaNode
from repro.serving.router import ANY, Consistency, ShardRouter, stable_hash
from repro.serving.shipping import JournalShipper, ReplicationBus, ShipmentBatch

__all__ = [
    "ANY",
    "AdmissionQueue",
    "AntiEntropyAuditor",
    "AuditReport",
    "Consistency",
    "FileJournalBackend",
    "FrontDoor",
    "InMemoryJournalBackend",
    "JournalBackend",
    "JournalRecord",
    "JournalShipper",
    "JournalStore",
    "LatencyHistogram",
    "Priority",
    "QueryRouter",
    "ReplicaAudit",
    "ReplicaNode",
    "ReplicationBus",
    "ServingFleet",
    "ServingMetrics",
    "ShardRouter",
    "ShipmentBatch",
    "TenantProfile",
    "TenantRegistry",
    "TokenBucket",
    "stable_hash",
]
