"""Replicated serving fleet: persistent journals, shipping, routed reads.

Turns the view/journal machinery of :mod:`repro.engine.views` into a
replicated serving tier (see ``docs/serving.md``): the primary's committed
view deltas are durably journaled (:class:`JournalStore`), shipped as
LSN-ranged batches (:class:`JournalShipper` over a :class:`ReplicationBus`)
to live replicas (:class:`ReplicaNode`) that apply them asynchronously, and
reads are routed across the replicas by consistent hashing under a
selectable consistency level (:class:`ShardRouter`, :class:`Consistency`).
:class:`ServingFleet` wires all of it over one view manager.
"""

from repro.serving.fleet import ServingFleet
from repro.serving.journal_store import (
    FileJournalBackend,
    InMemoryJournalBackend,
    JournalBackend,
    JournalRecord,
    JournalStore,
)
from repro.serving.replica import ReplicaNode
from repro.serving.router import ANY, Consistency, ShardRouter
from repro.serving.shipping import JournalShipper, ReplicationBus, ShipmentBatch

__all__ = [
    "ANY",
    "Consistency",
    "FileJournalBackend",
    "InMemoryJournalBackend",
    "JournalBackend",
    "JournalRecord",
    "JournalShipper",
    "JournalStore",
    "ReplicaNode",
    "ReplicationBus",
    "ServingFleet",
    "ShardRouter",
    "ShipmentBatch",
]
