"""LSN-aware read routing over a consistent-hash ring of replicas.

The :class:`ShardRouter` spreads entities across replicas with a consistent
hash ring (stable across processes — Python's salted ``hash`` is never used)
and serves point reads under a selectable :class:`Consistency` level, checked
against each replica's per-view applied-LSN watermark:

* ``any`` — serve from the first live owner, staleness be damned;
* ``bounded_staleness(max_lag_lsns)`` — the serving replica may lag the
  primary head by at most that many log positions;
* ``read_your_writes(min_lsn)`` — the serving replica must have applied at
  least the LSN of the write the reader just made.

When the preferred owner fails the check the router walks the ring to the
next replicas (a *fallback read*, counted); when no live replica satisfies
the level it raises :class:`~repro.errors.StaleReadError` — an honest "wait
or relax" answer instead of a silently stale row.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ReplicaUnavailableError, ServingError, StaleReadError
from repro.hashing import MAX_HASH, stable_hash

__all__ = [
    "ANY",
    "Consistency",
    "MAX_HASH",
    "ShardRouter",
    "stable_hash",
]


@dataclass(frozen=True)
class Consistency:
    """A read's freshness requirement, checked against applied-LSN watermarks."""

    level: str                       # "any" | "bounded_staleness" | "read_your_writes"
    max_lag_lsns: int = 0
    min_lsn: int = 0

    @classmethod
    def any(cls) -> "Consistency":
        """Serve from any live replica regardless of lag."""
        return cls(level="any")

    @classmethod
    def bounded_staleness(cls, max_lag_lsns: int) -> "Consistency":
        """Serve only from replicas within *max_lag_lsns* of the primary head."""
        if max_lag_lsns < 0:
            raise ServingError("bounded staleness needs a non-negative lag bound")
        return cls(level="bounded_staleness", max_lag_lsns=max_lag_lsns)

    @classmethod
    def read_your_writes(cls, min_lsn: int) -> "Consistency":
        """Serve only from replicas that applied at least *min_lsn*."""
        return cls(level="read_your_writes", min_lsn=min_lsn)


#: The default level: availability first.
ANY = Consistency.any()

# MAX_HASH and stable_hash historically lived here; they moved to
# repro.hashing so the live KV store can shard by the same function without
# a live -> serving package cycle.  Re-exported above for existing callers.


class ShardRouter:
    """Consistent-hash read router over the fleet's replica nodes."""

    def __init__(
        self,
        head_lsn_source: Callable[[], int],
        virtual_nodes: int = 32,
    ) -> None:
        if virtual_nodes <= 0:
            raise ServingError("the hash ring needs at least one virtual node per replica")
        self.head_lsn_source = head_lsn_source
        self.virtual_nodes = virtual_nodes
        self.replicas: dict[str, object] = {}
        self._ring: list[tuple[int, str]] = []   # (point, replica name), sorted
        self.reads_routed = 0
        self.fallback_reads = 0                  # served by a non-preferred owner
        self.consistency_rejections = 0          # replicas skipped for staleness

    # -------------------------------------------------------------- #
    # membership
    # -------------------------------------------------------------- #
    def add_replica(self, node) -> None:
        """Add a replica node to the ring (``virtual_nodes`` points each)."""
        if node.name in self.replicas:
            raise ServingError(f"replica {node.name!r} is already routed")
        self.replicas[node.name] = node
        for index in range(self.virtual_nodes):
            point = stable_hash(f"{node.name}#{index}")
            bisect.insort(self._ring, (point, node.name))

    def remove_replica(self, name: str) -> None:
        """Remove a replica; its key ranges redistribute to ring successors."""
        self.replicas.pop(name, None)
        self._ring = [(point, owner) for point, owner in self._ring if owner != name]

    # -------------------------------------------------------------- #
    # routing
    # -------------------------------------------------------------- #
    def ring_points(self) -> list[tuple[int, str]]:
        """The sorted ``(point, replica)`` ring (read-only copy)."""
        return list(self._ring)

    def hash_partitions(
        self, eligible: Sequence[str]
    ) -> dict[str, list[tuple[int, int]]]:
        """Partition the subject hash space among the *eligible* replicas.

        Each ring arc ``(previous point, point]`` is assigned to the first
        eligible replica at or after its end point — exactly the replica
        :meth:`read` would serve a subject hashing into that arc from, so a
        scatter-gathered fragment and a point read of the same subject land
        on the same node.  Ranges are ``(low, high]`` over the 64-bit hash
        space; the wrap-around arc splits into a tail range and a head range.
        Adjacent arcs with the same owner are coalesced.  Returns an empty
        mapping when no eligible replica is on the ring.
        """
        allowed = set(eligible)
        ring = self._ring
        if not ring or not allowed:
            return {}
        size = len(ring)
        # One backwards sweep (twice around for the wrap) carrying the next
        # eligible owner at-or-after each position — O(ring), where a naive
        # per-position forward walk is O(ring^2) exactly when most replicas
        # are ineligible (the consistency-gated hot path).
        arc_owners: list[str | None] = [None] * size
        next_owner: str | None = None
        for position in range(2 * size - 1, -1, -1):
            name = ring[position % size][1]
            if name in allowed:
                next_owner = name
            if position < size:
                arc_owners[position] = next_owner
        if arc_owners[0] is None:
            return {}
        partitions: dict[str, list[tuple[int, int]]] = {}
        for position in range(1, size):
            owner = arc_owners[position]
            low, high = ring[position - 1][0], ring[position][0]
            if low == high:
                continue
            ranges = partitions.setdefault(owner, [])
            if ranges and ranges[-1][1] == low:
                ranges[-1] = (ranges[-1][0], high)
            else:
                ranges.append((low, high))
        # The wrap-around arc: everything above the last point plus
        # everything at or below the first point belongs to arc 0's owner.
        head_owner = arc_owners[0]
        ranges = partitions.setdefault(head_owner, [])
        if ring[-1][0] < MAX_HASH - 1:
            ranges.append((ring[-1][0], MAX_HASH))
        ranges.insert(0, (-1, ring[0][0]))
        return partitions

    def owners(self, subject: str, count: int | None = None) -> list[str]:
        """The replicas responsible for *subject*, in ring (preference) order."""
        if not self._ring:
            return []
        limit = count if count is not None else len(self.replicas)
        start = bisect.bisect_left(self._ring, (stable_hash(subject), ""))
        ordered: list[str] = []
        for offset in range(len(self._ring)):
            _, name = self._ring[(start + offset) % len(self._ring)]
            if name not in ordered:
                ordered.append(name)
                if len(ordered) >= limit:
                    break
        return ordered

    def read(self, view_name: str, subject: str, consistency: Consistency = ANY):
        """Serve one row document of *view_name* for *subject*.

        Walks the subject's owners in preference order, skipping dead
        replicas, replicas that do not serve the view at all (a node that
        just joined and has not been seeded must not report false misses),
        and replicas that fail the consistency check.  Returns the document
        (or ``None`` when the qualifying replica does not serve the
        subject — a real miss, e.g. a deleted row).  Raises
        :class:`~repro.errors.ReplicaUnavailableError` when no owner is
        alive and :class:`~repro.errors.StaleReadError` when live owners
        exist but none satisfies *consistency*.
        """
        owners = self.owners(subject)
        if not owners:
            raise ReplicaUnavailableError("the router has no replicas to serve reads")
        self.reads_routed += 1
        saw_live = False
        for position, name in enumerate(owners):
            node = self.replicas[name]
            if not node.alive:
                continue
            saw_live = True
            if not node.serves_view(view_name):
                continue
            if not self.satisfies(node, view_name, consistency):
                self.consistency_rejections += 1
                continue
            if position > 0:
                self.fallback_reads += 1
            return node.get(view_name, subject)
        if not saw_live:
            raise ReplicaUnavailableError(
                f"no live replica among owners {owners} of {subject!r}"
            )
        raise StaleReadError(
            f"no replica satisfies {consistency.level} for view {view_name!r} "
            f"(owners {owners}, head LSN {self.head_lsn_source()})"
        )

    def satisfies(self, node, view_name: str, consistency: Consistency) -> bool:
        """Whether *node*'s applied watermark meets *consistency* for the view."""
        if consistency.level == "any":
            return True
        applied = node.applied_lsn(view_name)
        if consistency.level == "bounded_staleness":
            return applied >= self.head_lsn_source() - consistency.max_lag_lsns
        if consistency.level == "read_your_writes":
            return applied >= consistency.min_lsn
        raise ServingError(f"unknown consistency level {consistency.level!r}")

    # -------------------------------------------------------------- #
    # introspection
    # -------------------------------------------------------------- #
    def shard_map(self, subjects: list[str]) -> dict[str, str]:
        """Preferred owner per subject (for balance inspection)."""
        return {subject: (self.owners(subject, 1) or [""])[0] for subject in subjects}

    def replica_lag(self, view_name: str) -> dict[str, int]:
        """Per-replica lag behind the primary head for one view, in LSNs."""
        head = self.head_lsn_source()
        return {
            name: max(0, head - node.applied_lsn(view_name))
            for name, node in sorted(self.replicas.items())
        }

    def healthy_replicas(self) -> list[str]:
        """Names of the replicas currently alive."""
        return sorted(name for name, node in self.replicas.items() if node.alive)
