"""Replica nodes: apply shipped view deltas into a local live-index shard.

A :class:`ReplicaNode` owns one :class:`~repro.live.index.LiveIndex` and
applies :class:`~repro.serving.shipping.ShipmentBatch` messages into it
**asynchronously**: ``offer`` enqueues onto a bounded queue and returns
immediately (the primary's flush thread is never coupled to replica apply
speed), while a worker thread drains the queue.  A full queue *drops* the
batch — the subsequent gap detection repairs the loss — so a slow replica
degrades to lag, never to backpressure on the primary.

Batches are chained by ``prev_lsn``; a replica whose applied LSN does not
reach a delta batch's ``prev_lsn`` (missed shipment, crash, late
subscription) or whose revision disagrees detects the **gap** and resyncs by
pulling a catch-up batch from its ``resync_source`` (the shipper): a journal
delta when persisted history covers the gap, a full snapshot otherwise.

Durability model: the node's index plays the role of the replica's local
store and the checkpoint persisted through the
:class:`~repro.serving.journal_store.JournalStore` records exactly what that
store has applied (the checkpoint is written after every applied batch).  A
*crash* (:meth:`kill`) loses the in-flight queue but not the applied state;
:meth:`restart` reloads the checkpoint and catches up **from the persisted
journal, starting at the last applied LSN** — no view artifact is rebuilt.

Beyond point reads, every replica is a **query node**: it owns a
:class:`~repro.live.planner.QueryPlanner` and
:class:`~repro.live.executor.QueryExecutor` over its shard, executes plan
fragments scoped to its partition of the subject hash space
(:meth:`execute_fragment`, driven by the scatter-gather
:class:`~repro.serving.query_router.QueryRouter`), answers whole KGQs
locally (:meth:`query`), and audits its served rows against primary
checksums (:meth:`checksum_divergence`, :meth:`apply_repair` — the
anti-entropy hooks).
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from typing import Callable

from repro.engine.metadata import WatermarkMap
from repro.errors import KGQPlanError, ReplicaUnavailableError, ServingError
from repro.live.executor import (
    QueryExecutor,
    QueryResult,
    QueryResultRow,
    join_result_rows,
)
from repro.live.index import LiveIndex, document_checksum, view_row_documents
from repro.live.kgq import CallQuery, Query, default_virtual_operators, parse
from repro.live.planner import PhysicalPlan, PlanFragment, QueryPlanner
from repro.live.rpq import Automaton, FrontierEntry, expand_product_entries
from repro.serving.router import stable_hash
from repro.serving.shipping import ShipmentBatch

#: Signature of the per-apply watermark callback: (replica, view, applied LSN).
WatermarkSink = Callable[[str, str, int], None]


class ReplicaNode:
    """One serving replica: bounded-queue async apply over its own LiveIndex."""

    def __init__(
        self,
        name: str,
        num_shards: int = 4,
        queue_capacity: int = 256,
        resync_source=None,
        journal_store=None,
        watermark_sink: WatermarkSink | None = None,
        entity_type: str = "view_row",
    ) -> None:
        if not name:
            raise ServingError("replica needs a non-empty name")
        if queue_capacity <= 0:
            raise ServingError("replica queue capacity must be positive")
        self.name = name
        self.index = LiveIndex(num_shards)
        self.planner = QueryPlanner(
            default_virtual_operators(), selectivity=self.index.seed_selectivity
        )
        self.executor = QueryExecutor(self.index)
        self.applied = WatermarkMap()            # view -> applied LSN
        self.revisions: dict[str, int] = {}      # view -> state lineage served
        self.resync_source = resync_source
        self.journal_store = journal_store
        self.watermark_sink = watermark_sink
        self.entity_type = entity_type
        self._queue: queue.Queue[ShipmentBatch | None] = queue.Queue(maxsize=queue_capacity)
        self._worker: threading.Thread | None = None
        self._alive = False
        # Reentrant: a gap detected mid-apply resyncs inline under the lock.
        self._apply_lock = threading.RLock()
        self.batches_offered = 0
        self.batches_applied = 0
        self.batches_skipped = 0                 # duplicates below the applied LSN
        self.backpressure_drops = 0
        self.gaps_detected = 0
        self.resyncs = 0
        self.snapshot_resyncs = 0
        self.fragments_executed = 0
        self.local_queries = 0
        self.joins_executed = 0                  # broadcast probes + shuffle partitions
        self.join_rows_probed = 0                # probe-side rows this node joined
        self.join_rows_built = 0                 # build-side rows this node received
        self.divergence_repairs = 0
        # Bounded: a stream of poison batches must not grow memory.
        self.apply_errors: deque[str] = deque(maxlen=256)

    # -------------------------------------------------------------- #
    # lifecycle
    # -------------------------------------------------------------- #
    @property
    def alive(self) -> bool:
        """Whether the node currently accepts and applies batches."""
        return self._alive

    def start(self) -> "ReplicaNode":
        """Start the apply worker (idempotent); returns self for chaining."""
        if self._alive:
            return self
        self._alive = True
        self._worker = threading.Thread(
            target=self._run, name=f"replica-{self.name}", daemon=True
        )
        self._worker.start()
        return self

    def stop(self) -> None:
        """Drain the queue, then stop the worker (a clean shutdown)."""
        if not self._alive:
            return
        self._queue.put(None)                    # sentinel: drain then exit
        if self._worker is not None:
            self._worker.join(timeout=10)
        self._alive = False
        self._worker = None

    def kill(self) -> int:
        """Simulate a crash: the worker dies, queued batches are lost.

        The applied state (index + checkpoint) survives — it models the
        replica's local store — but everything in flight is gone.  Returns
        the number of batches dropped from the queue.
        """
        self._alive = False                      # worker exits at next get()
        try:
            self._queue.put_nowait(None)         # wake it if blocked on an empty queue
        except queue.Full:
            pass                                 # worker is mid-batch; it checks _alive next
        if self._worker is not None:
            self._worker.join(timeout=10)
        self._worker = None
        dropped = 0
        while True:
            try:
                if self._queue.get_nowait() is not None:
                    dropped += 1
                self._queue.task_done()
            except queue.Empty:
                break
        return dropped

    def restart(self, views: list[str] | None = None) -> list[str]:
        """Recover after a crash: reload the checkpoint, catch up, serve again.

        The persisted checkpoint is authoritative for what the local store
        reflects; every checkpointed view (or *views*, when given) is caught
        up through the resync source **starting from its applied LSN** — a
        journal replay, not an artifact rebuild, whenever persisted history
        covers the gap.  Returns the views that were caught up.
        """
        if self.journal_store is not None:
            applied, revisions = self.journal_store.load_replica_checkpoint(self.name)
            for view_name, lsn in applied.items():
                self.applied.advance(view_name, lsn)
            self.revisions.update(revisions)
        self.start()
        targets = views if views is not None else sorted(self.revisions)
        caught_up = []
        for view_name in targets:
            if self.resync(view_name):
                caught_up.append(view_name)
        return caught_up

    def drain(self, timeout: float = 10.0) -> bool:
        """Wait until every offered batch has been applied (or *timeout*).

        Polls the queue's unfinished-task count under its condition instead
        of parking a thread in ``Queue.join()`` — a wedged replica must not
        leak one permanently blocked waiter per drain attempt.
        """
        deadline = time.monotonic() + timeout
        while True:
            with self._queue.all_tasks_done:
                if self._queue.unfinished_tasks == 0:
                    return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.002)

    # -------------------------------------------------------------- #
    # replication protocol
    # -------------------------------------------------------------- #
    def offer(self, batch: ShipmentBatch) -> bool:
        """Enqueue a batch for asynchronous apply.

        Raises :class:`~repro.errors.ReplicaUnavailableError` when the node
        is down (the bus records the failed delivery).  A full queue drops
        the batch and lets gap detection repair the loss later — the caller
        is never blocked.
        """
        if not self._alive:
            raise ReplicaUnavailableError(f"replica {self.name!r} is not running")
        self.batches_offered += 1
        try:
            self._queue.put_nowait(batch)
            return True
        except queue.Full:
            self.backpressure_drops += 1
            return False

    def resync(self, view_name: str) -> bool:
        """Pull a catch-up batch for one view and apply it inline."""
        if self.resync_source is None:
            return False
        self.resyncs += 1
        batch = self.resync_source.catchup_batch(
            view_name, self.applied.of(view_name), self.revisions.get(view_name, 0)
        )
        if batch.kind == "snapshot":
            self.snapshot_resyncs += 1
        with self._apply_lock:
            self._apply(batch, resyncing=True)
        return True

    def applied_lsn(self, view_name: str) -> int:
        """The LSN this replica's copy of *view_name* reflects (0 when unserved)."""
        return self.applied.of(view_name)

    def serves_view(self, view_name: str) -> bool:
        """Whether this node has ever applied state for *view_name*.

        The router skips non-serving nodes instead of reporting their empty
        index as a row miss.
        """
        return view_name in self.revisions

    def min_applied_lsn(self) -> int:
        """The LSN every served view has reached (0 when nothing is served)."""
        if not self.applied:
            return 0
        return min(self.applied.values())

    def get(self, view_name: str, subject: str):
        """Point-read one served row document (None when not served here)."""
        return self.index.get(f"{view_name}:{subject}")

    # -------------------------------------------------------------- #
    # query surface (distributed KGQ execution)
    # -------------------------------------------------------------- #
    def execute_fragment(
        self,
        fragment: PlanFragment,
        use_cache: bool = True,
        vectorized: bool | None = None,
    ) -> QueryResult:
        """Execute one plan fragment over this node's copy of the view.

        The fragment's plan runs through this node's own executor, scoped to
        the view's feed documents whose subject hashes into the fragment's
        partition ranges — the node examines only the slice of the view it
        owns, which is what lets fleet query capacity scale with replica
        count.  Runs under the apply lock so a fragment never observes a
        half-applied batch.  *vectorized* overrides the executor's strategy
        for this fragment (both strategies are result-identical).  Raises
        :class:`~repro.errors.ReplicaUnavailableError` when the node is down.
        """
        if not self._alive:
            raise ReplicaUnavailableError(
                f"replica {self.name!r} is not running; cannot execute fragments"
            )
        if fragment.plan.reach is not None:
            raise KGQPlanError(
                "REACH plans do not fragment: a partition-scoped answer set "
                "would miss nodes reached from other partitions' seeds — "
                "route them through QueryRouter's round protocol "
                "(reach_seed_fragment / expand_reach / project_reach)"
            )
        in_partition = self._partition_scope(fragment)
        with self._apply_lock:
            result = self.executor.execute(
                fragment.plan,
                use_cache=use_cache,
                scope=in_partition,
                scope_key=fragment.cache_key(),
                vectorized=vectorized,
            )
        self.fragments_executed += 1
        return result

    def _partition_scope(self, fragment: PlanFragment) -> Callable:
        """Scope callable confining execution to the fragment's partition."""
        feed = f"view:{fragment.view_name}"
        prefix = f"{fragment.view_name}:"

        def in_partition(document) -> bool:
            if document.source_id != feed:
                return False
            # The subject hash is a pure function of the entity id; memoize
            # it on the document (replaced wholesale on every apply) so the
            # per-query cost is range checks, not O(N) blake2b digests.
            subject_hash = document.__dict__.get("_subject_hash")
            if subject_hash is None:
                subject_hash = stable_hash(document.entity_id[len(prefix):])
                document._subject_hash = subject_hash
            return fragment.covers(subject_hash)

        return in_partition

    # -------------------------------------------------------------- #
    # distributed cross-view joins (driven by QueryRouter.execute_join)
    # -------------------------------------------------------------- #
    def join_fragment(
        self,
        fragment: PlanFragment,
        broadcast_rows: list[QueryResultRow],
        left_key: str,
        right_key: str,
        how: str = "inner",
        use_cache: bool = True,
        vectorized: bool | None = None,
    ) -> QueryResult:
        """Broadcast join step: probe this partition's rows against a small side.

        The router ships the (already gathered, deduplicated) small side to
        every fragment of the big side; this node executes its fragment of
        the big side's plan locally and joins the partition's rows against
        the broadcast build table — the big side is never materialized at the
        router.  Each big-side row lives in exactly one partition, so
        concatenating the fragments' joined rows reproduces the full join.
        """
        result = self.execute_fragment(
            fragment, use_cache=use_cache, vectorized=vectorized
        )
        joined = join_result_rows(
            result.rows, broadcast_rows, left_key, right_key, how
        )
        self.joins_executed += 1
        self.join_rows_probed += len(result.rows)
        self.join_rows_built += len(broadcast_rows)
        return QueryResult(
            rows=joined,
            latency_ms=result.latency_ms,
            from_cache=result.from_cache,
            candidates_examined=result.candidates_examined,
        )

    def join_partition(
        self,
        left_rows: list[QueryResultRow],
        right_rows: list[QueryResultRow],
        left_key: str,
        right_key: str,
        how: str = "inner",
    ) -> list[QueryResultRow]:
        """Shuffle join step: join one key-partition's share of both sides.

        The router re-partitions both gathered sides by the canonical hash
        of their join-key values, so this node receives *every* row — left
        and right — whose key falls in its partitions, and rows joining each
        other are never split across nodes.  Returns the partition's joined
        rows; per-replica work is the partition's share (~1/R of the
        primary-side join), which is the scaling the IVMJOIN benchmark gates.
        """
        if not self._alive:
            raise ReplicaUnavailableError(
                f"replica {self.name!r} is not running; cannot join partitions"
            )
        joined = join_result_rows(left_rows, right_rows, left_key, right_key, how)
        self.fragments_executed += 1
        self.joins_executed += 1
        self.join_rows_probed += len(left_rows)
        self.join_rows_built += len(right_rows)
        return joined

    # -------------------------------------------------------------- #
    # distributed REACH protocol (driven by QueryRouter)
    # -------------------------------------------------------------- #
    def reach_seed_fragment(
        self,
        fragment: PlanFragment,
        vectorized: bool | None = None,
    ) -> tuple[list[str], int]:
        """Seed phase of a distributed REACH: this partition's matching subjects.

        Runs the fragment plan's seed/filter pipeline (LIMIT deferred — it
        bounds the final answers, not the seeds) over the partition this
        fragment covers, and returns the matching **subjects** (view row keys
        with the ``view:`` prefix stripped) plus the examined count.
        """
        if not self._alive:
            raise ReplicaUnavailableError(
                f"replica {self.name!r} is not running; cannot seed REACH queries"
            )
        prefix = f"{fragment.view_name}:"
        in_partition = self._partition_scope(fragment)
        with self._apply_lock:
            documents, examined = self.executor.match_documents(
                fragment.plan,
                scope=in_partition,
                vectorized=vectorized,
                apply_limit=False,
            )
        self.fragments_executed += 1
        subjects = [
            document.entity_id[len(prefix):]
            if document.entity_id.startswith(prefix)
            else document.entity_id
            for document in documents
        ]
        return subjects, examined

    def expand_reach(
        self,
        view_name: str,
        automaton: Automaton,
        entries: list[FrontierEntry],
    ) -> list[FrontierEntry]:
        """One product-BFS step over this node's copy of the view's graph.

        The router scatters each round's frontier by subject hash; every
        replica holds the full view copy, so expanding any entry here yields
        the same successors the primary would produce.  Returns the raw
        candidate entries — the router merges them (semiring *plus*) across
        replicas.
        """
        if not self._alive:
            raise ReplicaUnavailableError(
                f"replica {self.name!r} is not running; cannot expand REACH frontiers"
            )
        with self._apply_lock:
            graph = self.index.adjacency.graph(f"view:{view_name}")
            candidates = expand_product_entries(graph, automaton, entries)
        self.fragments_executed += 1
        return candidates

    def project_reach(
        self,
        view_name: str,
        plan: PhysicalPlan,
        subjects: list[str],
    ) -> list[QueryResultRow]:
        """Gather phase: project this partition's REACH answer subjects.

        Fetches each subject's served row document, applies the plan's ``TO``
        type gate (untyped documents pass, as everywhere else), and projects
        through the plan's RETURN clause.  Subjects not served here (vanished
        rows, foreign feeds) are silently dropped — the router only sends
        subjects it believes this node owns, and honest omission beats a
        fabricated row.
        """
        if not self._alive:
            raise ReplicaUnavailableError(
                f"replica {self.name!r} is not running; cannot project REACH answers"
            )
        feed = f"view:{view_name}"
        reach = plan.reach
        with self._apply_lock:
            documents = self.index.get_many(
                [f"{view_name}:{subject}" for subject in subjects]
            )
            survivors = []
            for subject in subjects:
                document = documents.get(f"{view_name}:{subject}")
                if document is None or document.source_id != feed:
                    continue
                if (
                    reach is not None
                    and reach.target_type
                    and document.entity_type
                    and document.entity_type != reach.target_type
                ):
                    continue
                survivors.append(document)
            rows = self.executor.project_documents(survivors, plan)
        self.fragments_executed += 1
        return rows

    def query(
        self,
        query: str | Query | CallQuery,
        view_name: str | None = None,
        vectorized: bool | None = None,
    ) -> QueryResult:
        """Plan and execute a whole KGQ against this node's own index.

        The local, un-fragmented query surface: useful for single-replica
        deployments and for debugging what one node would answer on its own.
        *view_name* (when given) restricts execution to that view's feed;
        *vectorized* overrides the executor's strategy for this call.
        """
        if not self._alive:
            raise ReplicaUnavailableError(
                f"replica {self.name!r} is not running; cannot serve queries"
            )
        plan: PhysicalPlan = self.planner.plan(
            parse(query) if isinstance(query, str) else query
        )
        scope = None
        scope_key = ""
        reach_feed = ""
        if view_name is not None:
            feed = f"view:{view_name}"
            reach_feed = feed

            def scope(document, feed=feed):
                return document.source_id == feed

            scope_key = f"feed:{view_name}"
        with self._apply_lock:
            result = self.executor.execute(
                plan,
                scope=scope,
                scope_key=scope_key,
                vectorized=vectorized,
                reach_feed=reach_feed,
            )
        self.local_queries += 1
        return result

    # -------------------------------------------------------------- #
    # anti-entropy hooks
    # -------------------------------------------------------------- #
    def checksum_divergence(
        self,
        view_name: str,
        expected: dict[str, str],
        at_lsn: int | None = None,
        at_revision: int | None = None,
    ) -> tuple[list[str], list[str], list[str]] | None:
        """Compare served documents against primary checksums for one view.

        *expected* maps each subject the primary serves to the
        :func:`~repro.live.index.document_checksum` of the document its row
        builds to.  Returns ``(missing, extra, mismatched)`` subject lists:
        rows the primary has that this node lacks, rows this node serves that
        the primary dropped, and rows whose content digests disagree.  Runs
        under the apply lock so the audit never races a half-applied batch.
        *at_lsn* / *at_revision* (when given) pin the comparison to the
        state the checksums were audited at: if this node has applied a
        batch since the caller's unlocked watermark check, the comparison
        would misread fresh rows as divergence, so ``None`` is returned
        instead — the caller treats it as "moved past the snapshot".
        """
        with self._apply_lock:
            if at_lsn is not None and self.applied.of(view_name) != at_lsn:
                return None
            if at_revision is not None and self.revisions.get(view_name) != at_revision:
                return None
            served = self.index.feed_documents(f"view:{view_name}")
            missing: list[str] = []
            mismatched: list[str] = []
            for subject, digest in expected.items():
                document = self.index.get(f"{view_name}:{subject}")
                if document is None:
                    missing.append(subject)
                elif document_checksum(document) != digest:
                    mismatched.append(subject)
            expected_ids = {f"{view_name}:{subject}" for subject in expected}
            prefix_length = len(view_name) + 1
            extra = sorted(
                doc_id[prefix_length:] for doc_id in served - expected_ids
            )
        return sorted(missing), extra, sorted(mismatched)

    def apply_repair(self, batch: ShipmentBatch) -> bool:
        """Apply a targeted anti-entropy repair batch inline.

        Repair batches carry the audited snapshot's rows for diverged
        subjects (plus deletes for rows the primary no longer had) at the
        LSN the audit compared against, so the normal duplicate-suppression
        would drop them; ``force`` pushes them through the same delta-apply
        machinery.  A repair is only valid against the exact state it was
        audited at: when this node has already applied past the batch's LSN
        (or onto another revision) — a flush landed between audit and
        repair — the stale repair is refused (returns ``False``; the next
        audit pass re-compares against the newer state) rather than
        regressing fresher rows.  The check and the apply share the apply
        lock, so a concurrent worker apply cannot slip between them.
        """
        with self._apply_lock:
            if (
                self.applied.of(batch.view_name) != batch.lsn
                or self.revisions.get(batch.view_name) != batch.revision
            ):
                return False
            self._apply(batch, resyncing=True, force=True)
        self.divergence_repairs += 1
        return True

    def status(self) -> dict[str, object]:
        """Health and progress snapshot for fleet introspection."""
        return {
            "alive": self._alive,
            "documents": len(self.index),
            "queue_depth": self._queue.qsize(),
            "applied_lsns": dict(self.applied),
            "batches_applied": self.batches_applied,
            "backpressure_drops": self.backpressure_drops,
            "gaps_detected": self.gaps_detected,
            "resyncs": self.resyncs,
            "snapshot_resyncs": self.snapshot_resyncs,
            "fragments_executed": self.fragments_executed,
            "local_queries": self.local_queries,
            "joins_executed": self.joins_executed,
            "join_rows_probed": self.join_rows_probed,
            "join_rows_built": self.join_rows_built,
            "divergence_repairs": self.divergence_repairs,
            "apply_errors": list(self.apply_errors),
        }

    # -------------------------------------------------------------- #
    # apply machinery
    # -------------------------------------------------------------- #
    def _run(self) -> None:
        while True:
            batch = self._queue.get()
            try:
                if batch is None or not self._alive:
                    break
                with self._apply_lock:
                    self._apply(batch)
            except Exception as exc:  # noqa: BLE001 - a bad batch must not kill the worker
                self.apply_errors.append(f"{batch.view_name}@{batch.lsn}: {exc}")
            finally:
                self._queue.task_done()

    def _apply(
        self, batch: ShipmentBatch, resyncing: bool = False, force: bool = False
    ) -> None:
        feed = f"view:{batch.view_name}"
        if batch.kind == "drop":
            self.index.drop_feed(feed)
            self.applied.pop(batch.view_name, None)
            self.revisions.pop(batch.view_name, None)
            self.executor.invalidate_cache()
            self._checkpoint()
            return
        if batch.kind == "snapshot":
            documents = view_row_documents(
                batch.view_name, feed, batch.rows, batch.lsn, self.entity_type
            )
            self.index.replace_feed(feed, documents, batch.lsn)
            # Snapshots may rewind across revisions: set, don't advance.
            self.applied[batch.view_name] = batch.lsn
            self.revisions[batch.view_name] = batch.revision
            self.executor.invalidate_cache()
            self._commit(batch.view_name)
            return
        # delta batch
        applied = self.applied.of(batch.view_name)
        if (
            not force
            and batch.lsn <= applied
            and self.revisions.get(batch.view_name) == batch.revision
        ):
            self.batches_skipped += 1            # duplicate / already covered
            return
        if not resyncing and (
            self.revisions.get(batch.view_name) != batch.revision
            or batch.prev_lsn > applied
        ):
            # Missed a shipment (or never saw this lineage): resync instead
            # of applying a delta onto a base it does not extend.
            self.gaps_detected += 1
            self.resync(batch.view_name)
            return
        rows = batch.rows_by_subject()
        delta = batch.delta
        upserts = view_row_documents(
            batch.view_name, feed, rows.values(), batch.lsn, self.entity_type
        )
        deleted_ids = [f"{batch.view_name}:{s}" for s in sorted(delta.deleted)]
        # A changed subject with no shipped row vanished from the artifact:
        # stop serving it rather than keep a stale copy.
        deleted_ids.extend(
            f"{batch.view_name}:{s}" for s in sorted(delta.changed) if s not in rows
        )
        self.index.apply_feed_delta(feed, upserts, deleted_ids, batch.lsn)
        if upserts or deleted_ids:
            self.executor.invalidate_cache()
        self.applied.advance(batch.view_name, batch.lsn)
        self.revisions[batch.view_name] = batch.revision
        # Watermark-only (advance) batches skip the checkpoint write: a
        # restart catch-up re-stamps the current watermark anyway, and a
        # per-flush no-op fsync per view per replica adds up fast.
        self._commit(batch.view_name, persist=bool(upserts or deleted_ids))

    def _commit(self, view_name: str, persist: bool = True) -> None:
        self.batches_applied += 1
        if persist:
            self._checkpoint()
        if self.watermark_sink is not None:
            self.watermark_sink(self.name, view_name, self.applied.of(view_name))

    def _checkpoint(self) -> None:
        if self.journal_store is not None:
            self.journal_store.save_replica_checkpoint(
                self.name, dict(self.applied), dict(self.revisions)
            )
