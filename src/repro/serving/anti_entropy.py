"""Anti-entropy: checksum audits of replica state against the primary.

Replication by journal shipping is convergent *when nothing goes wrong*; the
:class:`AntiEntropyAuditor` is the safety net for when something does (a
corrupted apply, a bit-flipped index, an operator poking a replica).  Each
audit checksums the primary's view rows — through the same
:func:`~repro.live.index.view_row_document` builder replicas use, digested by
:func:`~repro.live.index.document_checksum` — and asks every live replica to
compare its served documents (:meth:`~repro.serving.replica.ReplicaNode.checksum_divergence`)
over the LSN range both sides agree on:

* a replica whose applied LSN trails the primary's ``built_at_lsn`` is
  **lagging**, not diverged — its repair is a catch-up
  :meth:`~repro.serving.replica.ReplicaNode.resync` through the persisted
  journal (journal replay, snapshot only when history was lost);
* a replica at (or past) the primary watermark whose row digests disagree is
  **diverged** — its repair is a targeted
  :meth:`~repro.serving.shipping.JournalShipper.repair_batch` that re-ships
  only the diverged subjects through the normal delta-apply machinery.

The primary side of every audit is read as one atomic snapshot
(:meth:`~repro.engine.views.ViewManager.view_rows_snapshot`, under the
view's maintenance lock) and its combined digest is recorded in the
metadata store's checksum namespace, so "when was this view last verified,
at which LSN, with which digest" is observable alongside the watermarks.
:meth:`AntiEntropyAuditor.start` runs audits periodically on a daemon
thread — failures are counted and surfaced (``audit_failures``,
``last_audit_error``), never silently swallowed — and every entry point is
also callable synchronously for tests and operators.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace

from repro.errors import ReplicaDivergenceError
from repro.live.index import document_checksum, view_row_document


@dataclass(frozen=True)
class ReplicaAudit:
    """One replica's verdict for one view in one audit pass.

    ``ahead`` means the replica has applied past the LSN (or onto a newer
    revision than) the audited primary snapshot — the audit raced a newer
    flush, so the comparison would be meaningless; the next pass covers it.
    """

    replica: str
    status: str     # "ok" | "lagging" | "ahead" | "diverged" | "down" | "unserved"
    applied_lsn: int = 0
    primary_lsn: int = 0
    missing: tuple[str, ...] = ()
    extra: tuple[str, ...] = ()
    mismatched: tuple[str, ...] = ()

    @property
    def diverged_subjects(self) -> tuple[str, ...]:
        """Every subject this replica must have rewritten to converge."""
        return tuple(sorted({*self.missing, *self.extra, *self.mismatched}))


@dataclass
class AuditReport:
    """Outcome of auditing one view across the fleet.

    ``primary_lsn`` / ``revision`` / ``rows`` are the atomic primary
    snapshot the audit ran against; repairs are built from exactly this
    snapshot so a flush landing between audit and repair can never be
    overwritten or watermarked away.
    """

    view_name: str
    primary_lsn: int
    rows_checked: int
    revision: int = 0
    digest: str = ""            # row-level view digest of the snapshot
    replicas: list[ReplicaAudit] = field(default_factory=list)
    rows: dict[str, dict] = field(default_factory=dict, repr=False)

    def diverged(self) -> list[ReplicaAudit]:
        """Replicas whose served rows disagree with the primary's."""
        return [audit for audit in self.replicas if audit.status == "diverged"]

    def lagging(self) -> list[ReplicaAudit]:
        """Replicas trailing the primary watermark (repairable by catch-up)."""
        return [audit for audit in self.replicas if audit.status == "lagging"]

    def clean(self) -> bool:
        """Whether every live replica matched the primary exactly."""
        return not self.diverged() and not self.lagging()


class AntiEntropyAuditor:
    """Periodic checksum audits plus targeted divergence repair."""

    def __init__(self, fleet) -> None:
        self.fleet = fleet
        self.audits_run = 0
        self.audit_failures = 0         # periodic passes that raised
        self.last_audit_error = ""      # most recent periodic-pass failure
        self.divergences_detected = 0   # (replica, view) pairs found diverged
        self.rows_repaired = 0          # subjects rewritten by repair batches
        self.catchup_resyncs = 0        # lagging replicas sent through resync
        self.stale_repairs_skipped = 0  # repairs refused: replica moved on
        self.last_reports: dict[str, AuditReport] = {}
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -------------------------------------------------------------- #
    # auditing
    # -------------------------------------------------------------- #
    def audit_view(self, view_name: str) -> AuditReport:
        """Checksum one view's rows on the primary against every replica.

        The primary side is read as one atomic snapshot
        (:meth:`~repro.engine.views.ViewManager.view_rows_snapshot`, taken
        under the view's maintenance lock) so a concurrent flush can never
        pair the rows of one commit with the LSN of another; the combined
        digest of the audited checksums is recorded — stamped with the
        snapshot LSN — in the metadata store's checksum namespace.
        """
        manager = self.fleet.manager
        primary_lsn, revision, rows = manager.view_rows_snapshot(view_name)
        expected = self._expected_checksums(view_name, rows)
        # Leave the audited-digest trail next to the watermarks, through the
        # one canonical digest definition (ViewManager.view_digest) so the
        # checksum namespace never mixes digest flavors.  The document-level
        # map above is the replica comparison currency, not the recorded
        # digest.
        digest = manager.view_digest(
            view_name, snapshot=(primary_lsn, revision, rows)
        )
        report = AuditReport(
            view_name=view_name,
            primary_lsn=primary_lsn,
            rows_checked=len(expected),
            revision=revision,
            digest=digest,
            rows=rows,
        )
        for name, node in sorted(self.fleet.replicas.items()):
            if not node.alive:
                report.replicas.append(ReplicaAudit(replica=name, status="down",
                                                    primary_lsn=primary_lsn))
                continue
            if not node.serves_view(view_name):
                report.replicas.append(ReplicaAudit(replica=name, status="unserved",
                                                    primary_lsn=primary_lsn))
                continue
            applied = node.applied_lsn(view_name)
            replica_revision = node.revisions.get(view_name, 0)
            if applied < primary_lsn or replica_revision < revision:
                # Behind the audited LSN range, or serving an older state
                # lineage (a redefinition whose snapshot batch it missed):
                # lag, not divergence — a catch-up resync closes either
                # (the revision mismatch makes catchup answer a snapshot).
                report.replicas.append(ReplicaAudit(
                    replica=name, status="lagging",
                    applied_lsn=applied, primary_lsn=primary_lsn,
                ))
                continue
            if applied > primary_lsn or replica_revision > revision:
                # Past the audited snapshot (a flush or redefinition landed
                # after it was taken): comparing would read false divergence.
                # The next pass audits the newer state.
                report.replicas.append(ReplicaAudit(
                    replica=name, status="ahead",
                    applied_lsn=applied, primary_lsn=primary_lsn,
                ))
                continue
            verdict = node.checksum_divergence(
                view_name, expected, at_lsn=primary_lsn, at_revision=revision
            )
            if verdict is None:
                # A batch applied between the watermark check above and the
                # locked comparison: the node moved past the snapshot.
                report.replicas.append(ReplicaAudit(
                    replica=name, status="ahead",
                    applied_lsn=node.applied_lsn(view_name),
                    primary_lsn=primary_lsn,
                ))
                continue
            missing, extra, mismatched = verdict
            status = "diverged" if (missing or extra or mismatched) else "ok"
            if status == "diverged":
                self.divergences_detected += 1
            report.replicas.append(ReplicaAudit(
                replica=name, status=status,
                applied_lsn=applied, primary_lsn=primary_lsn,
                missing=tuple(missing), extra=tuple(extra),
                mismatched=tuple(mismatched),
            ))
        # The retained copy drops the row snapshot: it is only needed
        # transiently to build repair batches, and keeping it would hold a
        # second full copy of every audited view between passes.
        self.last_reports[view_name] = replace(report, rows={})
        return report

    def audit(
        self, repair: bool = True, raise_on_divergence: bool = False
    ) -> dict[str, AuditReport]:
        """Audit every shipped view; optionally repair what the audit found.

        With ``raise_on_divergence`` the auditor fails loudly with a
        :class:`~repro.errors.ReplicaDivergenceError` instead of (or after,
        when ``repair`` is also set) repairing — the mode monitoring hooks
        use to page rather than paper over.
        """
        reports: dict[str, AuditReport] = {}
        for view_name in sorted(self.fleet.shipper.shipped_views):
            if not self.fleet.manager.is_materialized(view_name):
                continue
            report = self.audit_view(view_name)
            reports[view_name] = report
            if repair and not report.clean():
                self.repair(report)
        self.audits_run += 1
        if raise_on_divergence:
            dirty = {
                view_name: [audit.replica for audit in report.diverged()]
                for view_name, report in reports.items()
                if report.diverged()
            }
            if dirty:
                raise ReplicaDivergenceError(
                    f"anti-entropy audit found divergence: {dirty}", report=reports
                )
        return reports

    # -------------------------------------------------------------- #
    # repair
    # -------------------------------------------------------------- #
    def repair(self, report: AuditReport) -> dict[str, int]:
        """Repair what one audit report found; returns rows repaired per replica.

        Lagging replicas are resynced through the journal-replay catch-up
        path (no row accounting — the shipping protocol owns that); diverged
        replicas get a targeted repair batch rewriting exactly the diverged
        subjects.
        """
        repaired: dict[str, int] = {}
        for audit in report.lagging():
            node = self.fleet.replicas.get(audit.replica)
            if node is not None and node.alive:
                node.resync(report.view_name)
                self.catchup_resyncs += 1
                repaired[audit.replica] = 0
        for audit in report.diverged():
            node = self.fleet.replicas.get(audit.replica)
            if node is None or not node.alive:
                continue
            subjects = audit.diverged_subjects
            # Built from the audit's own snapshot: stamped with the audited
            # LSN (not the live head), so the repair cannot advance the
            # replica past delta batches shipped after the audit.
            batch = self.fleet.shipper.repair_batch(
                report.view_name, subjects, prev_lsn=audit.applied_lsn,
                snapshot=(report.primary_lsn, report.revision, report.rows),
            )
            if node.apply_repair(batch):
                self.rows_repaired += len(subjects)
                repaired[audit.replica] = len(subjects)
            else:
                # The replica applied past the audited snapshot in the
                # meantime; the repair is stale and the next pass re-audits.
                self.stale_repairs_skipped += 1
        return repaired

    # -------------------------------------------------------------- #
    # periodic operation
    # -------------------------------------------------------------- #
    def start(self, interval: float) -> "AntiEntropyAuditor":
        """Audit (and repair) every *interval* seconds on a daemon thread."""
        if interval <= 0:
            raise ValueError("the anti-entropy interval must be positive")
        if self._thread is not None:
            return self
        self._stop.clear()

        def run() -> None:
            while not self._stop.wait(interval):
                try:
                    self.audit(repair=True)
                except Exception as exc:  # noqa: BLE001 - retry next tick, visibly
                    # A safety net that fails silently is no safety net:
                    # the counters surface through fleet.status() so a
                    # persistently failing audit cannot masquerade as a
                    # verified fleet.
                    self.audit_failures += 1
                    self.last_audit_error = f"{type(exc).__name__}: {exc}"

        self._thread = threading.Thread(target=run, name="anti-entropy", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the periodic audit thread (no-op when never started)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=10)
        self._thread = None

    @property
    def running(self) -> bool:
        """Whether the periodic audit thread is active."""
        return self._thread is not None

    # -------------------------------------------------------------- #
    # internals
    # -------------------------------------------------------------- #
    def _expected_checksums(
        self, view_name: str, rows: dict[str, dict]
    ) -> dict[str, str]:
        """subject → serving-document digest of the snapshotted primary rows.

        Rows pass through the same document builder replicas apply batches
        with, so a faithful replica reproduces the digest bit-for-bit; the
        digest excludes the version stamp, so batch boundaries never show up
        as false divergence.
        """
        feed = f"view:{view_name}"
        entity_types = {node.entity_type for node in self.fleet.replicas.values()}
        entity_type = entity_types.pop() if len(entity_types) == 1 else "view_row"
        return {
            subject: document_checksum(
                view_row_document(view_name, feed, row, 0, entity_type)
            )
            for subject, row in rows.items()
        }
