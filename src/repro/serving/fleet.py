"""The replicated serving fleet: primary journals shipped to routed replicas.

:class:`ServingFleet` wires the serving subsystem end to end over one primary
:class:`~repro.engine.views.ViewManager`:

* a :class:`~repro.serving.journal_store.JournalStore` persists every
  committed view delta (restart durability for the whole fleet);
* a :class:`~repro.serving.shipping.JournalShipper` publishes LSN-ranged
  delta batches on a :class:`~repro.serving.shipping.ReplicationBus`;
* N :class:`~repro.serving.replica.ReplicaNode` subscribers apply them
  asynchronously into their own live-index shards;
* a :class:`~repro.serving.router.ShardRouter` consistent-hashes reads
  across the replicas under a selectable consistency level.

Replica applied-LSN watermarks are mirrored into the platform
:class:`~repro.engine.metadata.MetadataStore` replica namespace (keyed
``{replica}/{view}``) when one is attached, so fleet freshness is observable
with the same machinery as store and view freshness.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.engine.metadata import MetadataStore
from repro.engine.views import ViewManager
from repro.errors import ServingError
from repro.live.executor import QueryResult
from repro.serving.anti_entropy import AntiEntropyAuditor, AuditReport
from repro.serving.journal_store import JournalStore
from repro.serving.query_router import QueryRouter
from repro.serving.replica import ReplicaNode
from repro.serving.router import ANY, Consistency, ShardRouter
from repro.serving.shipping import JournalShipper, ReplicationBus


class ServingFleet:
    """A primary view manager plus N live replicas behind an LSN-aware router."""

    def __init__(
        self,
        manager: ViewManager,
        num_replicas: int = 3,
        journal_store: JournalStore | None = None,
        metadata: MetadataStore | None = None,
        head_lsn_source: Callable[[], int] | None = None,
        num_shards: int = 4,
        queue_capacity: int = 256,
        virtual_nodes: int = 32,
        replica_prefix: str = "replica",
    ) -> None:
        if num_replicas <= 0:
            raise ServingError("a serving fleet needs at least one replica")
        self.manager = manager
        self.journal_store = journal_store if journal_store is not None else JournalStore()
        self.metadata = metadata
        self.head_lsn_source = head_lsn_source or manager.current_lsn
        self.bus = ReplicationBus()
        self.shipper = JournalShipper(manager, self.bus, self.journal_store)
        self.router = ShardRouter(self.head_lsn_source, virtual_nodes=virtual_nodes)
        self.query_router = QueryRouter(self.router)
        self.auditor = AntiEntropyAuditor(self)
        self.replicas: dict[str, ReplicaNode] = {}
        for index in range(num_replicas):
            self.add_replica(
                f"{replica_prefix}-{index}",
                num_shards=num_shards,
                queue_capacity=queue_capacity,
            )

    # -------------------------------------------------------------- #
    # membership and lifecycle
    # -------------------------------------------------------------- #
    def add_replica(
        self, name: str, num_shards: int = 4, queue_capacity: int = 256
    ) -> ReplicaNode:
        """Add (and register) one replica node; started by :meth:`start`."""
        if name in self.replicas:
            raise ServingError(f"replica {name!r} already exists in the fleet")
        node = ReplicaNode(
            name,
            num_shards=num_shards,
            queue_capacity=queue_capacity,
            resync_source=self.shipper,
            journal_store=self.journal_store,
            watermark_sink=self._record_replica_watermark,
        )
        self.replicas[name] = node
        self.bus.subscribe(node)
        self.router.add_replica(node)
        if self.shipper.shipped_views:
            # A replica joining a serving fleet owns key ranges immediately:
            # seed it with every shipped view's current state or routed
            # reads would hit its empty index as false misses.
            node.start()
            for view_name in sorted(self.shipper.shipped_views):
                node.resync(view_name)
        return node

    def start(self) -> "ServingFleet":
        """Start every replica's apply worker; returns self for chaining."""
        for node in self.replicas.values():
            node.start()
        return self

    def stop(self) -> None:
        """Stop shipping and auditing, then drain and stop every replica."""
        self.auditor.stop()
        self.shipper.detach()
        for node in self.replicas.values():
            node.stop()

    def remove_replica(self, name: str) -> None:
        """Retire a replica for good: stop it and forget every trace of it.

        Unsubscribes it from the bus and router, drops its persisted
        checkpoint, and clears its metadata watermarks — unlike
        :meth:`kill_replica`, which models a crash that will be recovered.
        """
        node = self._node(name)
        node.stop()
        self.bus.unsubscribe(name)
        self.router.remove_replica(name)
        self.journal_store.drop_replica_checkpoint(name)
        if self.metadata is not None:
            self.metadata.clear_replica_watermark(name)
        del self.replicas[name]

    def kill_replica(self, name: str) -> int:
        """Crash one replica (queued batches lost); returns batches dropped."""
        return self._node(name).kill()

    def restart_replica(self, name: str) -> list[str]:
        """Recover a crashed replica from its persisted checkpoint + journal.

        The replica catches up from its last applied LSN by journal replay
        (snapshot resync only when the journal cannot cover the gap); no
        primary-side view artifact is rebuilt.  Returns the caught-up views.
        """
        return self._node(name).restart(sorted(self.shipper.shipped_views))

    # -------------------------------------------------------------- #
    # serving
    # -------------------------------------------------------------- #
    def serve_view(self, view_name: str) -> int:
        """Ship a materialized row-shaped view to every replica.

        Publishes the initial snapshot batch; subsequent maintenance flushes
        ship deltas automatically.  Returns the snapshot's row count.
        """
        batch = self.shipper.ship_view(view_name)
        return len(batch.rows)

    def serve_views(self, view_names: Sequence[str]) -> dict[str, int]:
        """Ship several views; returns per-view snapshot row counts."""
        return {name: self.serve_view(name) for name in view_names}

    def read(self, view_name: str, subject: str, consistency: Consistency = ANY):
        """Routed point read of one served row document."""
        return self.router.read(view_name, subject, consistency)

    def query(
        self, query, view_name: str, consistency: Consistency = ANY
    ) -> QueryResult:
        """Scatter-gather KGQ execution over the fleet's copy of a view.

        Compiles once, fragments along the consistent-hash partitions,
        executes replica-side, and merges — see
        :class:`~repro.serving.query_router.QueryRouter`.
        """
        return self.query_router.execute(query, view_name, consistency)

    def join(
        self,
        left_query,
        left_view: str,
        right_query,
        right_view: str,
        left_key: str,
        right_key: str,
        how: str = "inner",
        consistency: Consistency = ANY,
        strategy: str = "auto",
        broadcast_threshold: int = 64,
        limit: int | None = None,
    ) -> QueryResult:
        """Cross-view join executed replica-side (broadcast or shuffle).

        Small right sides broadcast to the left view's fragments; large ones
        re-partition both sides by join-key hash — see
        :meth:`~repro.serving.query_router.QueryRouter.execute_join`.
        """
        return self.query_router.execute_join(
            left_query, left_view, right_query, right_view,
            left_key, right_key, how=how, consistency=consistency,
            strategy=strategy, broadcast_threshold=broadcast_threshold,
            limit=limit,
        )

    def audit(
        self, repair: bool = True, raise_on_divergence: bool = False
    ) -> dict[str, AuditReport]:
        """One synchronous anti-entropy pass over every shipped view."""
        return self.auditor.audit(repair=repair,
                                  raise_on_divergence=raise_on_divergence)

    def start_anti_entropy(self, interval: float) -> AntiEntropyAuditor:
        """Run checksum audits (with repair) every *interval* seconds."""
        return self.auditor.start(interval)

    def drain(self, timeout: float = 10.0) -> bool:
        """Wait until every live replica applied everything it was offered."""
        return all(
            node.drain(timeout=timeout)
            for node in self.replicas.values()
            if node.alive
        )

    # -------------------------------------------------------------- #
    # maintenance and introspection
    # -------------------------------------------------------------- #
    def compact_journals(self) -> dict[str, int]:
        """Truncate persisted journals below the fleet-wide applied minimum.

        A segment is dropped only when every replica has applied past its
        highest LSN, so no live consumer can be pushed into a gap by
        compaction; a crashed replica's checkpoint still counts (it will
        resume from its applied LSN).  Returns segments dropped per view.
        """
        dropped: dict[str, int] = {}
        for view_name in self.shipper.shipped_views:
            floor = min(
                (node.applied_lsn(view_name) for node in self.replicas.values()),
                default=0,
            )
            if floor > 0:
                count = self.journal_store.truncate_below(view_name, floor)
                if count:
                    dropped[view_name] = count
        return dropped

    def lag(self) -> dict[str, dict[str, int]]:
        """Per-view, per-replica lag behind the primary head, in LSNs."""
        return {
            view_name: self.router.replica_lag(view_name)
            for view_name in sorted(self.shipper.shipped_views)
        }

    def status(self) -> dict[str, object]:
        """Fleet introspection: health, lag, shipping and journal stats."""
        return {
            "head_lsn": self.head_lsn_source(),
            "served_views": sorted(self.shipper.shipped_views),
            "healthy_replicas": self.router.healthy_replicas(),
            "lag": self.lag(),
            "replicas": {
                name: node.status() for name, node in sorted(self.replicas.items())
            },
            "batches_published": self.bus.batches_published,
            "delivery_errors": len(self.bus.delivery_errors),
            "reads_routed": self.router.reads_routed,
            "fallback_reads": self.router.fallback_reads,
            "query_router": self.query_router.stats(),
            "anti_entropy": {
                "audits_run": self.auditor.audits_run,
                "audit_failures": self.auditor.audit_failures,
                "last_audit_error": self.auditor.last_audit_error,
                "divergences_detected": self.auditor.divergences_detected,
                "rows_repaired": self.auditor.rows_repaired,
                "catchup_resyncs": self.auditor.catchup_resyncs,
                "stale_repairs_skipped": self.auditor.stale_repairs_skipped,
                "running": self.auditor.running,
            },
            "journal": self.journal_store.stats(),
        }

    # -------------------------------------------------------------- #
    # internals
    # -------------------------------------------------------------- #
    def _node(self, name: str) -> ReplicaNode:
        try:
            return self.replicas[name]
        except KeyError:
            raise ServingError(f"unknown replica {name!r}") from None

    def _record_replica_watermark(self, replica: str, view_name: str, lsn: int) -> None:
        if self.metadata is not None:
            self.metadata.update_replica_watermark(f"{replica}/{view_name}", lsn)
