"""Persistent, segmented storage for per-view delta journals.

The in-process :class:`~repro.engine.views.DeltaJournal` dies with the
primary.  The :class:`JournalStore` makes the journal survive restarts: every
committed view delta is appended to an LSN-ascending, segmented journal held
by a pluggable backend — in-memory (tests, single-process fleets) or
fsync-able segment files on disk (cross-process serving catch-up).  A
restarted serving process replays ``deltas_since(view, last_applied_lsn)``
instead of rebuilding view artifacts from scratch.

Three record kinds mirror the manager's journal transitions:

* ``delta`` — one scope-projected :class:`ViewDelta` a maintenance flush
  committed (entity ids plus the LSN range covered);
* ``truncate`` — the view was rebuilt from scratch; persisted history below
  the record's LSN is dropped and the floor advances (consumers below the
  floor must resync from a snapshot);
* ``drop`` — the materialization was removed; all history is dropped so a
  catching-up consumer stops serving the view.

Compaction-aware truncation (:meth:`JournalStore.truncate_below`) removes
whole segments that every fleet consumer has already applied — it never
splits a segment, and it advances the floor so a consumer that somehow fell
behind the truncation point gets an explicit
:class:`~repro.errors.JournalGapError` instead of a silently incomplete
delta.  Per-view floors/revisions and per-replica applied-LSN checkpoints are
persisted through the same backend, so both sides of the catch-up protocol
survive a restart.
"""

from __future__ import annotations

import json
import os
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable
from urllib.parse import quote, unquote

from repro.engine.views import ViewDelta
from repro.errors import JournalGapError, ServingError


@dataclass(frozen=True)
class JournalRecord:
    """One durable journal entry of one view."""

    view_name: str
    kind: str                    # "delta" | "truncate" | "drop"
    revision: int
    first_lsn: int = 0
    last_lsn: int = 0
    added: tuple[str, ...] = ()
    updated: tuple[str, ...] = ()
    deleted: tuple[str, ...] = ()

    def delta(self) -> ViewDelta:
        """The entity-level delta this record carries (empty for markers)."""
        return ViewDelta(
            added=frozenset(self.added),
            updated=frozenset(self.updated),
            deleted=frozenset(self.deleted),
            first_lsn=self.first_lsn,
            last_lsn=self.last_lsn,
        )

    def to_json(self) -> str:
        """Serialize the record to one JSON line."""
        return json.dumps(
            {
                "view": self.view_name,
                "kind": self.kind,
                "revision": self.revision,
                "first_lsn": self.first_lsn,
                "last_lsn": self.last_lsn,
                "added": sorted(self.added),
                "updated": sorted(self.updated),
                "deleted": sorted(self.deleted),
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "JournalRecord":
        """Deserialize a record from :meth:`to_json` output."""
        data = json.loads(line)
        return cls(
            view_name=data["view"],
            kind=data["kind"],
            revision=int(data["revision"]),
            first_lsn=int(data.get("first_lsn", 0)),
            last_lsn=int(data.get("last_lsn", 0)),
            added=tuple(data.get("added", ())),
            updated=tuple(data.get("updated", ())),
            deleted=tuple(data.get("deleted", ())),
        )

    @classmethod
    def from_delta(
        cls, view_name: str, revision: int, delta: ViewDelta
    ) -> "JournalRecord":
        """Build a ``delta`` record from a committed :class:`ViewDelta`."""
        return cls(
            view_name=view_name,
            kind="delta",
            revision=revision,
            first_lsn=delta.first_lsn,
            last_lsn=delta.last_lsn,
            added=tuple(sorted(delta.added)),
            updated=tuple(sorted(delta.updated)),
            deleted=tuple(sorted(delta.deleted)),
        )


class JournalBackend(ABC):
    """Durability backend of a :class:`JournalStore` (segments + checkpoints)."""

    @abstractmethod
    def append_line(self, view_name: str, segment_id: int, line: str) -> None:
        """Append one serialized record to a view's segment."""

    @abstractmethod
    def list_segments(self, view_name: str) -> list[int]:
        """Segment ids of a view, ascending."""

    @abstractmethod
    def read_segment(self, view_name: str, segment_id: int) -> list[str]:
        """All serialized records of one segment, in append order."""

    @abstractmethod
    def drop_segments(self, view_name: str, segment_ids: Iterable[int]) -> None:
        """Remove the named segments of a view."""

    @abstractmethod
    def view_names(self) -> list[str]:
        """Every view with at least one stored segment."""

    @abstractmethod
    def write_checkpoint(self, name: str, payload: dict) -> None:
        """Durably replace the checkpoint stored under *name*."""

    @abstractmethod
    def read_checkpoint(self, name: str) -> dict | None:
        """The checkpoint stored under *name*, or ``None``."""

    @abstractmethod
    def drop_checkpoint(self, name: str) -> None:
        """Remove the checkpoint stored under *name* (no-op when absent)."""


class InMemoryJournalBackend(JournalBackend):
    """Dict-backed backend: survives as long as the object is shared.

    Tests and single-process fleets hand the same backend instance to a
    "restarted" store to model a disk that outlives the process.
    """

    def __init__(self) -> None:
        self._segments: dict[str, dict[int, list[str]]] = {}
        self._checkpoints: dict[str, dict] = {}

    def append_line(self, view_name: str, segment_id: int, line: str) -> None:
        self._segments.setdefault(view_name, {}).setdefault(segment_id, []).append(line)

    def list_segments(self, view_name: str) -> list[int]:
        return sorted(self._segments.get(view_name, {}))

    def read_segment(self, view_name: str, segment_id: int) -> list[str]:
        return list(self._segments.get(view_name, {}).get(segment_id, []))

    def drop_segments(self, view_name: str, segment_ids: Iterable[int]) -> None:
        segments = self._segments.get(view_name, {})
        for segment_id in list(segment_ids):
            segments.pop(segment_id, None)
        if not segments:
            self._segments.pop(view_name, None)

    def view_names(self) -> list[str]:
        return sorted(self._segments)

    def write_checkpoint(self, name: str, payload: dict) -> None:
        self._checkpoints[name] = json.loads(json.dumps(payload))

    def read_checkpoint(self, name: str) -> dict | None:
        payload = self._checkpoints.get(name)
        return json.loads(json.dumps(payload)) if payload is not None else None

    def drop_checkpoint(self, name: str) -> None:
        self._checkpoints.pop(name, None)


class FileJournalBackend(JournalBackend):
    """Segment files under a directory, one JSONL file per (view, segment).

    With ``fsync=True`` every append and checkpoint write is flushed to the
    OS *and* fsynced, giving crash durability at the cost of one syscall per
    record; the default only flushes (enough for process-restart durability,
    which is what the serving tests model).
    """

    def __init__(self, directory: str | Path, fsync: bool = False) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync

    @staticmethod
    def _safe(view_name: str) -> str:
        # '.' must be escaped too: it separates name from segment id in the
        # file name, and a view named 'a.b' must not shadow the segments of
        # a view named 'a' (unquote reverses %2E transparently).
        return quote(view_name, safe="").replace(".", "%2E")

    def _segment_path(self, view_name: str, segment_id: int) -> Path:
        return self.directory / f"{self._safe(view_name)}.{segment_id:06d}.journal"

    def _checkpoint_path(self, name: str) -> Path:
        return self.directory / f"{self._safe(name)}.checkpoint"

    def _write(self, path: Path, data: str, mode: str) -> None:
        try:
            with open(path, mode, encoding="utf-8") as handle:
                handle.write(data)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
        except OSError as exc:
            raise ServingError(f"cannot persist journal data to {path}: {exc}") from exc

    def append_line(self, view_name: str, segment_id: int, line: str) -> None:
        self._write(self._segment_path(view_name, segment_id), line + "\n", "a")

    def list_segments(self, view_name: str) -> list[int]:
        prefix = f"{self._safe(view_name)}."
        ids = []
        for path in self.directory.glob(f"{prefix}*.journal"):
            ids.append(int(path.name[len(prefix):].split(".")[0]))
        return sorted(ids)

    def read_segment(self, view_name: str, segment_id: int) -> list[str]:
        path = self._segment_path(view_name, segment_id)
        if not path.exists():
            return []
        return [line for line in path.read_text(encoding="utf-8").splitlines() if line.strip()]

    def drop_segments(self, view_name: str, segment_ids: Iterable[int]) -> None:
        for segment_id in list(segment_ids):
            self._segment_path(view_name, segment_id).unlink(missing_ok=True)

    def view_names(self) -> list[str]:
        names = set()
        for path in self.directory.glob("*.journal"):
            names.add(unquote(path.name.rsplit(".", 2)[0]))
        return sorted(names)

    def write_checkpoint(self, name: str, payload: dict) -> None:
        self._write(self._checkpoint_path(name), json.dumps(payload, sort_keys=True), "w")

    def read_checkpoint(self, name: str) -> dict | None:
        path = self._checkpoint_path(name)
        if not path.exists():
            return None
        return json.loads(path.read_text(encoding="utf-8"))

    def drop_checkpoint(self, name: str) -> None:
        self._checkpoint_path(name).unlink(missing_ok=True)


class JournalStore:
    """Segmented, durably persisted delta journals for a view fleet.

    The store mirrors the manager's per-view journals into the backend and
    answers the same ``deltas_since`` question across process restarts.  A
    fresh store over a non-empty backend recovers every view's segments,
    floor, and revision before serving reads.
    """

    def __init__(self, backend: JournalBackend | None = None, segment_records: int = 64) -> None:
        if segment_records <= 0:
            raise ServingError("journal segments need room for at least one record")
        self.backend = backend if backend is not None else InMemoryJournalBackend()
        self.segment_records = segment_records
        self._segments: dict[str, list[tuple[int, list[JournalRecord]]]] = {}
        self._floors: dict[str, int] = {}
        self._revisions: dict[str, int] = {}
        self.appends = 0
        self.truncations = 0
        self.recovered_records = 0
        self._recover()

    # -------------------------------------------------------------- #
    # recording (primary side)
    # -------------------------------------------------------------- #
    def append_delta(self, view_name: str, revision: int, delta: ViewDelta) -> JournalRecord:
        """Persist one committed view delta; rolls segments when full."""
        if delta.is_empty():
            raise ServingError("refusing to persist an empty delta")
        if self._revisions.get(view_name, revision) != revision:
            # A new state lineage invalidates persisted history wholesale.
            self._drop_view(view_name)
        record = JournalRecord.from_delta(view_name, revision, delta)
        self._append(record)
        self.appends += 1
        return record

    def record_truncate(self, view_name: str, revision: int, lsn: int) -> None:
        """The view was rebuilt from scratch: drop history, advance the floor."""
        self._drop_view(view_name)
        self._floors[view_name] = lsn
        self._revisions[view_name] = revision
        self._append(JournalRecord(
            view_name=view_name, kind="truncate", revision=revision,
            first_lsn=lsn, last_lsn=lsn,
        ))
        self.truncations += 1

    def record_drop(self, view_name: str, revision: int) -> None:
        """The view's materialization was removed: forget it entirely."""
        self._drop_view(view_name)
        self._floors.pop(view_name, None)
        self._revisions.pop(view_name, None)
        self.backend.drop_checkpoint(self._meta_key(view_name))

    def truncate_below(self, view_name: str, lsn: int) -> int:
        """Drop whole segments every consumer at or past *lsn* has absorbed.

        Compaction-aware: only segments whose *entire* LSN range is at or
        below *lsn* are removed (a segment is never split), and the floor
        advances to the highest dropped LSN so a consumer that fell behind
        the truncation point hits an explicit gap.  Returns the number of
        segments dropped.
        """
        segments = self._segments.get(view_name, [])
        dropped: list[int] = []
        new_floor = self._floors.get(view_name, 0)
        keep_index = 0
        for index, (segment_id, records) in enumerate(segments):
            high = max((r.last_lsn for r in records), default=0)
            # Never drop the last segment: appends continue into it.
            if high <= lsn and index < len(segments) - 1:
                dropped.append(segment_id)
                new_floor = max(new_floor, high)
                keep_index = index + 1
            else:
                break
        if not dropped:
            return 0
        self._segments[view_name] = segments[keep_index:]
        self._floors[view_name] = new_floor
        self.backend.drop_segments(view_name, dropped)
        self._save_meta(view_name)
        return len(dropped)

    # -------------------------------------------------------------- #
    # reading (replica side)
    # -------------------------------------------------------------- #
    def deltas_since(self, view_name: str, lsn: int) -> ViewDelta | None:
        """Net persisted delta after *lsn*, or ``None`` for an unknown view.

        Raises :class:`~repro.errors.JournalGapError` when persisted history
        cannot reach back to *lsn* (truncated or compacted past it) — the
        consumer must resync from a snapshot instead of trusting a partial
        delta.
        """
        if view_name not in self._revisions and view_name not in self._segments:
            return None
        floor = self._floors.get(view_name, 0)
        if lsn < floor:
            raise JournalGapError(view_name, lsn, floor)
        merged = ViewDelta(first_lsn=lsn, last_lsn=lsn)
        for _, records in self._segments.get(view_name, []):
            for record in records:
                if record.kind == "delta" and record.last_lsn > lsn:
                    merged = merged.merge(record.delta())
        return merged

    def revision_of(self, view_name: str) -> int:
        """The state-lineage revision the persisted history belongs to."""
        return self._revisions.get(view_name, 0)

    def floor_lsn(self, view_name: str) -> int:
        """The LSN below which persisted history is unavailable."""
        return self._floors.get(view_name, 0)

    def high_water_mark(self, view_name: str) -> int:
        """The highest LSN with persisted history (floor when empty)."""
        high = self._floors.get(view_name, 0)
        for _, records in self._segments.get(view_name, []):
            for record in records:
                high = max(high, record.last_lsn)
        return high

    def view_names(self) -> list[str]:
        """Every view with persisted journal state."""
        return sorted(set(self._segments) | set(self._revisions))

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-view segment/record counters for fleet introspection."""
        return {
            name: {
                "segments": len(self._segments.get(name, [])),
                "records": sum(len(r) for _, r in self._segments.get(name, [])),
                "floor_lsn": self._floors.get(name, 0),
                "high_water_mark": self.high_water_mark(name),
                "revision": self._revisions.get(name, 0),
            }
            for name in self.view_names()
        }

    # -------------------------------------------------------------- #
    # replica checkpoints
    # -------------------------------------------------------------- #
    def save_replica_checkpoint(
        self, replica_name: str, applied: dict[str, int], revisions: dict[str, int]
    ) -> None:
        """Durably record a replica's per-view applied LSNs and revisions."""
        self.backend.write_checkpoint(
            f"replica:{replica_name}",
            {"applied": dict(applied), "revisions": dict(revisions)},
        )

    def load_replica_checkpoint(self, replica_name: str) -> tuple[dict[str, int], dict[str, int]]:
        """A replica's persisted applied LSNs and revisions (empty when new)."""
        payload = self.backend.read_checkpoint(f"replica:{replica_name}")
        if payload is None:
            return {}, {}
        applied = {str(k): int(v) for k, v in payload.get("applied", {}).items()}
        revisions = {str(k): int(v) for k, v in payload.get("revisions", {}).items()}
        return applied, revisions

    def drop_replica_checkpoint(self, replica_name: str) -> None:
        """Forget a replica's checkpoint (the replica left the fleet)."""
        self.backend.drop_checkpoint(f"replica:{replica_name}")

    # -------------------------------------------------------------- #
    # internals
    # -------------------------------------------------------------- #
    @staticmethod
    def _meta_key(view_name: str) -> str:
        return f"view-meta:{view_name}"

    def _save_meta(self, view_name: str) -> None:
        self.backend.write_checkpoint(self._meta_key(view_name), {
            "floor_lsn": self._floors.get(view_name, 0),
            "revision": self._revisions.get(view_name, 0),
        })

    def _append(self, record: JournalRecord) -> None:
        segments = self._segments.setdefault(record.view_name, [])
        if not segments or len(segments[-1][1]) >= self.segment_records:
            next_id = segments[-1][0] + 1 if segments else 1
            segments.append((next_id, []))
        segment_id, records = segments[-1]
        try:
            self.backend.append_line(record.view_name, segment_id, record.to_json())
        except Exception:
            # The persisted history now silently misses this delta.  Poison
            # it: advance the floor past the record so a restarted consumer
            # hits an explicit gap (and resyncs) instead of trusting an
            # incomplete merge that would diverge it forever.
            self._floors[record.view_name] = max(
                self._floors.get(record.view_name, 0), record.last_lsn
            )
            try:
                self._save_meta(record.view_name)
            except Exception:  # noqa: BLE001 - same broken disk; floor held in memory
                pass
            raise
        records.append(record)
        self._revisions[record.view_name] = record.revision
        self._save_meta(record.view_name)

    def _drop_view(self, view_name: str) -> None:
        segments = self._segments.pop(view_name, [])
        self.backend.drop_segments(view_name, [segment_id for segment_id, _ in segments])
        # Belt and braces: remove any on-backend segments this store never saw.
        self.backend.drop_segments(view_name, self.backend.list_segments(view_name))

    def _recover(self) -> None:
        for view_name in self.backend.view_names():
            segments: list[tuple[int, list[JournalRecord]]] = []
            for segment_id in self.backend.list_segments(view_name):
                records = [
                    JournalRecord.from_json(line)
                    for line in self.backend.read_segment(view_name, segment_id)
                ]
                segments.append((segment_id, records))
                self.recovered_records += len(records)
            if segments:
                self._segments[view_name] = segments
                self._revisions[view_name] = segments[-1][1][-1].revision if segments[-1][1] else 0
            meta = self.backend.read_checkpoint(self._meta_key(view_name))
            if meta is not None:
                self._floors[view_name] = int(meta.get("floor_lsn", 0))
                self._revisions[view_name] = int(
                    meta.get("revision", self._revisions.get(view_name, 0))
                )
