"""Exception hierarchy shared by every Saga-reproduction subsystem.

Each layer of the platform raises a subclass of :class:`SagaError` so callers
can catch platform failures without masking programming errors (``TypeError``,
``KeyError`` and friends are never converted).
"""

from __future__ import annotations


class SagaError(Exception):
    """Base class for every error raised by the platform."""


class DataModelError(SagaError):
    """Raised when a triple, entity, or ontology object is malformed."""


class OntologyError(DataModelError):
    """Raised when a type or predicate is missing from the ontology."""


class IngestionError(SagaError):
    """Raised by the source-ingestion pipeline (import, transform, align)."""


class IntegrityError(IngestionError):
    """Raised when a source entity violates a data-integrity check."""


class AlignmentError(IngestionError):
    """Raised when ontology alignment configuration is invalid."""


class ConstructionError(SagaError):
    """Raised by the knowledge-construction pipeline (linking, fusion)."""


class ConstructionBatchError(ConstructionError):
    """Raised when some sources of a construction batch failed to fuse.

    Batch consumption isolates per-source failures: the surviving sources are
    fused (and their growth recorded) before this aggregate is raised.  It
    carries every per-payload report in batch order — failed ones have their
    ``error`` field set — plus ``failures``, the ``(source_id, exception)``
    pairs, so callers keep the partial results.
    """

    def __init__(self, reports: list, failures: list) -> None:
        names = ", ".join(source_id for source_id, _ in failures)
        super().__init__(
            f"{len(failures)} of {len(reports)} payloads failed during batch "
            f"construction: {names}"
        )
        self.reports = list(reports)
        self.failures = list(failures)


class LinkingError(ConstructionError):
    """Raised during blocking, matching, or resolution."""


class FusionError(ConstructionError):
    """Raised when fusing linked payloads into the knowledge graph."""


class EngineError(SagaError):
    """Raised by the graph engine (stores, views, orchestration)."""


class StoreError(EngineError):
    """Raised by an individual storage engine."""


class ViewError(EngineError):
    """Raised by the view catalog or view manager."""


class JournalGapError(ViewError):
    """Raised when a delta journal cannot cover a consumer's LSN gap.

    Carries enough context for the consumer to resync: the view, the LSN the
    consumer serves, and the journal's floor (the position below which
    history was truncated or compacted away).
    """

    def __init__(self, view_name: str, requested_lsn: int, floor_lsn: int) -> None:
        super().__init__(
            f"journal of view {view_name!r} cannot reach back to LSN "
            f"{requested_lsn} (floor is {floor_lsn}); consumer must resync"
        )
        self.view_name = view_name
        self.requested_lsn = requested_lsn
        self.floor_lsn = floor_lsn


class LogError(EngineError):
    """Raised by the durable operation log."""


class ServingError(SagaError):
    """Raised by the replicated serving fleet (shipping, replicas, routing)."""


class StaleReadError(ServingError):
    """Raised when no replica satisfies a read's consistency requirement.

    ``lagging`` (when provided) names each live replica that was rejected for
    staleness and how many log positions it lags the primary head — the honest
    "who to wait for" answer distributed queries surface to their callers.
    """

    def __init__(self, message: str, lagging: dict[str, int] | None = None) -> None:
        super().__init__(message)
        self.lagging = dict(lagging) if lagging else {}


class ReplicaUnavailableError(ServingError):
    """Raised when a routed read finds no live replica to serve it."""


class FrontDoorError(ServingError):
    """Raised by the multi-tenant serving front door (tenancy, admission)."""


class TenantIsolationError(FrontDoorError):
    """Raised when a tenant's request would cross its isolation boundary.

    Enforced at plan time: the query names a view outside the tenant's
    allowed set or MATCHes an entity type outside its KG slice, so the
    request is refused before any replica sees a fragment.
    """


class AdmissionError(FrontDoorError):
    """Base class for admission-control refusals.

    ``retry_after`` is the front door's honest estimate (in seconds) of when
    retrying the request has a chance of being admitted — the token bucket's
    next-token time, or the queue's expected drain time.
    """

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = max(0.0, float(retry_after))


class OverloadedError(AdmissionError):
    """Raised when a request is refused or shed because the door is saturated.

    Covers both per-tenant rate-limit rejections (the tenant's token bucket
    is empty) and load shedding (the bounded admission queue is full and the
    request is not important enough to displace a queued one, or it *was*
    queued and a higher-priority arrival displaced it).
    """


class DeadlineExceededError(AdmissionError):
    """Raised when a request's deadline expires before it can be served.

    Raised on arrival when the deadline is already in the past, and while
    queued when a slot does not free up in time — the request is removed
    from the queue, never left waiting past its deadline.
    """


class ReplicaDivergenceError(ServingError):
    """Raised when an anti-entropy audit finds replica/primary divergence.

    Carries the audit report so operators can see exactly which replicas and
    subjects diverged; only raised when the auditor is asked to fail loudly
    instead of repairing.
    """

    def __init__(self, message: str, report: object = None) -> None:
        super().__init__(message)
        self.report = report


class LiveGraphError(SagaError):
    """Raised by the live-graph construction and query stack."""


class KGQSyntaxError(LiveGraphError):
    """Raised when a KGQ query fails to parse."""


class KGQPlanError(LiveGraphError):
    """Raised when a parsed KGQ query cannot be compiled to a plan."""


class IntentError(LiveGraphError):
    """Raised when an intent cannot be routed to an executable query."""


class CurationError(LiveGraphError):
    """Raised by the human-in-the-loop curation pipeline."""


class MLError(SagaError):
    """Raised by the graph machine-learning stack."""


class TrainingError(MLError):
    """Raised when a model cannot be trained on the provided data."""


class NERDError(MLError):
    """Raised by the entity recognition and disambiguation service."""


class EmbeddingError(MLError):
    """Raised by the knowledge-graph embedding subsystem."""
