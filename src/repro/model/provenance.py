"""Provenance, locale, and trust metadata attached to every KG fact.

Section 2.1 of the paper extends the triple format with three metadata
fields: an array of *sources* (data provenance), a *locale*, and an array of
*trust* scores aligned with the sources.  This module models that metadata and
the bookkeeping operations the platform performs on it:

* merging the provenance of two equivalent facts coming from different
  sources (non-destructive integration);
* removing a source on demand (licensing changes, data-deletion requests);
* aggregating per-source trust scores into a single confidence value used for
  accuracy SLAs and fact-auditing decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import DataModelError

DEFAULT_LOCALE = "en"
DEFAULT_TRUST = 0.5


@dataclass(frozen=True)
class SourceReference:
    """A reference to an upstream data source contributing a fact."""

    source_id: str
    trust: float = DEFAULT_TRUST

    def __post_init__(self) -> None:
        if not self.source_id:
            raise DataModelError("source_id must be non-empty")
        if not 0.0 <= self.trust <= 1.0:
            raise DataModelError(
                f"trust must be within [0, 1], got {self.trust!r} for "
                f"source {self.source_id!r}"
            )


@dataclass
class Provenance:
    """Ordered, deduplicated collection of source references for one fact."""

    references: list[SourceReference] = field(default_factory=list)

    @classmethod
    def from_source(cls, source_id: str, trust: float = DEFAULT_TRUST) -> "Provenance":
        """Build provenance for a fact observed in a single source."""
        return cls([SourceReference(source_id, trust)])

    @classmethod
    def from_mapping(cls, trust_by_source: Mapping[str, float]) -> "Provenance":
        """Build provenance from a ``{source_id: trust}`` mapping."""
        return cls(
            [SourceReference(sid, trust) for sid, trust in trust_by_source.items()]
        )

    @property
    def sources(self) -> list[str]:
        """Source identifiers in insertion order."""
        return [ref.source_id for ref in self.references]

    @property
    def trust_scores(self) -> list[float]:
        """Trust scores aligned with :attr:`sources`."""
        return [ref.trust for ref in self.references]

    def trust_of(self, source_id: str) -> float | None:
        """Return the trust recorded for *source_id*, or ``None`` if absent."""
        for ref in self.references:
            if ref.source_id == source_id:
                return ref.trust
        return None

    def add(self, source_id: str, trust: float = DEFAULT_TRUST) -> None:
        """Record that *source_id* also asserts this fact.

        If the source is already present the trust score is updated to the
        maximum of the old and new values (a source never becomes less sure of
        a fact it re-asserts).
        """
        for index, ref in enumerate(self.references):
            if ref.source_id == source_id:
                if trust > ref.trust:
                    self.references[index] = SourceReference(source_id, trust)
                return
        self.references.append(SourceReference(source_id, trust))

    def merge(self, other: "Provenance") -> "Provenance":
        """Return a new provenance combining this one with *other*."""
        merged = Provenance(list(self.references))
        for ref in other.references:
            merged.add(ref.source_id, ref.trust)
        return merged

    def remove_source(self, source_id: str) -> bool:
        """Drop *source_id* from the provenance.

        Returns ``True`` if the source was present.  Used to enforce
        on-demand data deletion and license compliance: a fact whose
        provenance becomes empty must be removed from served views.
        """
        before = len(self.references)
        self.references = [r for r in self.references if r.source_id != source_id]
        return len(self.references) != before

    def restrict_to(self, allowed_sources: Iterable[str]) -> "Provenance":
        """Return provenance restricted to an allow-list of sources."""
        allowed = set(allowed_sources)
        return Provenance([r for r in self.references if r.source_id in allowed])

    def confidence(self) -> float:
        """Aggregate per-source trust into a single correctness probability.

        Sources are treated as independent noisy voters: the probability that
        *all* of them are wrong is the product of their error rates, so the
        aggregated confidence is the complement of that product.  This mirrors
        the probabilistic representation of knowledge discussed in the paper
        (confidence scores driving accuracy SLAs and fact auditing).
        """
        if not self.references:
            return 0.0
        wrong_probability = 1.0
        for ref in self.references:
            wrong_probability *= 1.0 - ref.trust
        return 1.0 - wrong_probability

    def is_empty(self) -> bool:
        """Return ``True`` when no source supports the fact any longer."""
        return not self.references

    def copy(self) -> "Provenance":
        """Return an independent copy."""
        return Provenance(list(self.references))

    def __len__(self) -> int:
        return len(self.references)

    def __contains__(self, source_id: object) -> bool:
        return any(ref.source_id == source_id for ref in self.references)
