"""The extended-triples data model (Section 2.1, Table 1 of the paper).

A knowledge graph fact is a ``<subject, predicate, object>`` triple.  To avoid
expensive self-joins when retrieving one-hop composite relationships, Saga
flattens relationship nodes into the *extended triple* format: a triple may
carry a ``relationship_id`` and ``relationship_predicate`` describing a fact
about a composite relationship node (e.g. ``educated_at.school``).

Every extended triple also carries provenance (sources + trust) and a locale,
as required for data governance and multi-lingual knowledge.

The :class:`TripleStore` is a small in-memory container with the indexes the
rest of the platform needs (by subject, by predicate, by object) plus source
removal and snapshot/diff helpers.  The production system stores these triples
in a distributed warehouse; the relational layout is identical.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Iterator

from repro.errors import DataModelError
from repro.model.provenance import DEFAULT_LOCALE, Provenance

Value = object  # literal (str, int, float, bool) or an entity identifier


@dataclass
class ExtendedTriple:
    """One row of the extended-triples relational model.

    Attributes mirror Table 1 in the paper:

    subject
        Entity identifier the fact is about.
    predicate
        Ontology predicate name (e.g. ``name``, ``educated_at``).
    obj
        Literal value or identifier of another entity.
    relationship_id
        Identifier of the composite relationship node this triple belongs to,
        or ``None`` for simple facts.
    relationship_predicate
        Predicate on the relationship node (e.g. ``school``), or ``None``.
    locale
        BCP-47-ish locale tag for literals.
    provenance
        Sources asserting the fact and their trust scores.
    """

    subject: str
    predicate: str
    obj: Value
    relationship_id: str | None = None
    relationship_predicate: str | None = None
    locale: str = DEFAULT_LOCALE
    provenance: Provenance = field(default_factory=Provenance)

    def __post_init__(self) -> None:
        if not self.subject:
            raise DataModelError("triple subject must be non-empty")
        if not self.predicate:
            raise DataModelError("triple predicate must be non-empty")
        if (self.relationship_id is None) != (self.relationship_predicate is None):
            raise DataModelError(
                "relationship_id and relationship_predicate must be set together "
                f"(subject={self.subject!r}, predicate={self.predicate!r})"
            )

    @property
    def is_composite(self) -> bool:
        """True when the triple describes a composite relationship node."""
        return self.relationship_id is not None

    @property
    def sources(self) -> list[str]:
        """Identifiers of the sources asserting this fact."""
        return self.provenance.sources

    @property
    def trust(self) -> list[float]:
        """Trust scores aligned with :attr:`sources`."""
        return self.provenance.trust_scores

    def confidence(self) -> float:
        """Aggregated probability that the fact is correct."""
        return self.provenance.confidence()

    def key(self) -> tuple:
        """Identity key used when merging provenance of equivalent facts.

        Two triples with equal keys state the same fact (possibly observed in
        different sources) and are consolidated during fusion.
        """
        return (
            self.subject,
            self.predicate,
            self.relationship_id,
            self.relationship_predicate,
            self.obj,
            self.locale,
        )

    def with_subject(self, subject: str) -> "ExtendedTriple":
        """Return a copy with the subject replaced (used after linking)."""
        return replace(self, subject=subject, provenance=self.provenance.copy())

    def with_object(self, obj: Value) -> "ExtendedTriple":
        """Return a copy with the object replaced (used after object resolution)."""
        return replace(self, obj=obj, provenance=self.provenance.copy())

    def copy(self) -> "ExtendedTriple":
        """Return an independent copy of the triple."""
        return replace(self, provenance=self.provenance.copy())

    def to_row(self) -> dict:
        """Serialize to the flat relational row shown in Table 1."""
        return {
            "subject": self.subject,
            "predicate": self.predicate,
            "r_id": self.relationship_id,
            "r_predicate": self.relationship_predicate,
            "object": self.obj,
            "locale": self.locale,
            "sources": list(self.provenance.sources),
            "trust": list(self.provenance.trust_scores),
        }

    @classmethod
    def from_row(cls, row: dict) -> "ExtendedTriple":
        """Deserialize a row produced by :meth:`to_row`."""
        provenance = Provenance.from_mapping(
            dict(zip(row.get("sources", []), row.get("trust", [])))
        )
        return cls(
            subject=row["subject"],
            predicate=row["predicate"],
            obj=row["object"],
            relationship_id=row.get("r_id"),
            relationship_predicate=row.get("r_predicate"),
            locale=row.get("locale", DEFAULT_LOCALE),
            provenance=provenance,
        )


class TripleStore:
    """In-memory collection of extended triples with secondary indexes.

    The store deduplicates facts by :meth:`ExtendedTriple.key`; adding an
    already-present fact merges provenance instead of creating a duplicate row
    (non-destructive integration).
    """

    def __init__(self, triples: Iterable[ExtendedTriple] | None = None) -> None:
        self._by_key: dict[tuple, ExtendedTriple] = {}
        self._by_subject: dict[str, set[tuple]] = defaultdict(set)
        self._by_predicate: dict[str, set[tuple]] = defaultdict(set)
        self._by_object: dict[Value, set[tuple]] = defaultdict(set)
        if triples:
            for triple in triples:
                self.add(triple)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add(self, triple: ExtendedTriple) -> ExtendedTriple:
        """Insert *triple*, merging provenance when the fact already exists.

        Returns the stored triple (existing instance when merged).
        """
        key = triple.key()
        existing = self._by_key.get(key)
        if existing is not None:
            existing.provenance = existing.provenance.merge(triple.provenance)
            return existing
        stored = triple.copy()
        self._by_key[key] = stored
        self._by_subject[stored.subject].add(key)
        self._by_predicate[stored.predicate].add(key)
        self._index_object(stored, key)
        return stored

    def add_all(self, triples: Iterable[ExtendedTriple]) -> int:
        """Insert every triple; return how many new facts were created."""
        before = len(self._by_key)
        for triple in triples:
            self.add(triple)
        return len(self._by_key) - before

    def discard(self, triple: ExtendedTriple) -> bool:
        """Remove the fact identified by *triple*'s key. Returns ``True`` if present."""
        return self._discard_key(triple.key())

    def remove_subject(self, subject: str) -> int:
        """Remove every fact about *subject*; return the number removed."""
        keys = list(self._by_subject.get(subject, ()))
        for key in keys:
            self._discard_key(key)
        return len(keys)

    def remove_source(self, source_id: str) -> int:
        """Drop *source_id* from all provenance; purge facts left unsupported.

        Implements on-demand source deletion (licensing / governance).
        Returns the number of facts removed entirely.
        """
        removed = 0
        for key in list(self._by_key):
            triple = self._by_key[key]
            if source_id in triple.provenance:
                triple.provenance.remove_source(source_id)
                if triple.provenance.is_empty():
                    self._discard_key(key)
                    removed += 1
        return removed

    def overwrite_source_partition(
        self, source_id: str, triples: Iterable[ExtendedTriple]
    ) -> tuple[int, int]:
        """Replace every fact attributed *only* to *source_id* with *triples*.

        This is the optimized fusion path for volatile predicates described in
        Section 2.4: the partition of the KG owned by a source (e.g. its
        popularity facts) is overwritten wholesale without joins.

        Returns ``(facts_removed, facts_added)``.
        """
        removed = 0
        for key in list(self._by_key):
            triple = self._by_key[key]
            if triple.provenance.sources == [source_id]:
                self._discard_key(key)
                removed += 1
        added = self.add_all(triples)
        return removed, added

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def facts_about(self, subject: str) -> list[ExtendedTriple]:
        """Return all facts whose subject is *subject*."""
        return [self._by_key[key] for key in sorted(self._by_subject.get(subject, ()), key=repr)]

    def facts_with_predicate(self, predicate: str) -> list[ExtendedTriple]:
        """Return all facts using *predicate*."""
        return [self._by_key[key] for key in sorted(self._by_predicate.get(predicate, ()), key=repr)]

    def facts_with_object(self, obj: Value) -> list[ExtendedTriple]:
        """Return all facts whose object equals *obj* (literal or entity id)."""
        try:
            keys = self._by_object.get(obj, set())
        except TypeError:  # unhashable object value: fall back to a scan
            return [t for t in self if t.obj == obj]
        return [self._by_key[key] for key in sorted(keys, key=repr)]

    def value_of(self, subject: str, predicate: str) -> Value | None:
        """Return one object for ``(subject, predicate)`` or ``None``."""
        for triple in self.facts_about(subject):
            if triple.predicate == predicate and not triple.is_composite:
                return triple.obj
        return None

    def values_of(self, subject: str, predicate: str) -> list[Value]:
        """Return every object asserted for ``(subject, predicate)``."""
        return [
            t.obj
            for t in self.facts_about(subject)
            if t.predicate == predicate and not t.is_composite
        ]

    def relationship_facts(
        self, subject: str, predicate: str
    ) -> dict[str, list[ExtendedTriple]]:
        """Group composite facts of ``(subject, predicate)`` by relationship id."""
        grouped: dict[str, list[ExtendedTriple]] = defaultdict(list)
        for triple in self.facts_about(subject):
            if triple.predicate == predicate and triple.is_composite:
                grouped[triple.relationship_id].append(triple)
        return dict(grouped)

    def subjects(self) -> set[str]:
        """Return the set of all subject identifiers."""
        return {s for s, keys in self._by_subject.items() if keys}

    def predicates(self) -> set[str]:
        """Return the set of all predicates in use."""
        return {p for p, keys in self._by_predicate.items() if keys}

    def entity_count(self) -> int:
        """Number of distinct subjects (entities) in the store."""
        return len(self.subjects())

    def fact_count(self) -> int:
        """Number of distinct facts in the store."""
        return len(self._by_key)

    def filter(self, predicate_fn: Callable[[ExtendedTriple], bool]) -> "TripleStore":
        """Return a new store with the facts satisfying *predicate_fn*."""
        return TripleStore(t.copy() for t in self if predicate_fn(t))

    def snapshot(self) -> "TripleStore":
        """Return a deep copy of the store (used for versioned analytics)."""
        return TripleStore(t.copy() for t in self)

    def to_rows(self) -> list[dict]:
        """Serialize the whole store to relational rows."""
        return [t.to_row() for t in self]

    def canonical_rows(self) -> list[tuple]:
        """Canonical content of the store: every fact with its provenance.

        Sorted, hashable, and independent of insertion order — two stores are
        byte-equivalent (facts *and* per-source provenance) exactly when their
        canonical rows are equal.  The parallel-construction equivalence suite
        and the CONSTRUCT benchmark compare stores through this one
        definition.
        """
        return sorted(
            (
                repr(triple.key()),
                tuple(
                    sorted(
                        (ref.source_id, ref.trust)
                        for ref in triple.provenance.references
                    )
                ),
            )
            for triple in self
        )

    @classmethod
    def from_rows(cls, rows: Iterable[dict]) -> "TripleStore":
        """Deserialize a store from rows produced by :meth:`to_rows`."""
        return cls(ExtendedTriple.from_row(row) for row in rows)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _index_object(self, triple: ExtendedTriple, key: tuple) -> None:
        try:
            self._by_object[triple.obj].add(key)
        except TypeError:
            # Unhashable literal objects are rare; they are still retrievable
            # via full scans, just not via the object index.
            pass

    def _discard_key(self, key: tuple) -> bool:
        triple = self._by_key.pop(key, None)
        if triple is None:
            return False
        self._by_subject[triple.subject].discard(key)
        self._by_predicate[triple.predicate].discard(key)
        try:
            self._by_object[triple.obj].discard(key)
        except TypeError:
            pass
        return True

    def __iter__(self) -> Iterator[ExtendedTriple]:
        return iter(list(self._by_key.values()))

    def __len__(self) -> int:
        return len(self._by_key)

    def __contains__(self, triple: object) -> bool:
        if not isinstance(triple, ExtendedTriple):
            return False
        return triple.key() in self._by_key
