"""The extended-triples data model (Section 2.1, Table 1 of the paper).

A knowledge graph fact is a ``<subject, predicate, object>`` triple.  To avoid
expensive self-joins when retrieving one-hop composite relationships, Saga
flattens relationship nodes into the *extended triple* format: a triple may
carry a ``relationship_id`` and ``relationship_predicate`` describing a fact
about a composite relationship node (e.g. ``educated_at.school``).

Every extended triple also carries provenance (sources + trust) and a locale,
as required for data governance and multi-lingual knowledge.

The :class:`TripleStore` is a dictionary-encoded, predicate-partitioned
columnar store (see :mod:`repro.model.columnar` for the storage primitives and
``docs/store.md`` for the full design):

* subjects, predicates, relationship ids, and locales are interned to dense
  integer ids; object values are interned with ``dict`` equality semantics
  while a literal side-table keeps each row's value exactly as provided;
* each predicate owns a partition of parallel ``array('q')`` id columns, so
  predicate scans touch one contiguous partition and point lookups use the
  partition's ``(subject, predicate)`` composite index;
* batch operators (:meth:`add_batch`, :meth:`add_rows`,
  :meth:`remove_subjects_batch`, :meth:`merge_from`, :meth:`project`,
  :meth:`scan_tuples`) move whole fact sets without materializing triples;
* the row-at-a-time API (:meth:`add`, :meth:`facts_about`, iteration, ...) is
  a compatibility shim materializing :class:`ExtendedTriple` views lazily and
  caching them per row — a materialized triple shares the store's live
  :class:`~repro.model.provenance.Provenance` object, so in-place provenance
  edits through it are visible to the store, exactly as with the legacy
  dict-of-triples layout (kept verbatim as
  :class:`repro.baselines.legacy_store.LegacyTripleStore`);
* :meth:`snapshot` is copy-on-write over the column chunks instead of a deep
  copy of every triple.

:meth:`canonical_rows` is the single equivalence oracle: the seeded suites
prove the columnar store byte-identical to the legacy layout through it.  The
production system stores these triples in a distributed warehouse; the
relational layout is identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Iterator

from repro.errors import DataModelError
from repro.model.columnar import (
    ROW_BITS,
    ROW_MASK,
    ObjectDict,
    PredicatePartition,
    TermDict,
    pack_ref,
)
from repro.model.provenance import DEFAULT_LOCALE, Provenance

Value = object  # literal (str, int, float, bool) or an entity identifier


@dataclass
class ExtendedTriple:
    """One row of the extended-triples relational model.

    Attributes mirror Table 1 in the paper:

    subject
        Entity identifier the fact is about.
    predicate
        Ontology predicate name (e.g. ``name``, ``educated_at``).
    obj
        Literal value or identifier of another entity.
    relationship_id
        Identifier of the composite relationship node this triple belongs to,
        or ``None`` for simple facts.
    relationship_predicate
        Predicate on the relationship node (e.g. ``school``), or ``None``.
    locale
        BCP-47-ish locale tag for literals.
    provenance
        Sources asserting the fact and their trust scores.
    """

    subject: str
    predicate: str
    obj: Value
    relationship_id: str | None = None
    relationship_predicate: str | None = None
    locale: str = DEFAULT_LOCALE
    provenance: Provenance = field(default_factory=Provenance)

    def __post_init__(self) -> None:
        if not self.subject:
            raise DataModelError("triple subject must be non-empty")
        if not self.predicate:
            raise DataModelError("triple predicate must be non-empty")
        if (self.relationship_id is None) != (self.relationship_predicate is None):
            raise DataModelError(
                "relationship_id and relationship_predicate must be set together "
                f"(subject={self.subject!r}, predicate={self.predicate!r})"
            )

    @property
    def is_composite(self) -> bool:
        """True when the triple describes a composite relationship node."""
        return self.relationship_id is not None

    @property
    def sources(self) -> list[str]:
        """Identifiers of the sources asserting this fact."""
        return self.provenance.sources

    @property
    def trust(self) -> list[float]:
        """Trust scores aligned with :attr:`sources`."""
        return self.provenance.trust_scores

    def confidence(self) -> float:
        """Aggregated probability that the fact is correct."""
        return self.provenance.confidence()

    def key(self) -> tuple:
        """Identity key used when merging provenance of equivalent facts.

        Two triples with equal keys state the same fact (possibly observed in
        different sources) and are consolidated during fusion.
        """
        return (
            self.subject,
            self.predicate,
            self.relationship_id,
            self.relationship_predicate,
            self.obj,
            self.locale,
        )

    def with_subject(self, subject: str) -> "ExtendedTriple":
        """Return a copy with the subject replaced (used after linking)."""
        return replace(self, subject=subject, provenance=self.provenance.copy())

    def with_object(self, obj: Value) -> "ExtendedTriple":
        """Return a copy with the object replaced (used after object resolution)."""
        return replace(self, obj=obj, provenance=self.provenance.copy())

    def copy(self) -> "ExtendedTriple":
        """Return an independent copy of the triple."""
        return replace(self, provenance=self.provenance.copy())

    def to_row(self) -> dict:
        """Serialize to the flat relational row shown in Table 1."""
        return {
            "subject": self.subject,
            "predicate": self.predicate,
            "r_id": self.relationship_id,
            "r_predicate": self.relationship_predicate,
            "object": self.obj,
            "locale": self.locale,
            "sources": list(self.provenance.sources),
            "trust": list(self.provenance.trust_scores),
        }

    @classmethod
    def from_row(cls, row: dict) -> "ExtendedTriple":
        """Deserialize a row produced by :meth:`to_row`."""
        provenance = Provenance.from_mapping(
            dict(zip(row.get("sources", []), row.get("trust", [])))
        )
        return cls(
            subject=row["subject"],
            predicate=row["predicate"],
            obj=row["object"],
            relationship_id=row.get("r_id"),
            relationship_predicate=row.get("r_predicate"),
            locale=row.get("locale", DEFAULT_LOCALE),
            provenance=provenance,
        )


class TripleStore:
    """Columnar, dictionary-interned collection of extended triples.

    The store deduplicates facts by :meth:`ExtendedTriple.key`; adding an
    already-present fact merges provenance instead of creating a duplicate row
    (non-destructive integration).  Facts live in per-predicate column
    partitions; the row-at-a-time API materializes :class:`ExtendedTriple`
    views lazily.

    Internal layout (private — the lint guard bans touching these outside
    ``src/repro/model/``):

    ``_by_key``
        Insertion-ordered dict from the id-encoded fact key
        ``(sid, pid, rid, rpid, oid, lid)`` to a packed row reference
        ``(pid << 32) | row``.  Iteration order of the store is this dict's
        insertion order, matching the legacy layout.
    ``_by_subject`` / ``_by_object``
        Exact secondary indexes from subject / object id to packed refs.
    ``_by_source``
        Inverted index from source id to packed refs.  A *superset* index:
        fusion removes sources from provenance in place through materialized
        triples without telling the store, so entries are re-checked against
        live provenance before use (no code path adds sources in place, so the
        superset never misses a fact).
    """

    def __init__(self, triples: Iterable[ExtendedTriple] | None = None) -> None:
        self._subject_terms = TermDict()
        self._predicate_terms = TermDict()  # predicates and relationship predicates
        self._rid_terms = TermDict()  # relationship ids (``None`` for simple facts)
        self._locale_terms = TermDict()
        self._object_terms = ObjectDict()
        self._none_rid = self._rid_terms.intern(None)
        self._none_rpred = self._predicate_terms.intern(None)
        self._partitions: dict[int, PredicatePartition] = {}
        self._by_key: dict[tuple, int] = {}
        self._by_subject: dict[int, set[int]] = {}
        self._by_object: dict[int, set[int]] = {}
        self._by_source: dict[str, set[int]] = {}
        # Repeated-scan cache: subject id -> facts in facts_about order.
        # Invalidated per subject when a fact is created or removed; provenance
        # merges mutate the cached facts in place and need no invalidation.
        self._facts_cache: dict[int, list[ExtendedTriple]] = {}
        self._cow = False
        if triples:
            self._ensure_private()
            for triple in triples:
                self._upsert_triple(triple)

    # ------------------------------------------------------------------ #
    # mutation (row-at-a-time shim)
    # ------------------------------------------------------------------ #
    def add(self, triple: ExtendedTriple) -> ExtendedTriple:
        """Insert *triple*, merging provenance when the fact already exists.

        Returns the stored triple (the same materialized view on every call
        for a given fact).
        """
        self._ensure_private()
        return self._materialize(self._upsert_triple(triple))

    def add_all(self, triples: Iterable[ExtendedTriple]) -> int:
        """Insert every triple; return how many new facts were created."""
        return self.add_batch(triples)

    def discard(self, triple: ExtendedTriple) -> bool:
        """Remove the fact identified by *triple*'s key. Returns ``True`` if present."""
        key = self._key_ids(triple)
        if key is None:
            return False
        ref = self._by_key.get(key)
        if ref is None:
            return False
        self._ensure_private()
        self._discard_ref(ref)
        return True

    def remove_subject(self, subject: str) -> int:
        """Remove every fact about *subject*; return the number removed."""
        sid = self._subject_terms.id_of(subject)
        if sid is None or sid not in self._by_subject:
            return 0
        self._ensure_private()
        refs = list(self._by_subject.get(sid, ()))
        for ref in refs:
            self._discard_ref(ref)
        return len(refs)

    def remove_source(self, source_id: str) -> int:
        """Drop *source_id* from all provenance; purge facts left unsupported.

        Implements on-demand source deletion (licensing / governance).
        Returns the number of facts removed entirely.  Touches only the facts
        in the source's inverted-index entry, not the whole store.
        """
        if not self._by_source.get(source_id):
            return 0
        self._ensure_private()
        removed = 0
        for ref in list(self._by_source.get(source_id, ())):
            prov = self._partitions[ref >> ROW_BITS].prov[ref & ROW_MASK]
            if prov is None or source_id not in prov:
                continue  # stale superset entry: the source left this fact in place
            prov.remove_source(source_id)
            if prov.is_empty():
                self._discard_ref(ref)
                removed += 1
        self._by_source.pop(source_id, None)
        return removed

    def overwrite_source_partition(
        self, source_id: str, triples: Iterable[ExtendedTriple]
    ) -> tuple[int, int]:
        """Replace every fact attributed *only* to *source_id* with *triples*.

        This is the optimized fusion path for volatile predicates described in
        Section 2.4: the partition of the KG owned by a source (e.g. its
        popularity facts) is overwritten wholesale without joins.

        Returns ``(facts_removed, facts_added)``.
        """
        removed = 0
        if self._by_source.get(source_id):
            self._ensure_private()
            for ref in list(self._by_source.get(source_id, ())):
                prov = self._partitions[ref >> ROW_BITS].prov[ref & ROW_MASK]
                if prov is not None and prov.sources == [source_id]:
                    self._discard_ref(ref)
                    removed += 1
        added = self.add_batch(triples)
        return removed, added

    # ------------------------------------------------------------------ #
    # batch operators
    # ------------------------------------------------------------------ #
    def add_batch(self, triples: Iterable[ExtendedTriple]) -> int:
        """Insert triples without materializing views; return new-fact count."""
        self._ensure_private()
        before = len(self._by_key)
        for triple in triples:
            self._upsert_triple(triple)
        return len(self._by_key) - before

    def add_rows(self, rows: Iterable[dict]) -> int:
        """Insert relational rows (:meth:`ExtendedTriple.to_row` format) directly.

        Skips triple construction entirely; validation matches
        :meth:`ExtendedTriple.from_row` exactly.  Returns new-fact count.
        """
        self._ensure_private()
        before = len(self._by_key)
        for row in rows:
            subject = row["subject"]
            predicate = row["predicate"]
            if not subject:
                raise DataModelError("triple subject must be non-empty")
            if not predicate:
                raise DataModelError("triple predicate must be non-empty")
            relationship_id = row.get("r_id")
            relationship_predicate = row.get("r_predicate")
            if (relationship_id is None) != (relationship_predicate is None):
                raise DataModelError(
                    "relationship_id and relationship_predicate must be set together "
                    f"(subject={subject!r}, predicate={predicate!r})"
                )
            provenance = Provenance.from_mapping(
                dict(zip(row.get("sources", []), row.get("trust", [])))
            )
            self._upsert(
                subject,
                predicate,
                relationship_id,
                relationship_predicate,
                row["object"],
                row.get("locale", DEFAULT_LOCALE),
                provenance.references,
            )
        return len(self._by_key) - before

    def remove_subjects_batch(self, subjects: Iterable[str]) -> int:
        """Remove every fact of every listed subject; return the number removed."""
        removed = 0
        for subject in subjects:
            removed += self.remove_subject(subject)
        return removed

    def retract_source_from_subjects(
        self,
        source_id: str,
        subjects: Iterable[str],
        only_predicates: Iterable[str] | None = None,
        skip_predicates: Iterable[str] = (),
    ) -> int:
        """Remove *source_id* from the provenance of matching facts of the
        given subjects, purging facts left unsupported.

        The fusion retract primitive: candidate facts come from intersecting
        the subject and source inverted indexes, so a retraction touches only
        the facts the source actually asserted instead of scanning every fact
        of the subject.  *only_predicates* restricts the retraction to those
        predicates (the volatile-partition path); *skip_predicates* exempts
        predicates (fusion never retracts ``sameAs`` links).  Returns the
        number of facts purged entirely.
        """
        if not self._by_source.get(source_id):
            return 0
        pid_filter = None
        if only_predicates is not None:
            ids = (self._predicate_terms.id_of(p) for p in only_predicates)
            pid_filter = {pid for pid in ids if pid is not None}
        ids = (self._predicate_terms.id_of(p) for p in skip_predicates)
        skip_pids = {pid for pid in ids if pid is not None}
        self._ensure_private()
        removed = 0
        for subject in subjects:
            sid = self._subject_terms.id_of(subject)
            if sid is None:
                continue
            subject_refs = self._by_subject.get(sid)
            source_refs = self._by_source.get(source_id)
            if not subject_refs or not source_refs:
                continue
            for ref in subject_refs & source_refs:
                pid = ref >> ROW_BITS
                if pid_filter is not None and pid not in pid_filter:
                    continue
                if pid in skip_pids:
                    continue
                prov = self._partitions[pid].prov[ref & ROW_MASK]
                if prov is None or source_id not in prov:
                    continue  # stale superset entry
                prov.remove_source(source_id)
                refs = self._by_source.get(source_id)
                if refs is not None:
                    refs.discard(ref)
                    if not refs:
                        del self._by_source[source_id]
                if prov.is_empty():
                    self._discard_ref(ref)
                    removed += 1
        return removed

    def merge_from(self, other: "TripleStore") -> int:
        """Merge every fact of *other* into this store; return new-fact count.

        The columnar fast path translates *other*'s dense ids into this
        store's dictionaries through per-column memo tables, so each distinct
        term is hashed once regardless of how many rows use it.  Merging into
        an **empty** store adopts *other*'s column chunks wholesale through
        the copy-on-write machinery (the serving-bootstrap / fusion-barrier
        case) instead of re-inserting row by row.  Falls back to
        :meth:`add_batch` for plain triple iterables.
        """
        if not isinstance(other, TripleStore):
            return self.add_batch(other)
        if not self._by_key:
            adopted = other.snapshot()
            self.__dict__.update(adopted.__dict__)
            return len(self._by_key)
        self._ensure_private()
        before = len(self._by_key)
        smemo: dict[int, int] = {}
        pmemo: dict[int, int] = {}
        rmemo: dict[int, int] = {}
        omemo: dict[int, int] = {}
        lmemo: dict[int, int] = {}

        def translate(memo: dict[int, int], theirs: TermDict, mine: TermDict, tid: int) -> int:
            mapped = memo.get(tid)
            if mapped is None:
                mapped = mine.intern(theirs.terms[tid])
                memo[tid] = mapped
            return mapped

        for key, ref in list(other._by_key.items()):
            partition = other._partitions[key[1]]
            row = ref & ROW_MASK
            my_key = (
                translate(smemo, other._subject_terms, self._subject_terms, key[0]),
                translate(pmemo, other._predicate_terms, self._predicate_terms, key[1]),
                translate(rmemo, other._rid_terms, self._rid_terms, key[2]),
                translate(pmemo, other._predicate_terms, self._predicate_terms, key[3]),
                translate(omemo, other._object_terms, self._object_terms, key[4]),
                translate(lmemo, other._locale_terms, self._locale_terms, key[5]),
            )
            self._insert_ids(
                my_key, partition.predicate, partition.objs[row], partition.prov[row].references
            )
        return len(self._by_key) - before

    def project(
        self,
        subjects: Iterable[str] | None = None,
        predicates: Iterable[str] | None = None,
    ) -> "TripleStore":
        """Return a new store restricted to the given subjects and/or predicates.

        Filtering happens on dense ids before any triple is materialized;
        omitted filters match everything.
        """
        subject_ids = None
        if subjects is not None:
            ids = (self._subject_terms.id_of(s) for s in subjects)
            subject_ids = {sid for sid in ids if sid is not None}
        partition_ids = None
        if predicates is not None:
            ids = (self._predicate_terms.id_of(p) for p in predicates)
            partition_ids = {pid for pid in ids if pid is not None}
        result = TripleStore()
        for key, ref in self._by_key.items():
            if subject_ids is not None and key[0] not in subject_ids:
                continue
            if partition_ids is not None and key[1] not in partition_ids:
                continue
            partition = self._partitions[key[1]]
            row = ref & ROW_MASK
            result._upsert(
                self._subject_terms.terms[key[0]],
                partition.predicate,
                self._rid_terms.terms[key[2]],
                self._predicate_terms.terms[key[3]],
                partition.objs[row],
                self._locale_terms.terms[key[5]],
                partition.prov[row].references,
            )
        return result

    def scan_tuples(self) -> Iterator[tuple]:
        """Insertion-ordered ``(subject, predicate, relationship_predicate, object)``
        scan without materializing triples — the graph-shaped hot-loop feed."""
        subject_terms = self._subject_terms.terms
        predicate_terms = self._predicate_terms.terms
        for key, ref in self._by_key.items():
            partition = self._partitions[key[1]]
            row = ref & ROW_MASK
            yield (
                subject_terms[partition.subj[row]],
                partition.predicate,
                predicate_terms[partition.rpred[row]],
                partition.objs[row],
            )

    def scan_subject(self, subject: str) -> Iterator[tuple[str, bool, Value]]:
        """Unordered ``(predicate, is_composite, object)`` scan of one
        subject's facts, without materializing triples — for liveness and
        type checks that don't care about fact order."""
        sid = self._subject_terms.id_of(subject)
        if sid is None:
            return
        for ref in self._by_subject.get(sid, ()):
            partition = self._partitions[ref >> ROW_BITS]
            row = ref & ROW_MASK
            yield (
                partition.predicate,
                partition.rid[row] != self._none_rid,
                partition.objs[row],
            )

    def rows_about(self, subject: str) -> list[dict]:
        """Relational rows of every fact about *subject*, in
        :meth:`facts_about` order, built straight from the columns."""
        sid = self._subject_terms.id_of(subject)
        refs = self._by_subject.get(sid) if sid is not None else None
        if not refs:
            return []
        return [self._row_of(ref) for ref in sorted(refs, key=self._repr_of)]

    def iter_subject_groups(self) -> Iterator[tuple[str, list[ExtendedTriple]]]:
        """Yield ``(subject, facts)`` for every subject in sorted order, with
        facts in :meth:`facts_about` order — the entity-materialization feed."""
        by_name = sorted(
            (self._subject_terms.terms[sid], sid) for sid in self._by_subject
        )
        for subject, sid in by_name:
            yield subject, list(self._facts_of_sid(sid))

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def facts_about(self, subject: str) -> list[ExtendedTriple]:
        """Return all facts whose subject is *subject*."""
        sid = self._subject_terms.id_of(subject)
        if sid is None:
            return []
        return list(self._facts_of_sid(sid))

    def _facts_of_sid(self, sid: int) -> list[ExtendedTriple]:
        """Materialized facts of one subject id, cached between mutations.

        Callers must copy before handing the list out (returned lists are
        caller-owned in the legacy contract)."""
        cached = self._facts_cache.get(sid)
        if cached is None:
            refs = self._by_subject.get(sid)
            if not refs:
                return []
            cached = [self._materialize(ref) for ref in sorted(refs, key=self._repr_of)]
            self._facts_cache[sid] = cached
        return cached

    def facts_with_predicate(self, predicate: str) -> list[ExtendedTriple]:
        """Return all facts using *predicate*."""
        pid = self._predicate_terms.id_of(predicate)
        partition = self._partitions.get(pid) if pid is not None else None
        if partition is None or not partition.live:
            return []
        refs = [pack_ref(pid, row) for row in partition.live_rows()]
        refs.sort(key=self._repr_of)
        return [self._materialize(ref) for ref in refs]

    def facts_with_object(self, obj: Value) -> list[ExtendedTriple]:
        """Return all facts whose object equals *obj* (literal or entity id)."""
        try:
            oid = self._object_terms.id_of(obj)
        except TypeError:  # unhashable object value: fall back to a scan
            return [t for t in self if t.obj == obj]
        refs = self._by_object.get(oid) if oid is not None else None
        if not refs:
            return []
        return [self._materialize(ref) for ref in sorted(refs, key=self._repr_of)]

    def value_of(self, subject: str, predicate: str) -> Value | None:
        """Return one object for ``(subject, predicate)`` or ``None``.

        Served from the ``(subject, predicate)`` composite index — wide
        entities no longer pay a scan over their unrelated facts.
        """
        for ref in self._composite_index_refs(subject, predicate):
            partition = self._partitions[ref >> ROW_BITS]
            row = ref & ROW_MASK
            if partition.rid[row] == self._none_rid:
                return partition.objs[row]
        return None

    def values_of(self, subject: str, predicate: str) -> list[Value]:
        """Return every object asserted for ``(subject, predicate)``."""
        values = []
        for ref in self._composite_index_refs(subject, predicate):
            partition = self._partitions[ref >> ROW_BITS]
            row = ref & ROW_MASK
            if partition.rid[row] == self._none_rid:
                values.append(partition.objs[row])
        return values

    def relationship_facts(
        self, subject: str, predicate: str
    ) -> dict[str, list[ExtendedTriple]]:
        """Group composite facts of ``(subject, predicate)`` by relationship id."""
        grouped: dict[str, list[ExtendedTriple]] = {}
        for ref in self._composite_index_refs(subject, predicate):
            partition = self._partitions[ref >> ROW_BITS]
            row = ref & ROW_MASK
            rid = partition.rid[row]
            if rid != self._none_rid:
                relationship_id = self._rid_terms.terms[rid]
                grouped.setdefault(relationship_id, []).append(self._materialize(ref))
        return grouped

    def subjects(self) -> set[str]:
        """Return the set of all subject identifiers."""
        return {self._subject_terms.terms[sid] for sid in self._by_subject}

    def predicates(self) -> set[str]:
        """Return the set of all predicates in use."""
        return {p.predicate for p in self._partitions.values() if p.live}

    def entity_count(self) -> int:
        """Number of distinct subjects (entities) in the store."""
        return len(self._by_subject)

    def fact_count(self) -> int:
        """Number of distinct facts in the store."""
        return len(self._by_key)

    def filter(self, predicate_fn: Callable[[ExtendedTriple], bool]) -> "TripleStore":
        """Return a new store with the facts satisfying *predicate_fn*."""
        return TripleStore(t.copy() for t in self if predicate_fn(t))

    def snapshot(self) -> "TripleStore":
        """Return an independent view of the store (used for versioned analytics).

        Copy-on-write: column chunks and indexes are shared with the original
        until either side mutates, so a snapshot costs one provenance copy per
        fact instead of a deep copy of every triple.
        """
        clone = TripleStore.__new__(TripleStore)
        clone._subject_terms = self._subject_terms
        clone._predicate_terms = self._predicate_terms
        clone._rid_terms = self._rid_terms
        clone._locale_terms = self._locale_terms
        clone._object_terms = self._object_terms
        clone._none_rid = self._none_rid
        clone._none_rpred = self._none_rpred
        clone._partitions = {
            pid: partition.cow_clone() for pid, partition in self._partitions.items()
        }
        clone._by_key = self._by_key
        clone._by_subject = self._by_subject
        clone._by_object = self._by_object
        clone._by_source = self._by_source
        clone._facts_cache = {}  # the clone materializes its own views
        clone._cow = True
        self._cow = True
        return clone

    def to_rows(self) -> list[dict]:
        """Serialize the whole store to relational rows."""
        return [self._row_of(ref) for ref in self._by_key.values()]

    def canonical_rows(self) -> list[tuple]:
        """Canonical content of the store: every fact with its provenance.

        Sorted, hashable, and independent of insertion order — two stores are
        byte-equivalent (facts *and* per-source provenance) exactly when their
        canonical rows are equal.  The parallel-construction and columnar
        equivalence suites and the CONSTRUCT benchmark compare stores through
        this one definition.
        """
        rows = []
        for ref in self._by_key.values():
            prov = self._partitions[ref >> ROW_BITS].prov[ref & ROW_MASK]
            rows.append(
                (
                    self._repr_of(ref),
                    tuple(sorted((r.source_id, r.trust) for r in prov.references)),
                )
            )
        rows.sort()
        return rows

    @classmethod
    def from_rows(cls, rows: Iterable[dict]) -> "TripleStore":
        """Deserialize a store from rows produced by :meth:`to_rows`."""
        store = cls()
        store.add_rows(rows)
        return store

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _ensure_private(self) -> None:
        """Copy shared store-level indexes before the first post-snapshot
        mutation (partition chunks are copied per-partition on demand)."""
        if not self._cow:
            return
        self._by_key = dict(self._by_key)
        self._by_subject = {sid: set(refs) for sid, refs in self._by_subject.items()}
        self._by_object = {oid: set(refs) for oid, refs in self._by_object.items()}
        self._by_source = {src: set(refs) for src, refs in self._by_source.items()}
        self._cow = False

    def _upsert_triple(self, triple: ExtendedTriple) -> int:
        return self._upsert(
            triple.subject,
            triple.predicate,
            triple.relationship_id,
            triple.relationship_predicate,
            triple.obj,
            triple.locale,
            triple.provenance.references,
        )

    def _upsert(
        self,
        subject: str,
        predicate: str,
        relationship_id: str | None,
        relationship_predicate: str | None,
        obj: Value,
        locale: str,
        references: list,
    ) -> int:
        # Intern the object first: an unhashable value raises TypeError before
        # anything is modified, as the legacy key-tuple dict did.
        key = (
            self._subject_terms.intern(subject),
            self._predicate_terms.intern(predicate),
            self._rid_terms.intern(relationship_id),
            self._predicate_terms.intern(relationship_predicate),
            self._object_terms.intern(obj),
            self._locale_terms.intern(locale),
        )
        return self._insert_ids(key, predicate, obj, references)

    def _insert_ids(self, key: tuple, predicate: str, obj: Value, references: list) -> int:
        """Insert or merge one id-encoded fact; the caller holds privacy."""
        ref = self._by_key.get(key)
        if ref is not None:
            prov = self._partitions[key[1]].prov[ref & ROW_MASK]
            for r in references:
                prov.add(r.source_id, r.trust)
                self._by_source.setdefault(r.source_id, set()).add(ref)
            return ref
        pid = key[1]
        partition = self._partitions.get(pid)
        if partition is None:
            partition = self._partitions[pid] = PredicatePartition(pid, predicate)
        else:
            partition.ensure_private()
        row = partition.alloc(
            key[0], key[2], key[3], key[4], key[5], obj, Provenance(list(references))
        )
        ref = pack_ref(pid, row)
        self._by_key[key] = ref
        self._by_subject.setdefault(key[0], set()).add(ref)
        self._by_object.setdefault(key[4], set()).add(ref)
        for r in references:
            self._by_source.setdefault(r.source_id, set()).add(ref)
        self._facts_cache.pop(key[0], None)
        return ref

    def _key_ids(self, triple: ExtendedTriple) -> tuple | None:
        """Id-encode *triple*'s key, or ``None`` when any term is unknown.

        Raises ``TypeError`` for unhashable objects (legacy parity)."""
        oid = self._object_terms.id_of(triple.obj)
        sid = self._subject_terms.id_of(triple.subject)
        pid = self._predicate_terms.id_of(triple.predicate)
        rid = self._rid_terms.id_of(triple.relationship_id)
        rpid = self._predicate_terms.id_of(triple.relationship_predicate)
        lid = self._locale_terms.id_of(triple.locale)
        if oid is None or sid is None or pid is None or rid is None or rpid is None or lid is None:
            return None
        return (sid, pid, rid, rpid, oid, lid)

    def _discard_ref(self, ref: int) -> None:
        """Remove one live row; the caller holds store-level privacy."""
        pid, row = ref >> ROW_BITS, ref & ROW_MASK
        partition = self._partitions[pid]
        sid = partition.subj[row]
        oid = partition.obj_ids[row]
        key = (sid, pid, partition.rid[row], partition.rpred[row], oid, partition.loc[row])
        del self._by_key[key]
        self._facts_cache.pop(sid, None)
        refs = self._by_subject.get(sid)
        if refs is not None:
            refs.discard(ref)
            if not refs:
                del self._by_subject[sid]
        refs = self._by_object.get(oid)
        if refs is not None:
            refs.discard(ref)
            if not refs:
                del self._by_object[oid]
        prov = partition.prov[row]
        for r in prov.references:
            refs = self._by_source.get(r.source_id)
            if refs is not None:
                refs.discard(ref)
                if not refs:
                    del self._by_source[r.source_id]
        partition.ensure_private()
        partition.release(row)

    def _composite_index_refs(self, subject: str, predicate: str) -> list[int]:
        """Refs of ``(subject, predicate)`` in :meth:`facts_about` order, from
        the partition's composite index."""
        sid = self._subject_terms.id_of(subject)
        pid = self._predicate_terms.id_of(predicate)
        if sid is None or pid is None:
            return []
        partition = self._partitions.get(pid)
        if partition is None:
            return []
        rows = partition.by_subject.get(sid)
        if not rows:
            return []
        return sorted((pack_ref(pid, row) for row in rows), key=self._repr_of)

    def _materialize(self, ref: int) -> ExtendedTriple:
        """The cached :class:`ExtendedTriple` view of one live row.

        The view shares the store's live ``Provenance`` object so that
        in-place provenance edits made through it (fusion retracts) are
        visible to the store, matching the legacy stored-instance behaviour.
        """
        partition = self._partitions[ref >> ROW_BITS]
        row = ref & ROW_MASK
        shim = partition.shims[row]
        if shim is None:
            shim = ExtendedTriple.__new__(ExtendedTriple)
            shim.subject = self._subject_terms.terms[partition.subj[row]]
            shim.predicate = partition.predicate
            shim.obj = partition.objs[row]
            shim.relationship_id = self._rid_terms.terms[partition.rid[row]]
            shim.relationship_predicate = self._predicate_terms.terms[partition.rpred[row]]
            shim.locale = self._locale_terms.terms[partition.loc[row]]
            shim.provenance = partition.prov[row]
            partition.shims[row] = shim
        return shim

    def _repr_of(self, ref: int) -> str:
        """``repr`` of the row's key tuple, cached per row — the sort key of
        every ordered lookup (identical to the legacy ``sorted(keys, key=repr)``)."""
        partition = self._partitions[ref >> ROW_BITS]
        row = ref & ROW_MASK
        cached = partition.reprs[row]
        if cached is None:
            cached = repr(
                (
                    self._subject_terms.terms[partition.subj[row]],
                    partition.predicate,
                    self._rid_terms.terms[partition.rid[row]],
                    self._predicate_terms.terms[partition.rpred[row]],
                    partition.objs[row],
                    self._locale_terms.terms[partition.loc[row]],
                )
            )
            partition.reprs[row] = cached
        return cached

    def _row_of(self, ref: int) -> dict:
        partition = self._partitions[ref >> ROW_BITS]
        row = ref & ROW_MASK
        prov = partition.prov[row]
        return {
            "subject": self._subject_terms.terms[partition.subj[row]],
            "predicate": partition.predicate,
            "r_id": self._rid_terms.terms[partition.rid[row]],
            "r_predicate": self._predicate_terms.terms[partition.rpred[row]],
            "object": partition.objs[row],
            "locale": self._locale_terms.terms[partition.loc[row]],
            "sources": [r.source_id for r in prov.references],
            "trust": [r.trust for r in prov.references],
        }

    def __iter__(self) -> Iterator[ExtendedTriple]:
        return iter([self._materialize(ref) for ref in self._by_key.values()])

    def __len__(self) -> int:
        return len(self._by_key)

    def __contains__(self, triple: object) -> bool:
        if not isinstance(triple, ExtendedTriple):
            return False
        key = self._key_ids(triple)
        return key is not None and key in self._by_key
