"""Columnar storage primitives backing the dictionary-interned TripleStore.

The extended-triples model (Section 2.1, Table 1 of the paper) is explicitly
relational, so the store lays facts out the way a relational engine would:

* :class:`TermDict` interns the string-ish columns (subjects, predicates,
  relationship ids, locales) to dense integer ids — every occurrence of a
  term costs one machine int, and id equality is term equality;
* :class:`ObjectDict` interns object values with Python ``dict`` equality
  semantics (``1 == 1.0 == True`` conflate), which is exactly how the legacy
  store's key-tuple dict compared them — fact identity is preserved
  bit-for-bit across the refactor;
* :class:`PredicatePartition` holds the rows of one predicate as parallel
  ``array('q')`` id columns plus a literal side-table with the row's actual
  object value (the value *as provided*, so ``repr`` output and serialized
  rows never change when dict-equal-but-distinct literals are interned).

Partitions also carry the store's per-row side state — provenance, the lazy
``repr(key)`` cache used by every sorted lookup, the lazily materialized
:class:`~repro.model.triples.ExtendedTriple` compatibility shims — and the
``(subject, predicate)`` composite index (``by_subject``), since a partition
already fixes the predicate.

Copy-on-write: a snapshot shares a partition's column chunks and indexes with
the original and marks both sides ``shared``; the first mutation on either
side copies its own view (:meth:`PredicatePartition.ensure_private`).  The
per-row ``prov``/``shims`` side state is never shared — provenance objects
are mutated in place by fusion retracts that bypass the store's mutators, so
deferring their copy would let one store's retraction corrupt the other.

Row references are packed ints: ``(partition id << ROW_BITS) | row index``.
"""

from __future__ import annotations

from array import array
from typing import Iterable

from repro.model.provenance import Provenance

#: Bits reserved for the row index inside a packed row reference.
ROW_BITS = 32
ROW_MASK = (1 << ROW_BITS) - 1


def pack_ref(pid: int, row: int) -> int:
    """Pack a (partition id, row index) pair into one int reference."""
    return (pid << ROW_BITS) | row


def unpack_ref(ref: int) -> tuple[int, int]:
    """Invert :func:`pack_ref`."""
    return ref >> ROW_BITS, ref & ROW_MASK


class TermDict:
    """Append-only interning dictionary from terms (str or None) to dense ids.

    Ids are never reused or remapped, so a :class:`TermDict` can be shared
    between a store and its snapshots forever: interning new terms on one
    side only appends entries the other side never references.
    """

    __slots__ = ("ids", "terms")

    def __init__(self) -> None:
        self.ids: dict[object, int] = {}
        self.terms: list[object] = []

    def intern(self, term: object) -> int:
        """Return the id of *term*, assigning the next dense id when new."""
        term_id = self.ids.get(term)
        if term_id is None:
            term_id = len(self.terms)
            self.ids[term] = term_id
            self.terms.append(term)
        return term_id

    def id_of(self, term: object) -> int | None:
        """The id of *term*, or ``None`` when it was never interned."""
        return self.ids.get(term)

    def __len__(self) -> int:
        return len(self.terms)


class ObjectDict(TermDict):
    """Interning dictionary for object values.

    Identical to :class:`TermDict` mechanically; the separate type documents
    the one semantic it must provide: equality is Python ``dict`` equality,
    so dict-equal values of different types (``1``, ``1.0``, ``True``) share
    one id — the same conflation the legacy store's key-tuple dict performed.
    Interning an unhashable value raises ``TypeError`` exactly where the
    legacy ``dict`` operations did.
    """

    __slots__ = ()


class PredicatePartition:
    """The rows of one predicate: parallel id columns plus side tables.

    ``subj``/``rid``/``rpred``/``obj_ids``/``loc`` are parallel ``array('q')``
    columns over the store's term dictionaries; ``objs`` is the literal
    side-table holding each row's object value as provided.  A dead row keeps
    its column slots (``prov[row] is None`` marks it) and its index goes on
    the free list for reuse; global iteration order lives in the store's
    insertion-ordered key dict, so slot reuse never disturbs it.
    """

    __slots__ = (
        "pid",
        "predicate",
        "subj",
        "rid",
        "rpred",
        "obj_ids",
        "loc",
        "objs",
        "prov",
        "reprs",
        "shims",
        "by_subject",
        "free",
        "live",
        "shared",
    )

    def __init__(self, pid: int, predicate: str) -> None:
        self.pid = pid
        self.predicate = predicate
        self.subj = array("q")
        self.rid = array("q")
        self.rpred = array("q")
        self.obj_ids = array("q")
        self.loc = array("q")
        self.objs: list[object] = []
        self.prov: list[Provenance | None] = []
        self.reprs: list[str | None] = []
        self.shims: list[object | None] = []
        self.by_subject: dict[int, set[int]] = {}
        self.free: list[int] = []
        self.live = 0
        self.shared = False

    # ------------------------------------------------------------------ #
    # copy-on-write
    # ------------------------------------------------------------------ #
    def cow_clone(self) -> "PredicatePartition":
        """A snapshot-side clone sharing column chunks with this partition.

        Columns, repr cache, composite index, and free list are shared until
        either side mutates (both get ``shared=True``); provenance is copied
        eagerly — fusion mutates ``Provenance`` objects in place through
        materialized triples, bypassing the store's mutators, so sharing them
        would corrupt the snapshot retroactively.  Shims start empty: a
        materialized triple must hand out its own store's provenance object.
        """
        clone = PredicatePartition(self.pid, self.predicate)
        clone.subj = self.subj
        clone.rid = self.rid
        clone.rpred = self.rpred
        clone.obj_ids = self.obj_ids
        clone.loc = self.loc
        clone.objs = self.objs
        clone.reprs = self.reprs
        clone.by_subject = self.by_subject
        clone.free = self.free
        clone.live = self.live
        clone.prov = [
            Provenance(list(p.references)) if p is not None else None for p in self.prov
        ]
        clone.shims = [None] * len(self.prov)
        clone.shared = True
        self.shared = True
        return clone

    def ensure_private(self) -> None:
        """Copy shared column chunks before the first post-snapshot mutation."""
        if not self.shared:
            return
        self.subj = array("q", self.subj)
        self.rid = array("q", self.rid)
        self.rpred = array("q", self.rpred)
        self.obj_ids = array("q", self.obj_ids)
        self.loc = array("q", self.loc)
        self.objs = list(self.objs)
        self.reprs = list(self.reprs)
        self.by_subject = {sid: set(rows) for sid, rows in self.by_subject.items()}
        self.free = list(self.free)
        self.shared = False

    # ------------------------------------------------------------------ #
    # row lifecycle
    # ------------------------------------------------------------------ #
    def alloc(
        self,
        sid: int,
        rid: int,
        rpred: int,
        oid: int,
        lid: int,
        obj: object,
        prov: Provenance,
    ) -> int:
        """Store one row (reusing a free slot when available); returns its index."""
        if self.free:
            row = self.free.pop()
            self.subj[row] = sid
            self.rid[row] = rid
            self.rpred[row] = rpred
            self.obj_ids[row] = oid
            self.loc[row] = lid
            self.objs[row] = obj
            self.prov[row] = prov
            self.reprs[row] = None
            self.shims[row] = None
        else:
            row = len(self.prov)
            self.subj.append(sid)
            self.rid.append(rid)
            self.rpred.append(rpred)
            self.obj_ids.append(oid)
            self.loc.append(lid)
            self.objs.append(obj)
            self.prov.append(prov)
            self.reprs.append(None)
            self.shims.append(None)
        rows = self.by_subject.get(sid)
        if rows is None:
            self.by_subject[sid] = {row}
        else:
            rows.add(row)
        self.live += 1
        return row

    def release(self, row: int) -> None:
        """Mark a row dead and recycle its slot."""
        sid = self.subj[row]
        rows = self.by_subject.get(sid)
        if rows is not None:
            rows.discard(row)
            if not rows:
                del self.by_subject[sid]
        self.prov[row] = None
        self.shims[row] = None
        self.reprs[row] = None
        self.objs[row] = None
        self.free.append(row)
        self.live -= 1

    def live_rows(self) -> Iterable[int]:
        """Indexes of the live rows (order unspecified)."""
        return (row for row, p in enumerate(self.prov) if p is not None)
