"""The in-house open-domain ontology (Section 2.1 / 2.2).

The ontology controls:

* which **entity types** exist, arranged in a subclass hierarchy
  (``music_artist`` is-a ``person`` is-a ``entity``);
* which **predicates** exist, their expected value kind (literal, entity
  reference, or composite relationship), cardinality, and the entity types
  they apply to;
* **ontological constraints** used by truth discovery and fact verification
  (e.g. functional predicates can hold a single value per entity).

Saga's ingestion pipelines align source schemas to this ontology, and the
matching / fusion stages consult it for domain-specific behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable

from repro.errors import OntologyError

ROOT_TYPE = "entity"


class ValueKind(str, Enum):
    """What a predicate's object is allowed to be."""

    LITERAL = "literal"
    REFERENCE = "reference"     # object is (or should resolve to) a KG entity
    COMPOSITE = "composite"     # object is a relationship node


class Cardinality(str, Enum):
    """How many values a predicate may hold per subject."""

    SINGLE = "single"
    MULTI = "multi"


@dataclass(frozen=True)
class EntityType:
    """An entity type in the ontology hierarchy."""

    name: str
    parent: str | None = ROOT_TYPE
    description: str = ""


@dataclass(frozen=True)
class PredicateSpec:
    """Schema information for one ontology predicate."""

    name: str
    value_kind: ValueKind = ValueKind.LITERAL
    cardinality: Cardinality = Cardinality.MULTI
    domain: tuple[str, ...] = ()          # entity types the predicate applies to ((): any)
    range_types: tuple[str, ...] = ()     # for REFERENCE predicates: allowed object types
    volatile: bool = False                # e.g. popularity: excluded from delta payloads
    description: str = ""

    @property
    def is_functional(self) -> bool:
        """True when at most one value is allowed per entity."""
        return self.cardinality is Cardinality.SINGLE


class Ontology:
    """Registry of entity types and predicates with hierarchy-aware lookups."""

    def __init__(self) -> None:
        self._types: dict[str, EntityType] = {ROOT_TYPE: EntityType(ROOT_TYPE, parent=None)}
        self._predicates: dict[str, PredicateSpec] = {}

    # -------------------------------------------------------------- #
    # registration
    # -------------------------------------------------------------- #
    def add_type(
        self, name: str, parent: str = ROOT_TYPE, description: str = ""
    ) -> EntityType:
        """Register an entity type under *parent*."""
        if not name:
            raise OntologyError("entity type name must be non-empty")
        if parent not in self._types:
            raise OntologyError(f"unknown parent type {parent!r} for {name!r}")
        entity_type = EntityType(name=name, parent=parent, description=description)
        self._types[name] = entity_type
        return entity_type

    def add_predicate(
        self,
        name: str,
        value_kind: ValueKind | str = ValueKind.LITERAL,
        cardinality: Cardinality | str = Cardinality.MULTI,
        domain: Iterable[str] = (),
        range_types: Iterable[str] = (),
        volatile: bool = False,
        description: str = "",
    ) -> PredicateSpec:
        """Register a predicate; referenced types must already exist."""
        if not name:
            raise OntologyError("predicate name must be non-empty")
        domain = tuple(domain)
        range_types = tuple(range_types)
        for type_name in (*domain, *range_types):
            if type_name not in self._types:
                raise OntologyError(
                    f"predicate {name!r} references unknown type {type_name!r}"
                )
        spec = PredicateSpec(
            name=name,
            value_kind=ValueKind(value_kind),
            cardinality=Cardinality(cardinality),
            domain=domain,
            range_types=range_types,
            volatile=volatile,
            description=description,
        )
        self._predicates[name] = spec
        return spec

    # -------------------------------------------------------------- #
    # lookups
    # -------------------------------------------------------------- #
    def has_type(self, name: str) -> bool:
        """Return whether *name* is a registered entity type."""
        return name in self._types

    def has_predicate(self, name: str) -> bool:
        """Return whether *name* is a registered predicate."""
        return name in self._predicates

    def type(self, name: str) -> EntityType:
        """Return the :class:`EntityType` called *name*."""
        try:
            return self._types[name]
        except KeyError:
            raise OntologyError(f"unknown entity type {name!r}") from None

    def predicate(self, name: str) -> PredicateSpec:
        """Return the :class:`PredicateSpec` called *name*."""
        try:
            return self._predicates[name]
        except KeyError:
            raise OntologyError(f"unknown predicate {name!r}") from None

    def types(self) -> list[str]:
        """All registered type names (including the root)."""
        return sorted(self._types)

    def predicates(self) -> list[str]:
        """All registered predicate names."""
        return sorted(self._predicates)

    def volatile_predicates(self) -> set[str]:
        """Predicates flagged volatile (popularity-style update churn)."""
        return {name for name, spec in self._predicates.items() if spec.volatile}

    def ancestors(self, type_name: str) -> list[str]:
        """Return the chain of ancestors of *type_name* up to the root."""
        chain: list[str] = []
        current = self.type(type_name)
        while current.parent is not None:
            chain.append(current.parent)
            current = self.type(current.parent)
        return chain

    def is_subtype(self, type_name: str, ancestor: str) -> bool:
        """Return whether *type_name* equals or descends from *ancestor*."""
        if type_name == ancestor:
            return True
        return ancestor in self.ancestors(type_name)

    def common_supertype(self, first: str, second: str) -> str:
        """Return the most specific common ancestor of two types."""
        first_chain = [first, *self.ancestors(first)]
        second_chain = set([second, *self.ancestors(second)])
        for candidate in first_chain:
            if candidate in second_chain:
                return candidate
        return ROOT_TYPE

    def predicates_for_type(self, type_name: str) -> list[PredicateSpec]:
        """Predicates whose domain includes *type_name* (or any type)."""
        specs = []
        for spec in self._predicates.values():
            if not spec.domain:
                specs.append(spec)
                continue
            if any(self.is_subtype(type_name, domain_type) for domain_type in spec.domain):
                specs.append(spec)
        return sorted(specs, key=lambda s: s.name)

    def compatible_types(self, first: str, second: str) -> bool:
        """True when entities of the two types may refer to the same thing.

        Used by linking: a ``movie`` never matches a ``person``, but a
        ``music_artist`` may match a ``person`` because one subsumes the other.
        """
        if not first or not second:
            return True
        if not self.has_type(first) or not self.has_type(second):
            return first == second
        return self.is_subtype(first, second) or self.is_subtype(second, first)

    # -------------------------------------------------------------- #
    # validation
    # -------------------------------------------------------------- #
    def validate_fact(
        self, entity_type: str, predicate: str, existing_value_count: int = 0
    ) -> list[str]:
        """Return a list of constraint violations for asserting a fact.

        An empty list means the fact is admissible.  Violations are advisory
        strings used by fusion and fact verification rather than hard errors,
        because real feeds routinely contain recoverable issues.
        """
        violations: list[str] = []
        if not self.has_predicate(predicate):
            violations.append(f"unknown predicate {predicate!r}")
            return violations
        spec = self.predicate(predicate)
        if spec.domain and entity_type:
            if self.has_type(entity_type):
                if not any(self.is_subtype(entity_type, d) for d in spec.domain):
                    violations.append(
                        f"predicate {predicate!r} does not apply to type {entity_type!r}"
                    )
            else:
                violations.append(f"unknown entity type {entity_type!r}")
        if spec.is_functional and existing_value_count >= 1:
            violations.append(
                f"functional predicate {predicate!r} already has a value"
            )
        return violations

    def copy(self) -> "Ontology":
        """Return an independent copy of the ontology."""
        clone = Ontology()
        clone._types = dict(self._types)
        clone._predicates = dict(self._predicates)
        return clone


def default_ontology() -> Ontology:
    """Build the open-domain ontology used by examples, tests, and benches.

    Covers the verticals the paper motivates: people, music (artists, albums,
    songs, playlists), movies, organizations, places, plus live-graph types
    (sports games/teams, stocks, flights).
    """
    onto = Ontology()

    # --- entity type hierarchy -------------------------------------- #
    onto.add_type("person")
    onto.add_type("music_artist", parent="person")
    onto.add_type("actor", parent="person")
    onto.add_type("athlete", parent="person")
    onto.add_type("creative_work")
    onto.add_type("song", parent="creative_work")
    onto.add_type("album", parent="creative_work")
    onto.add_type("playlist", parent="creative_work")
    onto.add_type("movie", parent="creative_work")
    onto.add_type("organization")
    onto.add_type("school", parent="organization")
    onto.add_type("record_label", parent="organization")
    onto.add_type("sports_team", parent="organization")
    onto.add_type("company", parent="organization")
    onto.add_type("place")
    onto.add_type("city", parent="place")
    onto.add_type("country", parent="place")
    onto.add_type("stadium", parent="place")
    onto.add_type("event")
    onto.add_type("sports_game", parent="event")
    onto.add_type("flight", parent="event")
    onto.add_type("financial_instrument")
    onto.add_type("stock", parent="financial_instrument")

    # --- common predicates ------------------------------------------ #
    onto.add_predicate("name", ValueKind.LITERAL, Cardinality.MULTI)
    onto.add_predicate("alias", ValueKind.LITERAL, Cardinality.MULTI)
    onto.add_predicate("description", ValueKind.LITERAL, Cardinality.SINGLE)
    onto.add_predicate("type", ValueKind.LITERAL, Cardinality.MULTI)
    onto.add_predicate("same_as", ValueKind.LITERAL, Cardinality.MULTI)
    onto.add_predicate("popularity", ValueKind.LITERAL, Cardinality.SINGLE, volatile=True)
    onto.add_predicate("image_url", ValueKind.LITERAL, Cardinality.MULTI)

    # --- person ------------------------------------------------------ #
    onto.add_predicate("birth_date", ValueKind.LITERAL, Cardinality.SINGLE, domain=("person",))
    onto.add_predicate("death_date", ValueKind.LITERAL, Cardinality.SINGLE, domain=("person",))
    onto.add_predicate(
        "birth_place", ValueKind.REFERENCE, Cardinality.SINGLE,
        domain=("person",), range_types=("place",),
    )
    onto.add_predicate("occupation", ValueKind.LITERAL, Cardinality.MULTI, domain=("person",))
    onto.add_predicate(
        "spouse", ValueKind.REFERENCE, Cardinality.MULTI,
        domain=("person",), range_types=("person",),
    )
    onto.add_predicate(
        "educated_at", ValueKind.COMPOSITE, Cardinality.MULTI, domain=("person",),
    )

    # --- music -------------------------------------------------------- #
    onto.add_predicate(
        "performed_by", ValueKind.REFERENCE, Cardinality.MULTI,
        domain=("song", "album"), range_types=("music_artist",),
    )
    onto.add_predicate(
        "part_of_album", ValueKind.REFERENCE, Cardinality.MULTI,
        domain=("song",), range_types=("album",),
    )
    onto.add_predicate(
        "record_label", ValueKind.REFERENCE, Cardinality.MULTI,
        domain=("music_artist", "album"), range_types=("record_label",),
    )
    onto.add_predicate("genre", ValueKind.LITERAL, Cardinality.MULTI)
    onto.add_predicate("release_date", ValueKind.LITERAL, Cardinality.SINGLE,
                       domain=("creative_work",))
    onto.add_predicate("duration_seconds", ValueKind.LITERAL, Cardinality.SINGLE,
                       domain=("song",))
    onto.add_predicate(
        "track", ValueKind.REFERENCE, Cardinality.MULTI,
        domain=("playlist", "album"), range_types=("song",),
    )

    # --- movies -------------------------------------------------------- #
    onto.add_predicate(
        "directed_by", ValueKind.REFERENCE, Cardinality.MULTI,
        domain=("movie",), range_types=("person",),
    )
    onto.add_predicate(
        "cast_member", ValueKind.COMPOSITE, Cardinality.MULTI, domain=("movie",),
    )
    onto.add_predicate("full_title", ValueKind.LITERAL, Cardinality.SINGLE,
                       domain=("creative_work",))

    # --- organizations / places ---------------------------------------- #
    onto.add_predicate(
        "headquarters", ValueKind.REFERENCE, Cardinality.SINGLE,
        domain=("organization",), range_types=("place",),
    )
    onto.add_predicate(
        "located_in", ValueKind.REFERENCE, Cardinality.SINGLE,
        domain=("place", "organization"), range_types=("place",),
    )
    onto.add_predicate(
        "capital", ValueKind.REFERENCE, Cardinality.SINGLE,
        domain=("country",), range_types=("city",),
    )
    onto.add_predicate(
        "mayor", ValueKind.REFERENCE, Cardinality.SINGLE,
        domain=("city",), range_types=("person",),
    )
    onto.add_predicate(
        "head_of_state", ValueKind.REFERENCE, Cardinality.SINGLE,
        domain=("country",), range_types=("person",),
    )
    onto.add_predicate("population", ValueKind.LITERAL, Cardinality.SINGLE,
                       domain=("place",), volatile=True)

    # --- live graph types ----------------------------------------------- #
    onto.add_predicate(
        "home_team", ValueKind.REFERENCE, Cardinality.SINGLE,
        domain=("sports_game",), range_types=("sports_team",),
    )
    onto.add_predicate(
        "away_team", ValueKind.REFERENCE, Cardinality.SINGLE,
        domain=("sports_game",), range_types=("sports_team",),
    )
    onto.add_predicate(
        "venue", ValueKind.REFERENCE, Cardinality.SINGLE,
        domain=("sports_game",), range_types=("stadium",),
    )
    onto.add_predicate("home_score", ValueKind.LITERAL, Cardinality.SINGLE,
                       domain=("sports_game",), volatile=True)
    onto.add_predicate("away_score", ValueKind.LITERAL, Cardinality.SINGLE,
                       domain=("sports_game",), volatile=True)
    onto.add_predicate("game_status", ValueKind.LITERAL, Cardinality.SINGLE,
                       domain=("sports_game",), volatile=True)
    onto.add_predicate("ticker", ValueKind.LITERAL, Cardinality.SINGLE, domain=("stock",))
    onto.add_predicate("stock_price", ValueKind.LITERAL, Cardinality.SINGLE,
                       domain=("stock",), volatile=True)
    onto.add_predicate("flight_number", ValueKind.LITERAL, Cardinality.SINGLE,
                       domain=("flight",))
    onto.add_predicate("flight_status", ValueKind.LITERAL, Cardinality.SINGLE,
                       domain=("flight",), volatile=True)
    onto.add_predicate(
        "departure_airport", ValueKind.REFERENCE, Cardinality.SINGLE,
        domain=("flight",), range_types=("place",),
    )
    onto.add_predicate(
        "arrival_airport", ValueKind.REFERENCE, Cardinality.SINGLE,
        domain=("flight",), range_types=("place",),
    )
    onto.add_predicate(
        "plays_for", ValueKind.REFERENCE, Cardinality.MULTI,
        domain=("athlete",), range_types=("sports_team",),
    )
    return onto
