"""Core data model: extended triples, entities, ontology, provenance, deltas."""

from repro.model.delta import SourceDelta, compute_delta
from repro.model.entity import (
    KGEntity,
    RelationshipNode,
    SourceEntity,
    materialize_entities,
)
from repro.model.identifiers import (
    IdGenerator,
    content_hash,
    is_kg_identifier,
    qualify,
    relationship_id,
    split_identifier,
)
from repro.model.ontology import (
    Cardinality,
    EntityType,
    Ontology,
    PredicateSpec,
    ValueKind,
    default_ontology,
)
from repro.model.provenance import Provenance, SourceReference
from repro.model.triples import ExtendedTriple, TripleStore

__all__ = [
    "Cardinality",
    "EntityType",
    "ExtendedTriple",
    "IdGenerator",
    "KGEntity",
    "Ontology",
    "PredicateSpec",
    "Provenance",
    "RelationshipNode",
    "SourceDelta",
    "SourceEntity",
    "SourceReference",
    "TripleStore",
    "ValueKind",
    "compute_delta",
    "content_hash",
    "default_ontology",
    "is_kg_identifier",
    "materialize_entities",
    "qualify",
    "relationship_id",
    "split_identifier",
]
