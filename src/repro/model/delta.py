"""Source delta payloads (Section 2.4).

Source ingestion eagerly computes, for every new upstream snapshot, the
difference with respect to the snapshot last consumed by knowledge
construction.  The difference is materialized as four partitions:

* ``added``   — entities present now but not at the last consumption;
* ``deleted`` — entities present at the last consumption but not now;
* ``updated`` — entities present in both whose non-volatile payload changed;
* ``volatile`` — a *full* dump of the volatile predicates (popularity-style
  churn) of all current entities, kept out of the other partitions so that
  high-frequency updates do not force relinking.

Knowledge construction always consumes :class:`SourceDelta` objects; a brand
new source is represented as a delta with a full ``added`` payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.model.entity import SourceEntity


@dataclass
class SourceDelta:
    """Partitioned change payload for one source between two timestamps."""

    source_id: str
    added: list[SourceEntity] = field(default_factory=list)
    deleted: list[SourceEntity] = field(default_factory=list)
    updated: list[SourceEntity] = field(default_factory=list)
    volatile: list[SourceEntity] = field(default_factory=list)
    from_timestamp: int = 0
    to_timestamp: int = 0

    @classmethod
    def initial(
        cls,
        source_id: str,
        entities: Sequence[SourceEntity],
        volatile: Sequence[SourceEntity] = (),
        timestamp: int = 0,
    ) -> "SourceDelta":
        """Delta representing the very first consumption of a source."""
        return cls(
            source_id=source_id,
            added=list(entities),
            volatile=list(volatile),
            from_timestamp=timestamp,
            to_timestamp=timestamp,
        )

    def is_empty(self) -> bool:
        """True when there is nothing for construction to do."""
        return not (self.added or self.deleted or self.updated or self.volatile)

    def change_count(self) -> int:
        """Number of entities in the non-volatile partitions."""
        return len(self.added) + len(self.deleted) + len(self.updated)

    def touched_entity_ids(self) -> set[str]:
        """Source-namespace identifiers of every touched entity."""
        touched = set()
        for partition in (self.added, self.deleted, self.updated, self.volatile):
            touched.update(entity.entity_id for entity in partition)
        return touched

    def summary(self) -> dict[str, int]:
        """Per-partition entity counts, useful for logging and tests."""
        return {
            "added": len(self.added),
            "deleted": len(self.deleted),
            "updated": len(self.updated),
            "volatile": len(self.volatile),
        }


def compute_delta(
    source_id: str,
    previous: Iterable[SourceEntity],
    current: Iterable[SourceEntity],
    volatile_predicates: Iterable[str] = (),
    from_timestamp: int = 0,
    to_timestamp: int = 1,
) -> SourceDelta:
    """Diff two snapshots of a source into a :class:`SourceDelta`.

    ``volatile_predicates`` are excluded from the change comparison and routed
    to the ``volatile`` partition as a full dump of the current snapshot, per
    Section 2.4 of the paper.
    """
    volatile_set = set(volatile_predicates)
    previous_by_id = {entity.entity_id: entity for entity in previous}
    current_by_id = {entity.entity_id: entity for entity in current}

    delta = SourceDelta(
        source_id=source_id,
        from_timestamp=from_timestamp,
        to_timestamp=to_timestamp,
    )

    for entity_id, entity in current_by_id.items():
        stable_entity = _strip_volatile(entity, volatile_set)
        if entity_id not in previous_by_id:
            delta.added.append(stable_entity)
        else:
            previous_stable = _strip_volatile(previous_by_id[entity_id], volatile_set)
            if stable_entity.fingerprint() != previous_stable.fingerprint():
                delta.updated.append(stable_entity)
        volatile_entity = _only_volatile(entity, volatile_set)
        if volatile_entity is not None:
            delta.volatile.append(volatile_entity)

    for entity_id, entity in previous_by_id.items():
        if entity_id not in current_by_id:
            delta.deleted.append(_strip_volatile(entity, volatile_set))

    return delta


def _strip_volatile(entity: SourceEntity, volatile: set[str]) -> SourceEntity:
    clone = entity.copy()
    if volatile:
        clone.properties = {
            k: v for k, v in clone.properties.items() if k not in volatile
        }
    return clone


def _only_volatile(entity: SourceEntity, volatile: set[str]) -> SourceEntity | None:
    if not volatile:
        return None
    kept = {k: v for k, v in entity.properties.items() if k in volatile}
    if not kept:
        return None
    clone = entity.copy()
    clone.properties = kept
    return clone
