"""Identifier management for the knowledge graph.

Saga keeps two identifier namespaces apart:

* **source namespace** — whatever identifiers an upstream provider uses
  (``musicdb:artist/42``).  These survive the ingestion pipeline untouched so
  that incremental construction can re-identify previously seen records.
* **KG namespace** — canonical entity identifiers minted by knowledge
  construction (``kg:e000001``).  ``same_as`` facts record the mapping from
  source identifiers to KG identifiers (Section 2.3 of the paper).

This module provides small helpers for creating, parsing, and validating both
kinds of identifiers deterministically.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field

from repro.errors import DataModelError

KG_NAMESPACE = "kg"
RELATIONSHIP_NAMESPACE = "rel"


def qualify(namespace: str, local_id: str) -> str:
    """Return ``namespace:local_id``.

    >>> qualify("musicdb", "artist/42")
    'musicdb:artist/42'
    """
    if not namespace or not local_id:
        raise DataModelError("namespace and local id must be non-empty")
    return f"{namespace}:{local_id}"


def split_identifier(identifier: str) -> tuple[str, str]:
    """Split ``namespace:local_id`` into its two components."""
    namespace, sep, local_id = identifier.partition(":")
    if not sep or not namespace or not local_id:
        raise DataModelError(f"malformed identifier: {identifier!r}")
    return namespace, local_id


def is_kg_identifier(identifier: str) -> bool:
    """Return ``True`` when *identifier* lives in the canonical KG namespace."""
    return identifier.startswith(KG_NAMESPACE + ":")


def content_hash(*parts: str) -> str:
    """Return a short, stable hash of the given parts.

    Used to derive deterministic identifiers for relationship nodes and staged
    payloads so that re-running a pipeline on identical input produces
    identical artifacts.
    """
    digest = hashlib.sha1("\x1f".join(parts).encode("utf-8")).hexdigest()
    return digest[:16]


@dataclass
class IdGenerator:
    """Mint sequential identifiers in a namespace.

    The generator is deterministic: a fresh generator started from the same
    ``start`` value produces the same sequence, which keeps construction runs
    reproducible in tests and benchmarks.
    """

    namespace: str = KG_NAMESPACE
    prefix: str = "e"
    width: int = 8
    start: int = 1
    _counter: itertools.count = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._counter = itertools.count(self.start)

    def next_id(self) -> str:
        """Return the next identifier, e.g. ``kg:e00000001``."""
        value = next(self._counter)
        return qualify(self.namespace, f"{self.prefix}{value:0{self.width}d}")

    def peek_count(self) -> int:
        """Return how many identifiers have been minted so far."""
        probe = next(self._counter)
        # Rewind by building a fresh counter; itertools.count cannot step back.
        self._counter = itertools.count(probe)
        return probe - self.start


def relationship_id(subject: str, predicate: str, discriminator: str = "") -> str:
    """Return a deterministic identifier for a composite relationship node.

    Relationship nodes (the ``education`` node in Figure 2 of the paper) have
    no upstream identity of their own, so we derive one from the subject, the
    predicate, and a discriminator (usually a hash of the relationship's own
    facts).
    """
    return qualify(
        RELATIONSHIP_NAMESPACE, content_hash(subject, predicate, discriminator)
    )
