"""Entity-centric views over extended triples.

Two representations are used throughout the platform:

* :class:`SourceEntity` — one row of the entity-centric view produced by the
  ingestion *Entity Transform* stage (Section 2.2): an identifier in the
  source namespace plus a mapping of predicates to values, still expressed in
  (or aligned to) the KG ontology but not yet linked to KG identifiers.
* :class:`KGEntity` — the canonical entity assembled from the triple store:
  an identifier in the KG namespace plus simple facts, composite relationship
  nodes, names/aliases, and types.

Both are plain data holders; all integration logic lives in the ingestion and
construction packages.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import DataModelError
from repro.model.identifiers import relationship_id
from repro.model.provenance import DEFAULT_LOCALE, Provenance
from repro.model.triples import ExtendedTriple, TripleStore

NAME_PREDICATES = ("name", "alias", "title", "full_title")
TYPE_PREDICATE = "type"
SAME_AS_PREDICATE = "same_as"


@dataclass
class SourceEntity:
    """An entity-centric record in a source namespace.

    ``properties`` maps predicate names to either a scalar value, a list of
    scalar values (multi-valued predicates), or — for composite relationships —
    a list of dictionaries, each dictionary describing one relationship node.
    """

    entity_id: str
    entity_type: str = ""
    properties: dict[str, object] = field(default_factory=dict)
    source_id: str = ""
    trust: float = 0.5
    locale: str = DEFAULT_LOCALE

    def __post_init__(self) -> None:
        if not self.entity_id:
            raise DataModelError("source entity id must be non-empty")

    # -------------------------------------------------------------- #
    # property access
    # -------------------------------------------------------------- #
    def get(self, predicate: str, default: object = None) -> object:
        """Return the raw value of *predicate* (scalar, list, or dicts)."""
        return self.properties.get(predicate, default)

    def values(self, predicate: str) -> list[object]:
        """Return the value(s) of *predicate* as a flat list of scalars."""
        value = self.properties.get(predicate)
        if value is None:
            return []
        if isinstance(value, (list, tuple)):
            return [v for v in value if not isinstance(v, Mapping)]
        if isinstance(value, Mapping):
            return []
        return [value]

    def relationships(self, predicate: str) -> list[dict]:
        """Return composite relationship nodes stored under *predicate*."""
        value = self.properties.get(predicate)
        if isinstance(value, Mapping):
            return [dict(value)]
        if isinstance(value, (list, tuple)):
            return [dict(v) for v in value if isinstance(v, Mapping)]
        return []

    def names(self) -> list[str]:
        """Return every name-like string attached to the entity."""
        found: list[str] = []
        for predicate in NAME_PREDICATES:
            found.extend(str(v) for v in self.values(predicate))
        return found

    def primary_name(self) -> str:
        """Return the best display name, falling back to the identifier."""
        names = self.names()
        return names[0] if names else self.entity_id

    # -------------------------------------------------------------- #
    # conversion to extended triples
    # -------------------------------------------------------------- #
    def to_triples(self) -> list[ExtendedTriple]:
        """Flatten the entity into extended triples (Export stage, §2.2)."""
        triples: list[ExtendedTriple] = []
        provenance = Provenance.from_source(self.source_id or "unknown", self.trust)
        if self.entity_type:
            triples.append(
                ExtendedTriple(
                    subject=self.entity_id,
                    predicate=TYPE_PREDICATE,
                    obj=self.entity_type,
                    locale=self.locale,
                    provenance=provenance.copy(),
                )
            )
        for predicate in sorted(self.properties):
            for value in self.values(predicate):
                triples.append(
                    ExtendedTriple(
                        subject=self.entity_id,
                        predicate=predicate,
                        obj=value,
                        locale=self.locale,
                        provenance=provenance.copy(),
                    )
                )
            for index, node in enumerate(self.relationships(predicate)):
                discriminator = "|".join(
                    f"{k}={node[k]}" for k in sorted(node)
                ) or str(index)
                rel_id = relationship_id(self.entity_id, predicate, discriminator)
                for rel_predicate in sorted(node):
                    triples.append(
                        ExtendedTriple(
                            subject=self.entity_id,
                            predicate=predicate,
                            obj=node[rel_predicate],
                            relationship_id=rel_id,
                            relationship_predicate=rel_predicate,
                            locale=self.locale,
                            provenance=provenance.copy(),
                        )
                    )
        return triples

    def copy(self) -> "SourceEntity":
        """Return an independent copy."""
        return SourceEntity(
            entity_id=self.entity_id,
            entity_type=self.entity_type,
            properties={k: _copy_value(v) for k, v in self.properties.items()},
            source_id=self.source_id,
            trust=self.trust,
            locale=self.locale,
        )

    def fingerprint(self) -> tuple:
        """A hashable content fingerprint used for delta computation."""
        return (
            self.entity_id,
            self.entity_type,
            _freeze(self.properties),
        )


def _copy_value(value: object) -> object:
    if isinstance(value, Mapping):
        return dict(value)
    if isinstance(value, list):
        return [_copy_value(v) for v in value]
    return value


def _freeze(value: object) -> object:
    """Recursively convert a property value to a hashable structure."""
    if isinstance(value, Mapping):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


@dataclass
class RelationshipNode:
    """A composite relationship node attached to a KG entity."""

    relationship_id: str
    predicate: str
    facts: dict[str, object] = field(default_factory=dict)

    def overlap(self, other: "RelationshipNode") -> float:
        """Fraction of shared (predicate, value) pairs between two nodes.

        Fusion (Section 2.3) merges relationship nodes whose underlying facts
        have sufficient intersection.
        """
        mine = {(k, v) for k, v in self.facts.items()}
        theirs = {(k, v) for k, v in other.facts.items()}
        if not mine or not theirs:
            return 0.0
        return len(mine & theirs) / min(len(mine), len(theirs))


@dataclass
class KGEntity:
    """A canonical KG entity materialized from the triple store."""

    entity_id: str
    types: list[str] = field(default_factory=list)
    names: list[str] = field(default_factory=list)
    facts: dict[str, list[object]] = field(default_factory=dict)
    relationships: dict[str, list[RelationshipNode]] = field(default_factory=dict)
    same_as: list[str] = field(default_factory=list)

    @property
    def primary_name(self) -> str:
        """Best display name, falling back to the identifier."""
        return self.names[0] if self.names else self.entity_id

    def value(self, predicate: str) -> object | None:
        """Return one value for *predicate*, or ``None``."""
        values = self.facts.get(predicate)
        return values[0] if values else None

    def degree(self) -> int:
        """Number of simple facts plus relationship nodes (out-degree proxy)."""
        simple = sum(len(v) for v in self.facts.values())
        composite = sum(len(v) for v in self.relationships.values())
        return simple + composite

    @classmethod
    def from_triples(cls, entity_id: str, triples: Iterable[ExtendedTriple]) -> "KGEntity":
        """Assemble an entity from the triples having it as subject."""
        entity = cls(entity_id=entity_id)
        nodes: dict[tuple[str, str], RelationshipNode] = {}
        names_by_predicate: dict[str, list[str]] = defaultdict(list)
        for triple in triples:
            if triple.subject != entity_id:
                continue
            if triple.is_composite:
                key = (triple.predicate, triple.relationship_id)
                node = nodes.get(key)
                if node is None:
                    node = RelationshipNode(triple.relationship_id, triple.predicate)
                    nodes[key] = node
                node.facts[triple.relationship_predicate] = triple.obj
                continue
            if triple.predicate == TYPE_PREDICATE:
                if triple.obj not in entity.types:
                    entity.types.append(str(triple.obj))
            elif triple.predicate == SAME_AS_PREDICATE:
                if triple.obj not in entity.same_as:
                    entity.same_as.append(str(triple.obj))
            else:
                entity.facts.setdefault(triple.predicate, [])
                if triple.obj not in entity.facts[triple.predicate]:
                    entity.facts[triple.predicate].append(triple.obj)
                if triple.predicate in NAME_PREDICATES:
                    name = str(triple.obj)
                    if name not in names_by_predicate[triple.predicate]:
                        names_by_predicate[triple.predicate].append(name)
        # Order display names by predicate priority: a proper "name" beats an
        # alias regardless of the order facts were stored in.
        for predicate in NAME_PREDICATES:
            for name in names_by_predicate.get(predicate, []):
                if name not in entity.names:
                    entity.names.append(name)
        grouped: dict[str, list[RelationshipNode]] = defaultdict(list)
        for (predicate, _), node in sorted(nodes.items()):
            grouped[predicate].append(node)
        entity.relationships = dict(grouped)
        return entity


def materialize_entities(store: TripleStore) -> dict[str, KGEntity]:
    """Materialize every entity in *store* keyed by identifier.

    Subjects are enumerated in sorted order so a KG view materialized from
    equal store contents is byte-identical regardless of the store's insertion
    history (or the process's hash seed) — the property the parallel
    construction scheduler's plan validation relies on, and what makes
    construction runs reproducible run-to-run.
    """
    if hasattr(store, "iter_subject_groups"):
        # Columnar fast path: one pass over the subject index yields each
        # group already in facts_about order, skipping the per-subject lookups.
        return {
            subject: KGEntity.from_triples(subject, facts)
            for subject, facts in store.iter_subject_groups()
        }
    return {
        subject: KGEntity.from_triples(subject, store.facts_about(subject))
        for subject in sorted(store.subjects())
    }
