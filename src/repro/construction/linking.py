"""Linking: in-source deduplication plus subject linking (Section 2.3).

The :class:`Linker` runs the full record-linkage pipeline for a payload of
ontology-aligned source entities against a KG view of the relevant entity
types:

1. group the combined payload by entity type;
2. block, generate candidate pairs, and score them with the type's matcher;
3. build the signed linkage graph and run correlation clustering;
4. assign every source record the identifier of the KG entity in its cluster,
   or mint a new KG identifier when the cluster has none;
5. emit ``same_as`` links recording the provenance of the linking decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from repro.construction.blocking import Blocker, BlockingConfig, BlockingStage
from repro.construction.clustering import (
    ClusteringConfig,
    ClusteringStage,
    EntityCluster,
)
from repro.construction.matching import (
    MatcherRegistry,
    MatchingStage,
    RuleBasedMatcher,
    default_features,
)
from repro.construction.pairs import PairGenerationConfig, PairGenerationStage, PairGenerator
from repro.construction.records import LinkableRecord, records_by_type
from repro.construction.stages import StageContext, StagePipeline
from repro.model.entity import KGEntity, SourceEntity
from repro.model.identifiers import IdGenerator
from repro.model.ontology import Ontology


@dataclass
class LinkingConfig:
    """Configuration for one linking run."""

    blocking: BlockingConfig = field(default_factory=BlockingConfig)
    pair_generation: PairGenerationConfig = field(default_factory=PairGenerationConfig)
    clustering: ClusteringConfig = field(default_factory=ClusteringConfig)


@dataclass
class TypeLinkPlan:
    """The deferred linking outcome of one entity type's pre-fusion stages.

    A plan carries the correlation clusters of one per-type pipeline run —
    *without* KG identifiers assigned to clusters lacking a KG record.
    Identifier assignment is deferred to :meth:`Linker.assign`, which runs on
    the serialized side of the fusion barrier so parallel preparation mints
    exactly the identifiers (in exactly the order) a sequential run would.
    """

    entity_type: str
    clusters: list[EntityCluster] = field(default_factory=list)
    candidate_pair_count: int = 0
    scored_pair_count: int = 0
    stage_seconds: dict[str, float] = field(default_factory=dict)


@dataclass
class LinkingResult:
    """Outcome of linking one payload of source entities."""

    assignments: dict[str, str] = field(default_factory=dict)  # source id -> KG id
    new_entities: set[str] = field(default_factory=set)        # newly minted KG ids
    clusters: list[EntityCluster] = field(default_factory=list)
    scored_pair_count: int = 0
    candidate_pair_count: int = 0

    def kg_id_for(self, source_entity_id: str) -> str | None:
        """KG identifier assigned to a source record, or ``None``."""
        return self.assignments.get(source_entity_id)

    def same_as_links(self) -> list[tuple[str, str]]:
        """``(kg_id, source_entity_id)`` pairs recording linking provenance."""
        return [(kg_id, source_id) for source_id, kg_id in sorted(self.assignments.items())]

    def merge(self, other: "LinkingResult") -> "LinkingResult":
        """Combine results from independently linked payloads."""
        merged = LinkingResult(
            assignments={**self.assignments, **other.assignments},
            new_entities=self.new_entities | other.new_entities,
            clusters=[*self.clusters, *other.clusters],
            scored_pair_count=self.scored_pair_count + other.scored_pair_count,
            candidate_pair_count=self.candidate_pair_count + other.candidate_pair_count,
        )
        return merged


class Linker:
    """Full record-linkage pipeline over a combined source + KG-view payload."""

    def __init__(
        self,
        ontology: Ontology,
        matchers: MatcherRegistry | None = None,
        id_generator: IdGenerator | None = None,
        config: LinkingConfig | None = None,
    ) -> None:
        self.ontology = ontology
        if matchers is None:
            matchers = MatcherRegistry(default=RuleBasedMatcher(default_features(ontology)))
        self.matchers = matchers
        self.id_generator = id_generator or IdGenerator()
        self.config = config or LinkingConfig()
        # The linker scopes each blocking run to one source entity type plus
        # the compatible KG-view records, so type partitioning inside the
        # blocker would only prevent legitimate cross-type links (e.g. a
        # source "person" matching a KG "music_artist").
        blocking_config = replace(self.config.blocking, partition_by_type=False)
        self._blocker = Blocker(blocking_config)
        # Same reasoning for pair generation: the per-type scoping already
        # guarantees ontology-compatible pairs, and the exact-equality type
        # check would reject person/music_artist pairs.
        pair_config = replace(self.config.pair_generation, require_compatible_types=False)
        self._pair_generator = PairGenerator(pair_config)
        # The pre-fusion stage chain every per-type run flows through.  All
        # four stages are pure with respect to shared state, which is what
        # lets plan() run concurrently across partitions.
        self.stages = StagePipeline((
            BlockingStage(self._blocker),
            PairGenerationStage(self._pair_generator),
            MatchingStage(self.matchers),
            ClusteringStage(self.config.clustering),
        ))

    def link(
        self,
        source_entities: Sequence[SourceEntity],
        kg_view: Sequence[KGEntity] = (),
    ) -> LinkingResult:
        """Link *source_entities* against the KG view.

        The payload is processed per entity type, mirroring the per-type
        pipelines (artist, song, album, ...) described in the paper.
        Equivalent to :meth:`plan` followed by :meth:`assign`.
        """
        return self.assign(self.plan(source_entities, kg_view))

    def plan(
        self,
        source_entities: Sequence[SourceEntity],
        kg_view: Sequence[KGEntity] = (),
    ) -> list[TypeLinkPlan]:
        """Run the pre-fusion stages (blocking → clustering) for a payload.

        Returns one :class:`TypeLinkPlan` per entity type present in the
        payload, in sorted type order (the order :meth:`assign` must consume
        them in).  Planning reads the KG view but mutates nothing and mints no
        identifiers, so independent payload partitions may be planned
        concurrently.
        """
        source_records = [LinkableRecord.from_source_entity(e) for e in source_entities]
        kg_records = [LinkableRecord.from_kg_entity(e) for e in kg_view]
        source_by_type = records_by_type(source_records)
        kg_by_type = records_by_type(kg_records)
        return [
            self.plan_type(entity_type, records, self.relevant_kg_records(entity_type, kg_by_type))
            for entity_type, records in sorted(source_by_type.items())
        ]

    def plan_type(
        self,
        entity_type: str,
        source_records: list[LinkableRecord],
        kg_records: list[LinkableRecord],
    ) -> TypeLinkPlan:
        """Run one entity type's pre-fusion stage chain into a plan."""
        context = StageContext(
            entity_type=entity_type,
            source_records=source_records,
            kg_records=kg_records,
        )
        self.stages.run(context)
        return TypeLinkPlan(
            entity_type=entity_type,
            clusters=context.clusters or [],
            candidate_pair_count=len(context.pairs or []),
            scored_pair_count=len(context.scored or []),
            stage_seconds=dict(context.stage_seconds),
        )

    def assign(self, plans: Iterable[TypeLinkPlan]) -> LinkingResult:
        """Assign KG identifiers to planned clusters (the serialized half).

        Every cluster containing source records is resolved to its KG record's
        identifier, or — when the cluster has none — to a freshly minted one.
        Minting follows plan order (sorted entity type, then cluster order),
        which is byte-identical to the sequential :meth:`link` path; callers
        running plans from parallel preparation must therefore feed them back
        in sorted type order.
        """
        result = LinkingResult()
        for plan in plans:
            partial = LinkingResult(
                clusters=list(plan.clusters),
                scored_pair_count=plan.scored_pair_count,
                candidate_pair_count=plan.candidate_pair_count,
            )
            for cluster in plan.clusters:
                source_members = cluster.source_records
                if not source_members:
                    continue
                if cluster.kg_record is not None:
                    kg_id = cluster.kg_record.record_id
                else:
                    kg_id = self.id_generator.next_id()
                    partial.new_entities.add(kg_id)
                for record in source_members:
                    partial.assignments[record.record_id] = kg_id
            result = result.merge(partial)
        return result

    # -------------------------------------------------------------- #
    # internals
    # -------------------------------------------------------------- #
    def relevant_kg_records(
        self, entity_type: str, kg_by_type: dict[str, list[LinkableRecord]]
    ) -> list[LinkableRecord]:
        if not entity_type:
            # Untyped payloads are compared against the full view.
            return [record for records in kg_by_type.values() for record in records]
        relevant = list(kg_by_type.get(entity_type, []))
        # Include KG records of compatible (sub/super) types, e.g. a source
        # "person" may match a KG "music_artist".
        for kg_type, records in kg_by_type.items():
            if kg_type == entity_type:
                continue
            if self.ontology.has_type(kg_type) and self.ontology.has_type(entity_type):
                if self.ontology.compatible_types(kg_type, entity_type):
                    relevant.extend(records)
        return relevant

def evaluate_linking(
    result: LinkingResult,
    truth_map: dict[str, str],
) -> dict[str, float]:
    """Pairwise precision / recall of a linking result against ground truth.

    ``truth_map`` maps source entity ids to ground-truth identifiers.  Two
    source records are a true pair when they share a ground-truth id; they are
    a predicted pair when the linker assigned them the same KG id.
    """
    ids = sorted(set(truth_map) & set(result.assignments))
    true_pairs = set()
    predicted_pairs = set()
    for i in range(len(ids)):
        for j in range(i + 1, len(ids)):
            a, b = ids[i], ids[j]
            if truth_map[a] == truth_map[b]:
                true_pairs.add((a, b))
            if result.assignments[a] == result.assignments[b]:
                predicted_pairs.add((a, b))
    if not predicted_pairs and not true_pairs:
        return {"precision": 1.0, "recall": 1.0, "f1": 1.0}
    true_positive = len(true_pairs & predicted_pairs)
    precision = true_positive / len(predicted_pairs) if predicted_pairs else 0.0
    recall = true_positive / len(true_pairs) if true_pairs else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return {"precision": precision, "recall": recall, "f1": f1}
