"""Linking: in-source deduplication plus subject linking (Section 2.3).

The :class:`Linker` runs the full record-linkage pipeline for a payload of
ontology-aligned source entities against a KG view of the relevant entity
types:

1. group the combined payload by entity type;
2. block, generate candidate pairs, and score them with the type's matcher;
3. build the signed linkage graph and run correlation clustering;
4. assign every source record the identifier of the KG entity in its cluster,
   or mint a new KG identifier when the cluster has none;
5. emit ``same_as`` links recording the provenance of the linking decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.construction.blocking import Blocker, BlockingConfig
from repro.construction.clustering import (
    ClusteringConfig,
    CorrelationClustering,
    EntityCluster,
    build_linkage_graph,
    materialize_clusters,
)
from repro.construction.matching import (
    MatcherRegistry,
    RuleBasedMatcher,
    default_features,
    score_pairs,
)
from repro.construction.pairs import PairGenerationConfig, PairGenerator
from repro.construction.records import LinkableRecord, records_by_type
from repro.model.entity import KGEntity, SourceEntity
from repro.model.identifiers import IdGenerator
from repro.model.ontology import Ontology


@dataclass
class LinkingConfig:
    """Configuration for one linking run."""

    blocking: BlockingConfig = field(default_factory=BlockingConfig)
    pair_generation: PairGenerationConfig = field(default_factory=PairGenerationConfig)
    clustering: ClusteringConfig = field(default_factory=ClusteringConfig)


@dataclass
class LinkingResult:
    """Outcome of linking one payload of source entities."""

    assignments: dict[str, str] = field(default_factory=dict)  # source id -> KG id
    new_entities: set[str] = field(default_factory=set)        # newly minted KG ids
    clusters: list[EntityCluster] = field(default_factory=list)
    scored_pair_count: int = 0
    candidate_pair_count: int = 0

    def kg_id_for(self, source_entity_id: str) -> str | None:
        """KG identifier assigned to a source record, or ``None``."""
        return self.assignments.get(source_entity_id)

    def same_as_links(self) -> list[tuple[str, str]]:
        """``(kg_id, source_entity_id)`` pairs recording linking provenance."""
        return [(kg_id, source_id) for source_id, kg_id in sorted(self.assignments.items())]

    def merge(self, other: "LinkingResult") -> "LinkingResult":
        """Combine results from independently linked payloads."""
        merged = LinkingResult(
            assignments={**self.assignments, **other.assignments},
            new_entities=self.new_entities | other.new_entities,
            clusters=[*self.clusters, *other.clusters],
            scored_pair_count=self.scored_pair_count + other.scored_pair_count,
            candidate_pair_count=self.candidate_pair_count + other.candidate_pair_count,
        )
        return merged


class Linker:
    """Full record-linkage pipeline over a combined source + KG-view payload."""

    def __init__(
        self,
        ontology: Ontology,
        matchers: MatcherRegistry | None = None,
        id_generator: IdGenerator | None = None,
        config: LinkingConfig | None = None,
    ) -> None:
        self.ontology = ontology
        if matchers is None:
            matchers = MatcherRegistry(default=RuleBasedMatcher(default_features(ontology)))
        self.matchers = matchers
        self.id_generator = id_generator or IdGenerator()
        self.config = config or LinkingConfig()
        # The linker scopes each blocking run to one source entity type plus
        # the compatible KG-view records, so type partitioning inside the
        # blocker would only prevent legitimate cross-type links (e.g. a
        # source "person" matching a KG "music_artist").
        blocking_config = replace(self.config.blocking, partition_by_type=False)
        self._blocker = Blocker(blocking_config)
        # Same reasoning for pair generation: the per-type scoping already
        # guarantees ontology-compatible pairs, and the exact-equality type
        # check would reject person/music_artist pairs.
        pair_config = replace(self.config.pair_generation, require_compatible_types=False)
        self._pair_generator = PairGenerator(pair_config)
        self._clustering = CorrelationClustering(self.config.clustering)

    def link(
        self,
        source_entities: Sequence[SourceEntity],
        kg_view: Sequence[KGEntity] = (),
    ) -> LinkingResult:
        """Link *source_entities* against the KG view.

        The payload is processed per entity type, mirroring the per-type
        pipelines (artist, song, album, ...) described in the paper.
        """
        source_records = [LinkableRecord.from_source_entity(e) for e in source_entities]
        kg_records = [LinkableRecord.from_kg_entity(e) for e in kg_view]
        result = LinkingResult()
        source_by_type = records_by_type(source_records)
        kg_by_type = records_by_type(kg_records)

        for entity_type, records in sorted(source_by_type.items()):
            relevant_kg = self._kg_records_for_type(entity_type, kg_by_type)
            result = result.merge(self._link_one_type(records, relevant_kg))
        return result

    # -------------------------------------------------------------- #
    # internals
    # -------------------------------------------------------------- #
    def _kg_records_for_type(
        self, entity_type: str, kg_by_type: dict[str, list[LinkableRecord]]
    ) -> list[LinkableRecord]:
        if not entity_type:
            # Untyped payloads are compared against the full view.
            return [record for records in kg_by_type.values() for record in records]
        relevant = list(kg_by_type.get(entity_type, []))
        # Include KG records of compatible (sub/super) types, e.g. a source
        # "person" may match a KG "music_artist".
        for kg_type, records in kg_by_type.items():
            if kg_type == entity_type:
                continue
            if self.ontology.has_type(kg_type) and self.ontology.has_type(entity_type):
                if self.ontology.compatible_types(kg_type, entity_type):
                    relevant.extend(records)
        return relevant

    def _link_one_type(
        self, source_records: list[LinkableRecord], kg_records: list[LinkableRecord]
    ) -> LinkingResult:
        combined: list[LinkableRecord] = [*source_records, *kg_records]
        blocks = self._blocker.block(combined)
        pairs = self._pair_generator.generate(blocks)
        scored = score_pairs(pairs, self.matchers)
        graph = build_linkage_graph(scored, self.config.clustering, extra_records=combined)
        clusters = materialize_clusters(self._clustering.cluster(graph), graph)

        result = LinkingResult(
            scored_pair_count=len(scored),
            candidate_pair_count=len(pairs),
            clusters=clusters,
        )
        for cluster in clusters:
            source_members = cluster.source_records
            if not source_members:
                continue
            if cluster.kg_record is not None:
                kg_id = cluster.kg_record.record_id
            else:
                kg_id = self.id_generator.next_id()
                result.new_entities.add(kg_id)
            for record in source_members:
                result.assignments[record.record_id] = kg_id
        return result


def evaluate_linking(
    result: LinkingResult,
    truth_map: dict[str, str],
) -> dict[str, float]:
    """Pairwise precision / recall of a linking result against ground truth.

    ``truth_map`` maps source entity ids to ground-truth identifiers.  Two
    source records are a true pair when they share a ground-truth id; they are
    a predicted pair when the linker assigned them the same KG id.
    """
    ids = sorted(set(truth_map) & set(result.assignments))
    true_pairs = set()
    predicted_pairs = set()
    for i in range(len(ids)):
        for j in range(i + 1, len(ids)):
            a, b = ids[i], ids[j]
            if truth_map[a] == truth_map[b]:
                true_pairs.add((a, b))
            if result.assignments[a] == result.assignments[b]:
                predicted_pairs.add((a, b))
    if not predicted_pairs and not true_pairs:
        return {"precision": 1.0, "recall": 1.0, "f1": 1.0}
    true_positive = len(true_pairs & predicted_pairs)
    precision = true_positive / len(predicted_pairs) if predicted_pairs else 0.0
    recall = true_positive / len(true_pairs) if true_pairs else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return {"precision": precision, "recall": recall, "f1": f1}
