"""Entity resolution via correlation clustering over the linkage graph.

Section 2.3 (step 5): calibrated match probabilities are thresholded into
high-confidence positive (+1) and negative (-1) edges of a linkage graph;
a correlation-clustering algorithm then finds entity clusters.  We implement
the classic pivot algorithm (KwikCluster), which is the algorithm the
parallel correlation clustering literature cited by the paper builds on, plus
the platform-specific constraint that each cluster contains at most one KG
entity (a cluster with several KG records is split around them).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.construction.matching import ScoredPair
from repro.construction.records import LinkableRecord
from repro.construction.stages import StageContext


@dataclass
class LinkageGraph:
    """Signed graph over record ids built from scored pairs."""

    positive: dict[str, set[str]] = field(default_factory=lambda: defaultdict(set))
    negative: dict[str, set[str]] = field(default_factory=lambda: defaultdict(set))
    records: dict[str, LinkableRecord] = field(default_factory=dict)

    def add_positive(self, left: LinkableRecord, right: LinkableRecord) -> None:
        """Record a high-confidence match edge."""
        self._register(left, right)
        self.positive[left.record_id].add(right.record_id)
        self.positive[right.record_id].add(left.record_id)

    def add_negative(self, left: LinkableRecord, right: LinkableRecord) -> None:
        """Record a high-confidence non-match edge."""
        self._register(left, right)
        self.negative[left.record_id].add(right.record_id)
        self.negative[right.record_id].add(left.record_id)

    def add_record(self, record: LinkableRecord) -> None:
        """Ensure an isolated record still appears in the graph."""
        self.records.setdefault(record.record_id, record)

    def _register(self, left: LinkableRecord, right: LinkableRecord) -> None:
        self.records.setdefault(left.record_id, left)
        self.records.setdefault(right.record_id, right)

    def node_ids(self) -> list[str]:
        """All record ids present in the graph."""
        return sorted(self.records)

    def disagreement(self, clusters: Sequence[set[str]]) -> int:
        """Correlation-clustering objective: violated edge count.

        Counts positive edges cut across clusters plus negative edges kept
        inside a cluster.  Used by tests to check the clustering is sensible.
        """
        cluster_of: dict[str, int] = {}
        for index, cluster in enumerate(clusters):
            for node in cluster:
                cluster_of[node] = index
        violations = 0
        seen: set[tuple[str, str]] = set()
        for node, neighbors in self.positive.items():
            for neighbor in neighbors:
                edge = tuple(sorted((node, neighbor)))
                if edge in seen:
                    continue
                seen.add(edge)
                if cluster_of.get(node) != cluster_of.get(neighbor):
                    violations += 1
        for node, neighbors in self.negative.items():
            for neighbor in neighbors:
                edge = tuple(sorted((node, neighbor)))
                if edge in seen:
                    continue
                seen.add(edge)
                if cluster_of.get(node) == cluster_of.get(neighbor):
                    violations += 1
        return violations


@dataclass
class ClusteringConfig:
    """Thresholds converting probabilities into signed edges."""

    match_threshold: float = 0.85      # >= : positive edge
    non_match_threshold: float = 0.35  # <= : negative edge
    seed: int = 5


def build_linkage_graph(
    scored_pairs: Iterable[ScoredPair],
    config: ClusteringConfig | None = None,
    extra_records: Iterable[LinkableRecord] = (),
) -> LinkageGraph:
    """Threshold scored pairs into a signed linkage graph."""
    config = config or ClusteringConfig()
    graph = LinkageGraph()
    for record in extra_records:
        graph.add_record(record)
    for scored in scored_pairs:
        if scored.probability >= config.match_threshold:
            graph.add_positive(scored.left, scored.right)
        elif scored.probability <= config.non_match_threshold:
            graph.add_negative(scored.left, scored.right)
        else:
            # Uncertain pairs contribute no edge; their records must still be
            # present so that they end up in singleton clusters if unmatched.
            graph.add_record(scored.left)
            graph.add_record(scored.right)
    return graph


class CorrelationClustering:
    """Pivot-based correlation clustering with the one-KG-entity constraint."""

    def __init__(self, config: ClusteringConfig | None = None) -> None:
        self.config = config or ClusteringConfig()

    def cluster(self, graph: LinkageGraph) -> list[set[str]]:
        """Cluster the linkage graph into groups of co-referent record ids."""
        rng = np.random.default_rng(self.config.seed)
        unassigned = set(graph.node_ids())
        order = sorted(unassigned)
        rng.shuffle(order)
        clusters: list[set[str]] = []
        for pivot in order:
            if pivot not in unassigned:
                continue
            cluster = {pivot}
            unassigned.discard(pivot)
            for neighbor in sorted(graph.positive.get(pivot, ())):
                if neighbor not in unassigned:
                    continue
                # Respect explicit negative evidence against any member.
                if any(neighbor in graph.negative.get(member, set()) for member in cluster):
                    continue
                cluster.add(neighbor)
                unassigned.discard(neighbor)
            clusters.append(cluster)
        return self._enforce_single_kg_entity(clusters, graph)

    def _enforce_single_kg_entity(
        self, clusters: list[set[str]], graph: LinkageGraph
    ) -> list[set[str]]:
        """Split clusters containing more than one KG-view record.

        The resolution step requires at most one graph entity per cluster;
        when the pivot heuristic glues two KG entities together (usually via
        an ambiguous source record) the cluster is re-partitioned around the
        KG entities, assigning each source record to the KG record it shares
        a positive edge with (or the first KG record otherwise).
        """
        adjusted: list[set[str]] = []
        for cluster in clusters:
            kg_ids = [rid for rid in cluster if graph.records[rid].is_kg]
            if len(kg_ids) <= 1:
                adjusted.append(cluster)
                continue
            buckets: dict[str, set[str]] = {kg_id: {kg_id} for kg_id in kg_ids}
            for record_id in cluster:
                if record_id in buckets:
                    continue
                home = None
                for kg_id in kg_ids:
                    if record_id in graph.positive.get(kg_id, set()):
                        home = kg_id
                        break
                if home is None:
                    home = kg_ids[0]
                buckets[home].add(record_id)
            adjusted.extend(buckets.values())
        return adjusted


@dataclass
class EntityCluster:
    """A resolved cluster with its (optional) existing KG entity."""

    members: list[LinkableRecord]
    kg_record: LinkableRecord | None = None

    @property
    def source_records(self) -> list[LinkableRecord]:
        """The non-KG members of the cluster."""
        return [record for record in self.members if not record.is_kg]


@dataclass
class ClusteringStage:
    """Stage 4 of the construction pipeline: scored pairs → entity clusters.

    Thresholds the scored pairs into a signed linkage graph (isolated records
    included so unmatched payloads still become singleton clusters), runs the
    seeded pivot clustering, and materializes :class:`EntityCluster` objects.
    Identifier assignment for clusters without a KG record is deliberately
    *not* done here — it happens at the fusion barrier in deterministic commit
    order, which is what keeps parallel construction byte-identical to
    sequential.
    """

    config: ClusteringConfig
    name: str = "clustering"

    def run(self, context: StageContext) -> StageContext:
        """Cluster the context's scored pairs into co-referent groups."""
        graph = build_linkage_graph(
            context.scored or [],
            self.config,
            extra_records=context.combined_records(),
        )
        clustering = CorrelationClustering(self.config)
        context.clusters = materialize_clusters(clustering.cluster(graph), graph)
        return context


def materialize_clusters(
    clusters: Sequence[set[str]], graph: LinkageGraph
) -> list[EntityCluster]:
    """Convert id clusters into :class:`EntityCluster` objects."""
    materialized = []
    for cluster in clusters:
        members = [graph.records[record_id] for record_id in sorted(cluster)]
        kg_members = [record for record in members if record.is_kg]
        materialized.append(
            EntityCluster(members=members, kg_record=kg_members[0] if kg_members else None)
        )
    return materialized
