"""The record representation shared by blocking, matching, and resolution.

Linking operates over a *combined payload* of source entities and a KG view
(Section 2.3).  Both are normalized into :class:`LinkableRecord` — a flat,
multi-valued property map plus bookkeeping flags — so every stage of the
linking pipeline is agnostic to where a record came from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.ml.similarity import normalize_string
from repro.model.entity import KGEntity, SourceEntity


@dataclass
class LinkableRecord:
    """A flattened record participating in record linkage."""

    record_id: str
    entity_type: str = ""
    properties: dict[str, list[object]] = field(default_factory=dict)
    is_kg: bool = False                 # True when the record comes from the KG view
    source_id: str = ""
    trust: float = 0.5

    def values(self, predicate: str) -> list[object]:
        """All values of *predicate* (empty list when absent)."""
        return self.properties.get(predicate, [])

    def first(self, predicate: str) -> object | None:
        """First value of *predicate*, or ``None``."""
        values = self.values(predicate)
        return values[0] if values else None

    def names(self) -> list[str]:
        """Name-like strings used by blocking and name features."""
        names: list[str] = []
        for predicate in ("name", "alias", "title", "full_title"):
            names.extend(str(v) for v in self.values(predicate))
        return [n for n in names if n]

    def primary_name(self) -> str:
        """Best display name, falling back to the record identifier."""
        names = self.names()
        return names[0] if names else self.record_id

    @classmethod
    def from_source_entity(cls, entity: SourceEntity) -> "LinkableRecord":
        """Flatten an ontology-aligned source entity."""
        properties: dict[str, list[object]] = {}
        for predicate in entity.properties:
            scalars = entity.values(predicate)
            if scalars:
                properties[predicate] = list(scalars)
            nodes = entity.relationships(predicate)
            if nodes:
                flattened: list[object] = []
                for node in nodes:
                    flattened.extend(str(v) for v in node.values() if v is not None)
                properties.setdefault(predicate, []).extend(flattened)
        return cls(
            record_id=entity.entity_id,
            entity_type=entity.entity_type,
            properties=properties,
            is_kg=False,
            source_id=entity.source_id,
            trust=entity.trust,
        )

    @classmethod
    def from_kg_entity(cls, entity: KGEntity) -> "LinkableRecord":
        """Flatten a materialized KG entity."""
        properties: dict[str, list[object]] = {}
        if entity.names:
            properties["name"] = list(entity.names)
        for predicate, values in entity.facts.items():
            properties.setdefault(predicate, []).extend(values)
        for predicate, nodes in entity.relationships.items():
            flattened = []
            for node in nodes:
                flattened.extend(str(v) for v in node.facts.values() if v is not None)
            if flattened:
                properties.setdefault(predicate, []).extend(flattened)
        primary_type = entity.types[0] if entity.types else ""
        return cls(
            record_id=entity.entity_id,
            entity_type=primary_type,
            properties=properties,
            is_kg=True,
            source_id="kg",
            trust=0.9,
        )


def normalized_names(record: LinkableRecord) -> list[str]:
    """Lower-cased, whitespace-collapsed names of a record."""
    return [normalize_string(name) for name in record.names() if normalize_string(name)]


def records_by_type(records: Iterable[LinkableRecord]) -> dict[str, list[LinkableRecord]]:
    """Group records by their entity type (empty type goes to ``""``)."""
    grouped: dict[str, list[LinkableRecord]] = {}
    for record in records:
        grouped.setdefault(record.entity_type, []).append(record)
    return grouped
