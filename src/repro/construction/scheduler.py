"""Parallel construction scheduling (Section 2.4, Figure 5).

The paper's central construction claim is that source-specific processing is
*embarrassingly parallel* and fusion is the only synchronization point.  The
:class:`ParallelConstructionScheduler` realizes that claim over the staged
pipeline of :mod:`repro.construction.incremental`:

1. **Partition.**  Incoming :class:`~repro.model.delta.SourceDelta`\\ s are
   partitioned by source and entity-type block
   (:meth:`IncrementalConstructor.prepare` with ``plan=False``).
2. **Parallel prepare.**  The pre-fusion stages (blocking → pair generation →
   matching → clustering) of every block run concurrently on a bounded worker
   pool — the same lazily created, explicitly closed thread-pool pattern the
   view manager uses for parallel branch flushing.  Preparation reads a KG
   view materialized once per batch and mutates nothing: no identifiers are
   minted, no store or link-table writes happen.
3. **Fusion barrier.**  Deltas commit strictly in input order through
   :meth:`IncrementalConstructor.commit`.  Each block plan is validated
   against the :class:`CommittedState` accumulated by earlier commits; a plan
   whose KG view may have changed is replanned serially at the barrier.  KG
   identifiers are minted at commit time in deterministic order, so the
   parallel run's store, link table, and reports are **byte-identical** to a
   sequential run over the same payloads (a seeded property suite asserts
   this).

Per-source failures are isolated: a failing delta yields a report with its
``error`` field set, the remaining sources keep fusing (against a
conservatively poisoned validation state), and a
:class:`~repro.errors.ConstructionBatchError` carrying every report is raised
at the end.
"""

from __future__ import annotations

import threading
import time
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.construction.incremental import (
    BlockPlan,
    CommittedState,
    ConstructionReport,
    IncrementalConstructor,
    PreparedDelta,
)
from repro.errors import ConstructionBatchError, ConstructionError
from repro.model.delta import SourceDelta
from repro.model.entity import materialize_entities


def lpt_makespan(durations: Sequence[float], workers: int) -> float:
    """Longest-processing-time makespan of *durations* over *workers* bins.

    The standard greedy schedule bound used to model what a worker pool of the
    given size would make of the measured per-block preparation times — the
    CONSTRUCT benchmark reports speedups from this model alongside measured
    wall clock, mirroring the QUERYROUTE benchmark's modeled fleet throughput.
    """
    if not durations:
        return 0.0
    bins = [0.0] * max(int(workers), 1)
    for duration in sorted(durations, reverse=True):
        bins[bins.index(min(bins))] += duration
    return max(bins)


@dataclass
class BatchStats:
    """Measurements of one scheduler batch (exposed as ``last_batch``)."""

    deltas: int = 0
    blocks: int = 0
    plans_reused: int = 0
    plans_replanned: int = 0
    failures: int = 0
    workers: int = 1
    shared_view_seconds: float = 0.0   # one-off KG materialization for the batch
    block_seconds: list[float] = field(default_factory=list)
    prepare_wall_seconds: float = 0.0  # wall clock of the (possibly pooled) prepare phase
    barrier_seconds: float = 0.0       # serialized fusion commits
    wall_seconds: float = 0.0

    def prepare_cpu_seconds(self) -> float:
        """Total per-block preparation work (the parallelizable portion)."""
        return sum(self.block_seconds)

    def modeled_parallel_seconds(self, workers: int) -> float:
        """Modeled batch latency with *workers* preparing blocks in parallel."""
        return (
            self.shared_view_seconds
            + self.barrier_seconds
            + lpt_makespan(self.block_seconds, workers)
        )

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view for benchmark JSON summaries."""
        return {
            "deltas": self.deltas,
            "blocks": self.blocks,
            "plans_reused": self.plans_reused,
            "plans_replanned": self.plans_replanned,
            "failures": self.failures,
            "workers": self.workers,
            "shared_view_seconds": self.shared_view_seconds,
            "prepare_cpu_seconds": self.prepare_cpu_seconds(),
            "prepare_wall_seconds": self.prepare_wall_seconds,
            "barrier_seconds": self.barrier_seconds,
            "wall_seconds": self.wall_seconds,
        }


class ParallelConstructionScheduler:
    """Schedule batch construction: parallel pre-fusion, serialized fusion.

    ``max_workers`` bounds the prepare pool (``None`` or ``1`` prepares
    inline, which is also the mode benchmarks use to measure undisturbed
    per-block times); ``executor`` selects ``"thread"`` (bounded pool) or
    ``"serial"`` (always inline, regardless of ``max_workers``).  The pool is
    created lazily, reused across batches, and released by :meth:`close` /
    ``with`` — the executor lifecycle pattern of
    :class:`~repro.engine.views.ViewManager`.
    """

    def __init__(
        self,
        constructor: IncrementalConstructor,
        max_workers: int | None = None,
        executor: str = "thread",
    ) -> None:
        if executor not in ("thread", "serial"):
            raise ConstructionError(
                f"unknown construction executor {executor!r} (use 'thread' or 'serial')"
            )
        if max_workers is not None and max_workers <= 0:
            raise ConstructionError("construction max_workers must be positive")
        self.constructor = constructor
        self.max_workers = max_workers
        self.executor = executor
        self.batches = 0
        self.last_batch: BatchStats | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._pool_size = 0
        self._pool_lock = threading.Lock()

    # -------------------------------------------------------------- #
    # batch consumption
    # -------------------------------------------------------------- #
    def consume_many(
        self,
        deltas: Sequence[SourceDelta],
        on_commit: Callable[[ConstructionReport], None] | None = None,
        max_workers: int | None = None,
    ) -> list[ConstructionReport]:
        """Consume a batch of deltas: parallel prepare, ordered fusion barrier.

        *on_commit* is invoked with each successful report immediately after
        its fusion commit, inside the barrier — in deterministic commit order
        (the input order), which is where growth-history clocks are stamped.
        Raises :class:`~repro.errors.ConstructionBatchError` after the barrier
        when any delta failed; the error carries every report (failed ones
        with ``error`` set) so callers keep the surviving results.
        """
        deltas = list(deltas)
        workers = max_workers if max_workers is not None else self.max_workers
        stats = BatchStats(deltas=len(deltas), workers=workers or 1)
        batch_started = time.perf_counter()

        prepared = self._prepare_batch(deltas, workers, stats)
        reports, failures = self._commit_batch(prepared, on_commit, stats)

        stats.wall_seconds = time.perf_counter() - batch_started
        self.last_batch = stats
        self.batches += 1
        if failures:
            raise ConstructionBatchError(reports, failures)
        return reports

    # -------------------------------------------------------------- #
    # phases
    # -------------------------------------------------------------- #
    def _prepare_batch(
        self,
        deltas: Sequence[SourceDelta],
        workers: int | None,
        stats: BatchStats,
    ) -> list[PreparedDelta]:
        """Partition every delta and plan all blocks (pool or inline).

        The KG view is materialized at most once per batch from the live
        store — nothing mutates it until the barrier — and every block slices
        its typed view from that shared materialization, exactly the content
        the sequential path would read at batch start.  A batch with no block
        to plan (only deleted / volatile / known-updated partitions) never
        pays the materialization at all, matching the sequential paths.
        """
        constructor = self.constructor
        link_snapshot = dict(constructor.link_table)
        prepared = [
            constructor.prepare(delta, link_table=link_snapshot, plan=False)
            for delta in deltas
        ]
        blocks: list[BlockPlan] = [
            block for prep in prepared for block in prep.blocks()
        ]
        stats.blocks = len(blocks)
        if not blocks:
            return prepared

        started = time.perf_counter()
        entities = materialize_entities(constructor.store)
        stats.shared_view_seconds = time.perf_counter() - started

        def view_source(entity_types: Sequence[str]) -> list:
            return constructor.filter_entities(entities, entity_types)

        prepare_started = time.perf_counter()
        pool = self._prepare_pool(workers, len(blocks))
        if pool is None:
            for block in blocks:
                constructor.plan_block(block, view_source)
        else:
            # plan_block captures its own failures, so the futures only carry
            # programming errors — let those propagate.
            list(pool.map(lambda block: constructor.plan_block(block, view_source), blocks))
        stats.prepare_wall_seconds = time.perf_counter() - prepare_started
        stats.block_seconds = [block.prepare_seconds for block in blocks]
        return prepared

    def _commit_batch(
        self,
        prepared: Sequence[PreparedDelta],
        on_commit: Callable[[ConstructionReport], None] | None,
        stats: BatchStats,
    ) -> tuple[list[ConstructionReport], list[tuple[str, Exception]]]:
        """Commit every delta in input order through the fusion barrier."""
        state = CommittedState()
        reports: list[ConstructionReport] = []
        failures: list[tuple[str, Exception]] = []
        barrier_started = time.perf_counter()
        for prep in prepared:
            try:
                report = self.constructor.commit(prep.delta, prepared=prep, committed=state)
            except Exception as exc:  # noqa: BLE001 - per-source failure isolation
                report = ConstructionReport(
                    source_id=prep.delta.source_id,
                    timestamp=prep.delta.to_timestamp,
                    error=f"{type(exc).__name__}: {exc}",
                )
                failures.append((prep.delta.source_id, exc))
                # The failed commit may have fused part of its delta before
                # raising; nothing proves what it touched, so every remaining
                # plan must be replanned at its own commit.
                state.poison()
                stats.failures += 1
            else:
                if on_commit is not None:
                    on_commit(report)
            reports.append(report)
            stats.plans_reused += report.plans_reused
            stats.plans_replanned += report.plans_replanned
        stats.barrier_seconds = time.perf_counter() - barrier_started
        return reports, failures

    # -------------------------------------------------------------- #
    # executor lifecycle (the view-manager flush-pool pattern)
    # -------------------------------------------------------------- #
    def _prepare_pool(
        self, workers: int | None, task_count: int
    ) -> ThreadPoolExecutor | None:
        if self.executor != "thread" or workers is None or workers <= 1 or task_count <= 1:
            return None
        with self._pool_lock:
            if self._pool is not None and self._pool_size != workers:
                self._pool.shutdown(wait=True)
                self._pool = None
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="construct-prepare"
                )
                self._pool_size = workers
                # Reap the workers when the scheduler is collected, not at exit.
                weakref.finalize(self, self._pool.shutdown, wait=False)
            return self._pool

    def close(self) -> None:
        """Release the prepare pool (idempotent; recreated on demand)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __enter__(self) -> "ParallelConstructionScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
