"""Knowledge construction: blocking, matching, clustering, linking, OBR, fusion."""

from repro.construction.blocking import (
    BLOCKING_FUNCTIONS,
    Block,
    Blocker,
    BlockingConfig,
)
from repro.construction.clustering import (
    ClusteringConfig,
    CorrelationClustering,
    EntityCluster,
    LinkageGraph,
    build_linkage_graph,
    materialize_clusters,
)
from repro.construction.fusion import Fusion, FusionConfig, FusionReport
from repro.construction.incremental import ConstructionReport, IncrementalConstructor
from repro.construction.linking import (
    Linker,
    LinkingConfig,
    LinkingResult,
    evaluate_linking,
)
from repro.construction.matching import (
    FeatureSpec,
    LearnedMatcher,
    MatcherRegistry,
    RuleBasedMatcher,
    ScoredPair,
    default_features,
    feature_vector,
    score_pairs,
)
from repro.construction.object_resolution import (
    NameIndexResolver,
    ObjectResolutionStage,
    ObjectResolutionStats,
    Resolution,
    ResolutionContext,
)
from repro.construction.pairs import CandidatePair, PairGenerationConfig, PairGenerator
from repro.construction.pipeline import (
    GrowthHistory,
    GrowthPoint,
    KnowledgeConstructionPipeline,
)
from repro.construction.records import LinkableRecord, records_by_type
from repro.construction.truth_discovery import (
    Claim,
    TruthDiscovery,
    TruthDiscoveryConfig,
    TruthDiscoveryResult,
)

__all__ = [
    "BLOCKING_FUNCTIONS",
    "Block",
    "Blocker",
    "BlockingConfig",
    "CandidatePair",
    "Claim",
    "ClusteringConfig",
    "ConstructionReport",
    "CorrelationClustering",
    "EntityCluster",
    "FeatureSpec",
    "Fusion",
    "FusionConfig",
    "FusionReport",
    "GrowthHistory",
    "GrowthPoint",
    "IncrementalConstructor",
    "KnowledgeConstructionPipeline",
    "LearnedMatcher",
    "LinkableRecord",
    "LinkageGraph",
    "Linker",
    "LinkingConfig",
    "LinkingResult",
    "MatcherRegistry",
    "NameIndexResolver",
    "ObjectResolutionStage",
    "ObjectResolutionStats",
    "PairGenerationConfig",
    "PairGenerator",
    "Resolution",
    "ResolutionContext",
    "RuleBasedMatcher",
    "ScoredPair",
    "TruthDiscovery",
    "TruthDiscoveryConfig",
    "TruthDiscoveryResult",
    "build_linkage_graph",
    "default_features",
    "evaluate_linking",
    "feature_vector",
    "materialize_clusters",
    "records_by_type",
    "score_pairs",
]
