"""Knowledge construction: blocking, matching, clustering, linking, OBR, fusion."""

from repro.construction.blocking import (
    BLOCKING_FUNCTIONS,
    Block,
    Blocker,
    BlockingConfig,
    BlockingStage,
)
from repro.construction.clustering import (
    ClusteringConfig,
    ClusteringStage,
    CorrelationClustering,
    EntityCluster,
    LinkageGraph,
    build_linkage_graph,
    materialize_clusters,
)
from repro.construction.fusion import Fusion, FusionConfig, FusionReport, FusionStage
from repro.construction.incremental import (
    BlockPlan,
    CommittedState,
    ConstructionReport,
    EntityDelta,
    IncrementalConstructor,
    PreparedDelta,
)
from repro.construction.linking import (
    Linker,
    LinkingConfig,
    LinkingResult,
    TypeLinkPlan,
    evaluate_linking,
)
from repro.construction.matching import (
    FeatureSpec,
    LearnedMatcher,
    MatcherRegistry,
    MatchingStage,
    RuleBasedMatcher,
    ScoredPair,
    default_features,
    feature_vector,
    score_pairs,
)
from repro.construction.object_resolution import (
    NameIndexResolver,
    ObjectResolutionStage,
    ObjectResolutionStats,
    Resolution,
    ResolutionContext,
    ResolutionStage,
)
from repro.construction.pairs import (
    CandidatePair,
    PairGenerationConfig,
    PairGenerationStage,
    PairGenerator,
)
from repro.construction.pipeline import (
    GrowthHistory,
    GrowthPoint,
    KnowledgeConstructionPipeline,
)
from repro.construction.records import LinkableRecord, records_by_type
from repro.construction.scheduler import (
    BatchStats,
    ParallelConstructionScheduler,
    lpt_makespan,
)
from repro.construction.stages import ConstructionStage, StageContext, StagePipeline
from repro.construction.truth_discovery import (
    Claim,
    TruthDiscovery,
    TruthDiscoveryConfig,
    TruthDiscoveryResult,
)

__all__ = [
    "BLOCKING_FUNCTIONS",
    "BatchStats",
    "Block",
    "BlockPlan",
    "Blocker",
    "BlockingConfig",
    "BlockingStage",
    "CandidatePair",
    "Claim",
    "ClusteringConfig",
    "ClusteringStage",
    "CommittedState",
    "ConstructionReport",
    "ConstructionStage",
    "CorrelationClustering",
    "EntityCluster",
    "EntityDelta",
    "FeatureSpec",
    "Fusion",
    "FusionConfig",
    "FusionReport",
    "FusionStage",
    "GrowthHistory",
    "GrowthPoint",
    "IncrementalConstructor",
    "KnowledgeConstructionPipeline",
    "LearnedMatcher",
    "LinkableRecord",
    "LinkageGraph",
    "Linker",
    "LinkingConfig",
    "LinkingResult",
    "MatcherRegistry",
    "MatchingStage",
    "NameIndexResolver",
    "ObjectResolutionStage",
    "ObjectResolutionStats",
    "PairGenerationConfig",
    "PairGenerationStage",
    "PairGenerator",
    "ParallelConstructionScheduler",
    "PreparedDelta",
    "Resolution",
    "ResolutionContext",
    "ResolutionStage",
    "RuleBasedMatcher",
    "ScoredPair",
    "StageContext",
    "StagePipeline",
    "TruthDiscovery",
    "TruthDiscoveryConfig",
    "TruthDiscoveryResult",
    "TypeLinkPlan",
    "build_linkage_graph",
    "default_features",
    "evaluate_linking",
    "feature_vector",
    "lpt_makespan",
    "materialize_clusters",
    "records_by_type",
    "score_pairs",
]
