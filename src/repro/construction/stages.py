"""The staged construction pipeline core (Section 2.4, Figure 5).

The paper's construction pipeline is a fixed chain of stages — blocking →
pair generation → matching → clustering → object resolution → fusion — where
everything before fusion is *embarrassingly parallel* per source (and per
entity-type partition) and fusion is the single synchronization point.  This
module defines the composable core both :class:`~repro.construction.incremental.
IncrementalConstructor` and :class:`~repro.construction.pipeline.
KnowledgeConstructionPipeline` build on:

* :class:`StageContext` — the per-partition state a payload accumulates while
  flowing through the stages (records in, blocks, candidate pairs, scored
  pairs, clusters out; plus the barrier-side fields the serialized resolution
  and fusion stages read);
* :class:`ConstructionStage` — the protocol every stage implements (a ``name``
  and a ``run(context)`` that advances the context);
* :class:`StagePipeline` — a deterministic stage chain that records per-stage
  wall time into the context.

The concrete stages live next to the machinery they wrap —
:class:`~repro.construction.blocking.BlockingStage`,
:class:`~repro.construction.pairs.PairGenerationStage`,
:class:`~repro.construction.matching.MatchingStage`,
:class:`~repro.construction.clustering.ClusteringStage` on the parallel side
of the barrier, :class:`~repro.construction.object_resolution.ResolutionStage`
and :class:`~repro.construction.fusion.FusionStage` on the serialized side.
The pre-fusion stages only read shared state (the KG view and the payload) and
never mint identifiers, which is what makes them safe to run concurrently;
identifier assignment, object resolution, and fusion happen at the barrier in
deterministic commit order (see :mod:`repro.construction.scheduler`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

if TYPE_CHECKING:  # real types live in the stage modules; no runtime cycle
    from repro.construction.blocking import Block
    from repro.construction.clustering import EntityCluster
    from repro.construction.matching import ScoredPair
    from repro.construction.object_resolution import (
        ObjectResolutionStage,
        ObjectResolutionStats,
    )
    from repro.construction.pairs import CandidatePair
    from repro.construction.records import LinkableRecord
    from repro.construction.fusion import FusionReport
    from repro.model.entity import SourceEntity
    from repro.model.triples import ExtendedTriple, TripleStore


@dataclass
class StageContext:
    """Per-partition state carried through the construction stages.

    The *pre-fusion* fields (``source_records`` / ``kg_records`` in; ``blocks``,
    ``pairs``, ``scored``, ``clusters`` out) are filled by the parallel side of
    the pipeline and never touch shared mutable state.  The *barrier* fields
    (``store``, ``entities``, ``assignments``, ``resolution``, ``same_as``,
    ``subjects``, ``fusion_kind``) are only populated on the serialized side,
    where object resolution rewrites linked triples against the live store and
    fusion commits them.
    """

    source_id: str = ""
    entity_type: str = ""
    # ---- pre-fusion (parallel) state ----------------------------------- #
    source_records: list["LinkableRecord"] = field(default_factory=list)
    kg_records: list["LinkableRecord"] = field(default_factory=list)
    blocks: list["Block"] | None = None
    pairs: list["CandidatePair"] | None = None
    scored: list["ScoredPair"] | None = None
    clusters: list["EntityCluster"] | None = None
    # ---- barrier (serialized) state ------------------------------------ #
    store: "TripleStore | None" = None
    entities: list["SourceEntity"] = field(default_factory=list)
    assignments: dict[str, str] = field(default_factory=dict)
    same_as: list[tuple[str, str]] = field(default_factory=list)
    subjects: list[str] = field(default_factory=list)
    resolution: "ObjectResolutionStage | None" = None
    triples_by_subject: dict[str, list["ExtendedTriple"]] | None = None
    resolution_stats: "ObjectResolutionStats | None" = None
    fusion_kind: str = "added"
    fusion_report: "FusionReport | None" = None
    # ---- bookkeeping ---------------------------------------------------- #
    stage_seconds: dict[str, float] = field(default_factory=dict)

    def combined_records(self) -> list["LinkableRecord"]:
        """The combined payload linking operates over: source then KG records."""
        return [*self.source_records, *self.kg_records]


@runtime_checkable
class ConstructionStage(Protocol):
    """One stage of the construction pipeline.

    Stages advance a :class:`StageContext` in place (and return it for
    chaining).  Pre-fusion stages must be pure with respect to shared state:
    they may read the KG view embedded in the context but must not mutate the
    triple store, the link table, or mint identifiers — those effects belong
    to the serialized barrier stages.
    """

    name: str

    def run(self, context: StageContext) -> StageContext:
        """Advance *context* by one stage."""
        ...


@dataclass
class StagePipeline:
    """A deterministic chain of construction stages.

    Runs each stage in order, accumulating per-stage wall time into
    ``context.stage_seconds`` so schedulers and benchmarks can attribute cost
    to individual stages.
    """

    stages: Sequence[ConstructionStage]

    def run(self, context: StageContext) -> StageContext:
        """Run every stage over *context* in order."""
        for stage in self.stages:
            started = time.perf_counter()
            stage.run(context)
            elapsed = time.perf_counter() - started
            context.stage_seconds[stage.name] = (
                context.stage_seconds.get(stage.name, 0.0) + elapsed
            )
        return context

    def stage_names(self) -> list[str]:
        """The stage names in execution order."""
        return [stage.name for stage in self.stages]
