"""Incremental, delta-based knowledge construction (Section 2.4, Figure 5).

The :class:`IncrementalConstructor` consumes :class:`SourceDelta` payloads and
applies the per-partition paths of the paper's parallel construction pipeline:

* **Added** entities run the full linking pipeline (blocking, matching,
  clustering) against a KG view of the relevant entity types, then object
  resolution, then fusion;
* **Updated** / **Deleted** entities are *already linked* — their KG ids are
  looked up in the link table (``same_as`` state) and only object resolution
  and fusion run;
* **Volatile** payloads bypass linking entirely and take the optimized
  partition-overwrite fusion path.

The constructor keeps the link table (source entity id → KG id) across runs so
that repeated consumption of the same source is incremental.

Prepare / commit split
----------------------

Construction is factored into the two halves of the paper's Figure 5:

* :meth:`IncrementalConstructor.prepare` runs the *pre-fusion* stages
  (blocking → pair generation → matching → clustering) for every entity-type
  block of a delta against a read-only KG view, producing speculative
  :class:`BlockPlan`\\ s.  Preparation mutates nothing and mints no
  identifiers, so many partitions may be prepared concurrently (see
  :mod:`repro.construction.scheduler`).
* :meth:`IncrementalConstructor.commit` is the serialized fusion barrier: it
  validates each block plan against the :class:`CommittedState` accumulated by
  earlier commits (replanning serially when an earlier commit could have
  changed the block's KG view), assigns KG identifiers in deterministic order,
  runs object resolution, and fuses — making parallel output byte-identical
  to a sequential run.

Every commit also classifies its effect on the KG into an
:class:`EntityDelta` (added / updated / deleted subjects), which the platform
publishes directly into the Graph Engine's delta journals — no store
re-diffing downstream.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.construction.fusion import Fusion, FusionConfig, FusionReport, FusionStage
from repro.construction.linking import Linker, LinkingConfig, LinkingResult, TypeLinkPlan
from repro.construction.matching import MatcherRegistry
from repro.construction.object_resolution import (
    NameIndexResolver,
    ObjectResolutionStage,
    ObjectResolutionStats,
    ObjectResolver,
    ResolutionStage,
)
from repro.construction.records import LinkableRecord, records_by_type
from repro.construction.stages import StageContext
from repro.model.delta import SourceDelta
from repro.model.entity import (
    SAME_AS_PREDICATE,
    TYPE_PREDICATE,
    KGEntity,
    SourceEntity,
    materialize_entities,
)
from repro.model.identifiers import IdGenerator
from repro.model.ontology import Ontology
from repro.model.triples import ExtendedTriple, TripleStore


@dataclass(frozen=True)
class EntityDelta:
    """Classified KG-subject delta of one construction commit.

    ``added`` subjects did not exist in the store before the commit,
    ``updated`` subjects existed and had facts change (including provenance
    reinforcement), and ``deleted`` subjects lost their last knowledge-bearing
    fact (their final supporting source retracted).  A subject a source
    retracted that other sources still support classifies as *updated* — the
    entity is alive, only its fact set shrank.  Liveness deliberately ignores
    ``same_as`` rows: fusion keeps linking provenance as a tombstone after a
    retraction, but an entity whose only remaining facts are ``same_as``
    mappings has left the knowledge graph from every consumer's perspective.
    All tuples are sorted.
    """

    added: tuple[str, ...] = ()
    updated: tuple[str, ...] = ()
    deleted: tuple[str, ...] = ()

    @property
    def changed(self) -> tuple[str, ...]:
        """Added plus updated subjects."""
        return self.added + self.updated

    def is_empty(self) -> bool:
        """Whether the commit changed no subject at all."""
        return not (self.added or self.updated or self.deleted)

    def as_dict(self) -> dict[str, list[str]]:
        """Plain-dict view, the shape embedded in published log payloads."""
        return {
            "added": list(self.added),
            "updated": list(self.updated),
            "deleted": list(self.deleted),
        }


@dataclass
class ConstructionReport:
    """Summary of consuming one source delta."""

    source_id: str
    timestamp: int = 0
    commit_clock: int = 0          # logical clock stamped at fusion-commit time
    linked_added: int = 0
    new_entities: int = 0
    updated_entities: int = 0
    deleted_entities: int = 0
    volatile_entities: int = 0
    linking: LinkingResult | None = None
    fusion: FusionReport = field(default_factory=FusionReport)
    object_resolution: ObjectResolutionStats = field(default_factory=ObjectResolutionStats)
    entity_delta: EntityDelta = field(default_factory=EntityDelta)
    plans_reused: int = 0          # prepared block plans committed as-is
    plans_replanned: int = 0       # blocks recomputed serially at the barrier
    error: str | None = None       # per-source failure captured by batch consumption

    def summary(self) -> dict[str, object]:
        """Compact dictionary view used in logs and tests."""
        return {
            "source_id": self.source_id,
            "timestamp": self.timestamp,
            "linked_added": self.linked_added,
            "new_entities": self.new_entities,
            "updated": self.updated_entities,
            "deleted": self.deleted_entities,
            "volatile": self.volatile_entities,
            "facts_added": self.fusion.facts_added,
            "facts_reinforced": self.fusion.facts_reinforced,
            "facts_removed": self.fusion.facts_removed,
            "error": self.error,
        }


@dataclass
class BlockPlan:
    """A speculative pre-fusion plan for one entity-type block of a delta.

    ``view_types`` is the KG-view type filter the plan was computed against
    (``()`` means the unfiltered view); ``unfiltered`` marks plans whose view
    had no type filter at all — any commit invalidates those.  ``plan`` is
    ``None`` when preparation failed or was skipped; the barrier then replans
    the block serially (which reproduces sequential behavior exactly,
    including any deterministic error).
    """

    entity_type: str
    view_types: tuple[str, ...]
    unfiltered: bool
    entities: list[SourceEntity]
    plan: TypeLinkPlan | None = None
    prepare_seconds: float = 0.0
    prepare_error: str | None = None


@dataclass
class PreparedDelta:
    """The speculative pre-fusion output for one :class:`SourceDelta`.

    Only the *unknown* half of the updated partition is kept: the barrier
    recomputes the known/unknown split against the live link table (entities
    linked by this delta's own added partition, or by an earlier same-source
    commit of the batch, are known by then) and reuses the unknown plans only
    when the recomputed split matches.
    """

    delta: SourceDelta
    added_blocks: list[BlockPlan] = field(default_factory=list)
    unknown_updated: list[SourceEntity] = field(default_factory=list)
    unknown_blocks: list[BlockPlan] = field(default_factory=list)
    prepare_seconds: float = 0.0

    def blocks(self) -> list[BlockPlan]:
        """Every block of the delta (added path plus unknown-updated path)."""
        return [*self.added_blocks, *self.unknown_blocks]


@dataclass
class CommittedState:
    """What fusion commits have touched since a batch's prepare snapshot.

    Tracks the union of entity types (before *and* after each commit) of every
    subject the committed fusions touched, plus whether any touched subject
    was untyped — untyped entities appear in *every* KG view, so their
    presence invalidates all outstanding plans.  :meth:`poison` marks the
    store state unknown (used after a failed commit)."""

    types: set[str] = field(default_factory=set)
    untyped: bool = False
    any_change: bool = False

    def poison(self) -> None:
        """Mark the store as changed in unknown ways: every plan is invalid."""
        self.untyped = True
        self.any_change = True


class _CommitTracker:
    """Pre-commit existence and type snapshots of every touched subject.

    ``note`` must be called with the subjects a fusion step is about to touch
    *before* the step runs; ``finalize`` then classifies the commit's net
    effect into an :class:`EntityDelta` against the post-commit store."""

    def __init__(self, store: TripleStore) -> None:
        self.store = store
        self.pre_existing: dict[str, bool] = {}
        self.pre_types: dict[str, set[str]] = {}

    def alive(self, subject: str) -> tuple[bool, set[str]]:
        """Whether *subject* carries knowledge-bearing facts, plus its types.

        ``same_as`` rows do not count as life: fusion keeps linking provenance
        as a tombstone after a full retraction, but such an entity is gone
        from every downstream consumer's perspective.
        """
        alive = False
        types: set[str] = set()
        # Columnar scan: liveness and types are order-independent, so skip
        # the materialized, repr-sorted facts_about path entirely.
        for predicate, is_composite, obj in self.store.scan_subject(subject):
            if is_composite:
                alive = True
            elif predicate == TYPE_PREDICATE:
                alive = True
                types.add(str(obj))
            elif predicate != SAME_AS_PREDICATE:
                alive = True
        return alive, types

    def note(self, subjects: Iterable[str]) -> None:
        """Snapshot existence and types of *subjects* before they are touched."""
        for subject in subjects:
            if subject in self.pre_existing:
                continue
            alive, types = self.alive(subject)
            self.pre_existing[subject] = alive
            self.pre_types[subject] = types

    def finalize(self, touched: Iterable[str]) -> EntityDelta:
        """Classify the touched subjects against the post-commit store."""
        added: list[str] = []
        updated: list[str] = []
        deleted: list[str] = []
        for subject in sorted(set(touched)):
            exists_now, _ = self.alive(subject)
            existed_before = self.pre_existing.get(subject, False)
            if not exists_now:
                if existed_before:
                    deleted.append(subject)
                # Never existed and still does not: a touched no-op (e.g. a
                # deletion of an entity another source already removed).
            elif existed_before:
                updated.append(subject)
            else:
                added.append(subject)
        return EntityDelta(added=tuple(added), updated=tuple(updated), deleted=tuple(deleted))


class IncrementalConstructor:
    """Delta-based construction of the KG over a shared triple store."""

    def __init__(
        self,
        ontology: Ontology,
        store: TripleStore | None = None,
        matchers: MatcherRegistry | None = None,
        linking_config: LinkingConfig | None = None,
        fusion_config: FusionConfig | None = None,
        resolver: ObjectResolver | None = None,
        id_generator: IdGenerator | None = None,
        obr_confidence_threshold: float = 0.9,
        obr_create_missing: bool = True,
    ) -> None:
        self.ontology = ontology
        self.store = store if store is not None else TripleStore()
        self.id_generator = id_generator or IdGenerator()
        self.linker = Linker(
            ontology,
            matchers=matchers,
            id_generator=self.id_generator,
            config=linking_config,
        )
        self.fusion = Fusion(ontology, fusion_config)
        self._external_resolver = resolver
        self.obr_confidence_threshold = obr_confidence_threshold
        self.obr_create_missing = obr_create_missing
        self.link_table: dict[str, str] = {}
        self.reports: list[ConstructionReport] = []

    # -------------------------------------------------------------- #
    # public API
    # -------------------------------------------------------------- #
    def consume(self, delta: SourceDelta) -> ConstructionReport:
        """Consume one source delta and return the construction report."""
        return self.commit(delta)

    def consume_all(self, deltas: Iterable[SourceDelta]) -> list[ConstructionReport]:
        """Consume several deltas in order (fusion is the synchronization point)."""
        return [self.consume(delta) for delta in deltas]

    def prepare(
        self,
        delta: SourceDelta,
        view_source: Callable[[Sequence[str]], list[KGEntity]] | None = None,
        link_table: dict[str, str] | None = None,
        plan: bool = True,
    ) -> PreparedDelta:
        """Run the delta's pre-fusion stages speculatively (read-only).

        *view_source* supplies the KG view to link against (defaults to
        :meth:`kg_view` over the live store) and *link_table* the link-table
        snapshot the known/unknown split of the updated partition is computed
        from.  With ``plan=False`` the blocks are only partitioned, not
        planned — a scheduler then plans each block via :meth:`plan_block`
        on its worker pool.  Preparation never mutates constructor state.
        """
        started = time.perf_counter()
        view_fn = view_source if view_source is not None else self.kg_view
        table = link_table if link_table is not None else self.link_table
        prepared = PreparedDelta(delta=delta)
        if delta.added:
            prepared.added_blocks = self._partition_blocks(delta.added)
        if delta.updated:
            _, unknown = self._split_updated(delta.updated, table)
            prepared.unknown_updated = unknown
            if unknown:
                prepared.unknown_blocks = self._partition_blocks(unknown)
        if plan:
            for block in prepared.blocks():
                self.plan_block(block, view_fn)
        prepared.prepare_seconds = time.perf_counter() - started
        return prepared

    def plan_block(
        self,
        block: BlockPlan,
        view_source: Callable[[Sequence[str]], list[KGEntity]] | None = None,
    ) -> BlockPlan:
        """Run one block's pre-fusion stage chain, capturing failures.

        A failed plan leaves ``block.plan`` as ``None`` (with the error
        recorded): the barrier replans the block serially, which surfaces any
        deterministic error exactly where the sequential path would."""
        view_fn = view_source if view_source is not None else self.kg_view
        started = time.perf_counter()
        try:
            plans = self.linker.plan(block.entities, view_fn(block.view_types))
            block.plan = plans[0] if plans else None
        except Exception as exc:  # noqa: BLE001 - speculative work must not fail the batch
            block.plan = None
            block.prepare_error = f"{type(exc).__name__}: {exc}"
        block.prepare_seconds = time.perf_counter() - started
        return block

    def commit(
        self,
        delta: SourceDelta,
        prepared: PreparedDelta | None = None,
        committed: CommittedState | None = None,
    ) -> ConstructionReport:
        """Fuse one delta into the KG — the serialized barrier half.

        With no *prepared* plans this is exactly the classic sequential
        consumption path.  With plans, each block is committed as-is when
        *committed* proves no earlier commit could have changed the block's KG
        view, and replanned serially otherwise — so the outcome is
        byte-identical either way.  The caller-supplied *committed* state is
        updated in place with this commit's effect (types touched), letting a
        scheduler chain validations across a whole batch.
        """
        report = ConstructionReport(source_id=delta.source_id, timestamp=delta.to_timestamp)
        state = committed if committed is not None else CommittedState()
        tracker = _CommitTracker(self.store)
        resolver = self._resolver()
        obr = ObjectResolutionStage(
            ontology=self.ontology,
            resolver=resolver,
            id_generator=self.id_generator,
            confidence_threshold=self.obr_confidence_threshold,
            create_missing=self.obr_create_missing,
        )

        self._commit_added(
            delta.source_id,
            delta.added,
            prepared.added_blocks if prepared is not None else None,
            obr,
            report,
            tracker,
            state,
        )
        self._commit_updated(delta, prepared, obr, report, tracker, state)
        self._commit_deleted(delta, report, tracker, state)
        self._commit_volatile(delta, report, tracker, state)

        report.entity_delta = tracker.finalize(report.fusion.subjects_touched)
        self.reports.append(report)
        return report

    def kg_view(self, entity_types: Sequence[str] = ()) -> list[KGEntity]:
        """Materialize a KG view restricted to *entity_types* (all when empty).

        This is the "extract a subgraph containing relevant entities" step of
        the linking pipeline (Section 2.3, step 1).
        """
        return self.filter_entities(materialize_entities(self.store), entity_types)

    def filter_entities(
        self, entities: dict[str, KGEntity], entity_types: Sequence[str] = ()
    ) -> list[KGEntity]:
        """Filter materialized *entities* with the KG-view type predicate.

        Factored out of :meth:`kg_view` so a batch scheduler can materialize
        the store once and slice per-block views from the shared result.
        """
        if not entity_types:
            return list(entities.values())
        allowed = set(entity_types)
        view = []
        for entity in entities.values():
            if any(self._type_matches(t, allowed) for t in entity.types) or not entity.types:
                view.append(entity)
        return view

    def entity_count(self) -> int:
        """Number of entities currently in the KG."""
        return self.store.entity_count()

    def fact_count(self) -> int:
        """Number of facts currently in the KG."""
        return self.store.fact_count()

    # -------------------------------------------------------------- #
    # per-partition commit paths
    # -------------------------------------------------------------- #
    def _commit_added(
        self,
        source_id: str,
        entities: Sequence[SourceEntity],
        blocks: list[BlockPlan] | None,
        obr: ObjectResolutionStage,
        report: ConstructionReport,
        tracker: _CommitTracker,
        state: CommittedState,
    ) -> None:
        if not entities:
            return
        linking = self._linking_for(entities, blocks, report, state)
        report.linking = linking
        report.linked_added = len(linking.assignments)
        report.new_entities = len(linking.new_entities)
        self.link_table.update(linking.assignments)

        context = StageContext(
            source_id=source_id,
            store=self.store,
            entities=list(entities),
            assignments=linking.assignments,
            resolution=obr,
            same_as=linking.same_as_links(),
            fusion_kind="added",
        )
        ResolutionStage().run(context)
        self._merge_resolution_stats(report, context.resolution_stats)
        tracker.note([
            *context.triples_by_subject,
            *(kg_id for kg_id, _ in context.same_as),
        ])
        FusionStage(self.fusion).run(context)
        report.fusion.merge(context.fusion_report)
        self._observe_commit(state, tracker, context.fusion_report)

    def _commit_updated(
        self,
        delta: SourceDelta,
        prepared: PreparedDelta | None,
        obr: ObjectResolutionStage,
        report: ConstructionReport,
        tracker: _CommitTracker,
        state: CommittedState,
    ) -> None:
        if not delta.updated:
            return
        # The split is recomputed against the live link table: entities linked
        # by this very delta's added partition (or an earlier commit of the
        # same source in the batch) are *known* by now.
        known, unknown = self._split_updated(delta.updated, self.link_table)
        # Entities never seen before (e.g. the platform was bootstrapped after
        # the source started publishing) fall back to the full linking path.
        if unknown:
            blocks = None
            if prepared is not None and (
                [e.entity_id for e in unknown]
                == [e.entity_id for e in prepared.unknown_updated]
            ):
                blocks = prepared.unknown_blocks
            self._commit_added(delta.source_id, unknown, blocks, obr, report, tracker, state)
        if not known:
            return
        assignments = {e.entity_id: self.link_table[e.entity_id] for e in known}
        report.updated_entities = len(known)
        context = StageContext(
            source_id=delta.source_id,
            store=self.store,
            entities=known,
            assignments=assignments,
            resolution=obr,
            same_as=[(kg_id, source_id) for source_id, kg_id in assignments.items()],
            fusion_kind="updated",
        )
        ResolutionStage().run(context)
        self._merge_resolution_stats(report, context.resolution_stats)
        tracker.note([
            *context.triples_by_subject,
            *(kg_id for kg_id, _ in context.same_as),
        ])
        FusionStage(self.fusion).run(context)
        report.fusion.merge(context.fusion_report)
        self._observe_commit(state, tracker, context.fusion_report)

    def _commit_deleted(
        self,
        delta: SourceDelta,
        report: ConstructionReport,
        tracker: _CommitTracker,
        state: CommittedState,
    ) -> None:
        if not delta.deleted:
            return
        subjects = []
        for entity in delta.deleted:
            kg_id = self.link_table.get(entity.entity_id)
            if kg_id is not None:
                subjects.append(kg_id)
        report.deleted_entities = len(subjects)
        context = StageContext(
            source_id=delta.source_id,
            store=self.store,
            subjects=subjects,
            fusion_kind="deleted",
        )
        tracker.note(subjects)
        FusionStage(self.fusion).run(context)
        report.fusion.merge(context.fusion_report)
        self._observe_commit(state, tracker, context.fusion_report)

    def _commit_volatile(
        self,
        delta: SourceDelta,
        report: ConstructionReport,
        tracker: _CommitTracker,
        state: CommittedState,
    ) -> None:
        if not delta.volatile:
            return
        triples_by_subject: dict[str, list[ExtendedTriple]] = {}
        count = 0
        for entity in delta.volatile:
            kg_id = self.link_table.get(entity.entity_id)
            if kg_id is None:
                continue
            count += 1
            triples = [t.with_subject(kg_id) for t in entity.to_triples()]
            triples_by_subject.setdefault(kg_id, []).extend(triples)
        report.volatile_entities = count
        context = StageContext(
            source_id=delta.source_id,
            store=self.store,
            triples_by_subject=triples_by_subject,
            fusion_kind="volatile",
        )
        tracker.note(triples_by_subject)
        FusionStage(self.fusion).run(context)
        report.fusion.merge(context.fusion_report)
        self._observe_commit(state, tracker, context.fusion_report)

    # -------------------------------------------------------------- #
    # plan validation and assignment
    # -------------------------------------------------------------- #
    def _linking_for(
        self,
        entities: Sequence[SourceEntity],
        blocks: list[BlockPlan] | None,
        report: ConstructionReport,
        state: CommittedState,
    ) -> LinkingResult:
        """Turn prepared block plans (or a fresh serial run) into assignments.

        Valid plans are committed as prepared; blocks whose KG view may have
        changed since preparation — or that were never planned — are replanned
        here, against the live store, exactly as the sequential path would.
        Identifier assignment happens last, in sorted type order, so the mint
        sequence is independent of which plans were reused.
        """
        by_type: dict[str, list[SourceEntity]] = {}
        for entity in entities:
            by_type.setdefault(entity.entity_type, []).append(entity)
        plans: dict[str, TypeLinkPlan] = {}
        for block in blocks or ():
            if block.plan is not None and self.block_valid(state, block):
                plans[block.entity_type] = block.plan
        missing = [t for t in sorted(by_type) if t not in plans]
        report.plans_reused += len(plans)
        if missing:
            if blocks:
                report.plans_replanned += len(missing)
            payload_types = tuple({e.entity_type for e in entities if e.entity_type})
            view = self.kg_view(payload_types)
            kg_by_type = records_by_type(
                [LinkableRecord.from_kg_entity(e) for e in view]
            )
            for entity_type in missing:
                records = [
                    LinkableRecord.from_source_entity(e) for e in by_type[entity_type]
                ]
                plans[entity_type] = self.linker.plan_type(
                    entity_type,
                    records,
                    self.linker.relevant_kg_records(entity_type, kg_by_type),
                )
        return self.linker.assign(plans[t] for t in sorted(by_type))

    def block_valid(self, state: CommittedState, block: BlockPlan) -> bool:
        """Whether a prepared block's KG view is provably unchanged.

        The view is unchanged when nothing was committed since preparation,
        or when every committed subject's types (before and after its commit)
        fail the block's view filter and no untyped subject was involved —
        untyped entities appear in every view, so they conservatively
        invalidate everything."""
        if not state.any_change:
            return True
        if state.untyped or block.unfiltered:
            return False
        allowed = set(block.view_types)
        return not any(self._type_matches(t, allowed) for t in state.types)

    def _observe_commit(
        self,
        state: CommittedState,
        tracker: _CommitTracker,
        fusion_report: FusionReport | None,
    ) -> None:
        """Fold one fusion step's touched subjects into the committed state.

        A subject counts as untyped when it was *alive without types at any
        point around the commit* — before it (an untyped entity sat in every
        snapshot view, so typing or deleting it changes all of them) or after
        it (it now sits in every view).  Only looking at the union of pre and
        post types would miss the untyped→typed transition and let a stale
        plan survive validation.
        """
        if fusion_report is None or not fusion_report.subjects_touched:
            return
        state.any_change = True
        for subject in fusion_report.subjects_touched:
            now_alive, now_types = tracker.alive(subject)
            pre_alive = tracker.pre_existing.get(subject, False)
            pre_types = tracker.pre_types.get(subject, set())
            if (pre_alive and not pre_types) or (now_alive and not now_types):
                state.untyped = True
            state.types |= now_types | pre_types

    # -------------------------------------------------------------- #
    # helpers
    # -------------------------------------------------------------- #
    def _partition_blocks(self, entities: Sequence[SourceEntity]) -> list[BlockPlan]:
        """Partition a payload into per-entity-type blocks (untyped last).

        Typed blocks link against the view of their own type; the untyped
        block is compared against the full payload-typed view, exactly as the
        sequential path derives its per-type candidate sets."""
        payload_types = tuple({e.entity_type for e in entities if e.entity_type})
        by_type: dict[str, list[SourceEntity]] = {}
        for entity in entities:
            by_type.setdefault(entity.entity_type, []).append(entity)
        blocks = []
        for entity_type in sorted(by_type):
            if entity_type:
                view_types: tuple[str, ...] = (entity_type,)
                unfiltered = False
            else:
                view_types = payload_types
                unfiltered = not payload_types
            blocks.append(
                BlockPlan(
                    entity_type=entity_type,
                    view_types=view_types,
                    unfiltered=unfiltered,
                    entities=by_type[entity_type],
                )
            )
        return blocks

    def _split_updated(
        self, entities: Sequence[SourceEntity], table: dict[str, str]
    ) -> tuple[list[SourceEntity], list[SourceEntity]]:
        known: list[SourceEntity] = []
        unknown: list[SourceEntity] = []
        for entity in entities:
            (known if entity.entity_id in table else unknown).append(entity)
        return known, unknown

    def _merge_resolution_stats(
        self, report: ConstructionReport, stats: ObjectResolutionStats | None
    ) -> None:
        if stats is None:
            return
        report.object_resolution.examined += stats.examined
        report.object_resolution.resolved += stats.resolved
        report.object_resolution.created += stats.created
        report.object_resolution.unresolved += stats.unresolved

    def _resolver(self) -> ObjectResolver:
        if self._external_resolver is not None:
            return self._external_resolver
        return NameIndexResolver(self.store, self.ontology)

    def _type_matches(self, entity_type: str, allowed: set[str]) -> bool:
        if entity_type in allowed:
            return True
        if not self.ontology.has_type(entity_type):
            return False
        return any(
            self.ontology.has_type(candidate)
            and self.ontology.compatible_types(entity_type, candidate)
            for candidate in allowed
        )
