"""Incremental, delta-based knowledge construction (Section 2.4, Figure 5).

The :class:`IncrementalConstructor` consumes :class:`SourceDelta` payloads and
applies the per-partition paths of the paper's parallel construction pipeline:

* **Added** entities run the full linking pipeline (blocking, matching,
  clustering) against a KG view of the relevant entity types, then object
  resolution, then fusion;
* **Updated** / **Deleted** entities are *already linked* — their KG ids are
  looked up in the link table (``same_as`` state) and only object resolution
  and fusion run;
* **Volatile** payloads bypass linking entirely and take the optimized
  partition-overwrite fusion path.

The constructor keeps the link table (source entity id → KG id) across runs so
that repeated consumption of the same source is incremental.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.construction.fusion import Fusion, FusionConfig, FusionReport
from repro.construction.linking import Linker, LinkingConfig, LinkingResult
from repro.construction.matching import MatcherRegistry
from repro.construction.object_resolution import (
    NameIndexResolver,
    ObjectResolutionStage,
    ObjectResolutionStats,
    ObjectResolver,
)
from repro.model.delta import SourceDelta
from repro.model.entity import KGEntity, SourceEntity, materialize_entities
from repro.model.identifiers import IdGenerator
from repro.model.ontology import Ontology
from repro.model.triples import ExtendedTriple, TripleStore


@dataclass
class ConstructionReport:
    """Summary of consuming one source delta."""

    source_id: str
    timestamp: int = 0
    linked_added: int = 0
    new_entities: int = 0
    updated_entities: int = 0
    deleted_entities: int = 0
    volatile_entities: int = 0
    linking: LinkingResult | None = None
    fusion: FusionReport = field(default_factory=FusionReport)
    object_resolution: ObjectResolutionStats = field(default_factory=ObjectResolutionStats)

    def summary(self) -> dict[str, object]:
        """Compact dictionary view used in logs and tests."""
        return {
            "source_id": self.source_id,
            "timestamp": self.timestamp,
            "linked_added": self.linked_added,
            "new_entities": self.new_entities,
            "updated": self.updated_entities,
            "deleted": self.deleted_entities,
            "volatile": self.volatile_entities,
            "facts_added": self.fusion.facts_added,
            "facts_reinforced": self.fusion.facts_reinforced,
            "facts_removed": self.fusion.facts_removed,
        }


class IncrementalConstructor:
    """Delta-based construction of the KG over a shared triple store."""

    def __init__(
        self,
        ontology: Ontology,
        store: TripleStore | None = None,
        matchers: MatcherRegistry | None = None,
        linking_config: LinkingConfig | None = None,
        fusion_config: FusionConfig | None = None,
        resolver: ObjectResolver | None = None,
        id_generator: IdGenerator | None = None,
        obr_confidence_threshold: float = 0.9,
        obr_create_missing: bool = True,
    ) -> None:
        self.ontology = ontology
        self.store = store if store is not None else TripleStore()
        self.id_generator = id_generator or IdGenerator()
        self.linker = Linker(
            ontology,
            matchers=matchers,
            id_generator=self.id_generator,
            config=linking_config,
        )
        self.fusion = Fusion(ontology, fusion_config)
        self._external_resolver = resolver
        self.obr_confidence_threshold = obr_confidence_threshold
        self.obr_create_missing = obr_create_missing
        self.link_table: dict[str, str] = {}
        self.reports: list[ConstructionReport] = []

    # -------------------------------------------------------------- #
    # public API
    # -------------------------------------------------------------- #
    def consume(self, delta: SourceDelta) -> ConstructionReport:
        """Consume one source delta and return the construction report."""
        report = ConstructionReport(source_id=delta.source_id, timestamp=delta.to_timestamp)
        resolver = self._resolver()
        obr = ObjectResolutionStage(
            ontology=self.ontology,
            resolver=resolver,
            id_generator=self.id_generator,
            confidence_threshold=self.obr_confidence_threshold,
            create_missing=self.obr_create_missing,
        )

        self._process_added(delta, obr, report)
        self._process_updated(delta, obr, report)
        self._process_deleted(delta, report)
        self._process_volatile(delta, report)

        self.reports.append(report)
        return report

    def consume_all(self, deltas: Iterable[SourceDelta]) -> list[ConstructionReport]:
        """Consume several deltas in order (fusion is the synchronization point)."""
        return [self.consume(delta) for delta in deltas]

    def kg_view(self, entity_types: Sequence[str] = ()) -> list[KGEntity]:
        """Materialize a KG view restricted to *entity_types* (all when empty).

        This is the "extract a subgraph containing relevant entities" step of
        the linking pipeline (Section 2.3, step 1).
        """
        entities = materialize_entities(self.store)
        if not entity_types:
            return list(entities.values())
        allowed = set(entity_types)
        view = []
        for entity in entities.values():
            if any(self._type_matches(t, allowed) for t in entity.types) or not entity.types:
                view.append(entity)
        return view

    def entity_count(self) -> int:
        """Number of entities currently in the KG."""
        return self.store.entity_count()

    def fact_count(self) -> int:
        """Number of facts currently in the KG."""
        return self.store.fact_count()

    # -------------------------------------------------------------- #
    # per-partition paths
    # -------------------------------------------------------------- #
    def _process_added(
        self, delta: SourceDelta, obr: ObjectResolutionStage, report: ConstructionReport
    ) -> None:
        if not delta.added:
            return
        payload_types = tuple({e.entity_type for e in delta.added if e.entity_type})
        kg_view = self.kg_view(payload_types)
        linking = self.linker.link(delta.added, kg_view)
        report.linking = linking
        report.linked_added = len(linking.assignments)
        report.new_entities = len(linking.new_entities)
        self.link_table.update(linking.assignments)

        triples_by_subject = self._linked_triples(delta.added, linking.assignments, obr, report)
        fusion_report = self.fusion.fuse_added(
            self.store, triples_by_subject, same_as=linking.same_as_links()
        )
        report.fusion.merge(fusion_report)

    def _process_updated(
        self, delta: SourceDelta, obr: ObjectResolutionStage, report: ConstructionReport
    ) -> None:
        if not delta.updated:
            return
        known, unknown = [], []
        for entity in delta.updated:
            (known if entity.entity_id in self.link_table else unknown).append(entity)
        # Entities never seen before (e.g. the platform was bootstrapped after
        # the source started publishing) fall back to the full linking path.
        if unknown:
            fallback = SourceDelta(source_id=delta.source_id, added=unknown,
                                   to_timestamp=delta.to_timestamp)
            self._process_added(fallback, obr, report)
        if not known:
            return
        assignments = {e.entity_id: self.link_table[e.entity_id] for e in known}
        report.updated_entities = len(known)
        triples_by_subject = self._linked_triples(known, assignments, obr, report)
        same_as = [(kg_id, source_id) for source_id, kg_id in assignments.items()]
        fusion_report = self.fusion.fuse_updated(
            self.store, delta.source_id, triples_by_subject, same_as
        )
        report.fusion.merge(fusion_report)

    def _process_deleted(self, delta: SourceDelta, report: ConstructionReport) -> None:
        if not delta.deleted:
            return
        subjects = []
        for entity in delta.deleted:
            kg_id = self.link_table.get(entity.entity_id)
            if kg_id is not None:
                subjects.append(kg_id)
        report.deleted_entities = len(subjects)
        fusion_report = self.fusion.fuse_deleted(self.store, delta.source_id, subjects)
        report.fusion.merge(fusion_report)

    def _process_volatile(self, delta: SourceDelta, report: ConstructionReport) -> None:
        if not delta.volatile:
            return
        triples_by_subject: dict[str, list[ExtendedTriple]] = {}
        count = 0
        for entity in delta.volatile:
            kg_id = self.link_table.get(entity.entity_id)
            if kg_id is None:
                continue
            count += 1
            triples = [t.with_subject(kg_id) for t in entity.to_triples()]
            triples_by_subject.setdefault(kg_id, []).extend(triples)
        report.volatile_entities = count
        fusion_report = self.fusion.fuse_volatile(
            self.store, delta.source_id, triples_by_subject
        )
        report.fusion.merge(fusion_report)

    # -------------------------------------------------------------- #
    # helpers
    # -------------------------------------------------------------- #
    def _linked_triples(
        self,
        entities: Sequence[SourceEntity],
        assignments: dict[str, str],
        obr: ObjectResolutionStage,
        report: ConstructionReport,
    ) -> dict[str, list[ExtendedTriple]]:
        # Register the payload's own entities with the resolver first: object
        # resolution must be able to point at entities that arrive in the same
        # payload (e.g. a song referring to an artist shipped alongside it),
        # otherwise it would mint spurious duplicates.
        if isinstance(obr.resolver, NameIndexResolver):
            for entity in entities:
                kg_id = assignments.get(entity.entity_id)
                if kg_id is not None:
                    obr.resolver.add_entity(kg_id, entity.names(), entity.entity_type)
        all_triples: list[ExtendedTriple] = []
        for entity in entities:
            kg_id = assignments.get(entity.entity_id)
            if kg_id is None:
                continue
            all_triples.extend(t.with_subject(kg_id) for t in entity.to_triples())
        resolved, created, stats = obr.resolve_triples(all_triples)
        report.object_resolution.examined += stats.examined
        report.object_resolution.resolved += stats.resolved
        report.object_resolution.created += stats.created
        report.object_resolution.unresolved += stats.unresolved

        triples_by_subject: dict[str, list[ExtendedTriple]] = {}
        for triple in [*resolved, *created]:
            triples_by_subject.setdefault(triple.subject, []).append(triple)
        return triples_by_subject

    def _resolver(self) -> ObjectResolver:
        if self._external_resolver is not None:
            return self._external_resolver
        return NameIndexResolver(self.store, self.ontology)

    def _type_matches(self, entity_type: str, allowed: set[str]) -> bool:
        if entity_type in allowed:
            return True
        if not self.ontology.has_type(entity_type):
            return False
        return any(
            self.ontology.has_type(candidate)
            and self.ontology.compatible_types(entity_type, candidate)
            for candidate in allowed
        )
