"""Fusion: merge linked source payloads into a consistent KG (Section 2.3).

Fusion is non-destructive: facts are never overwritten, instead provenance is
extended when a source re-asserts an existing fact and removed when a source
retracts it.  The stage handles three kinds of work:

* **simple facts** — an outer join with the KG triples: existing facts gain
  the new source in their provenance, new facts are added;
* **composite facts** — relationship nodes from the source are compared to the
  KG's relationship nodes for the same ``(subject, predicate)``; nodes with
  sufficient fact overlap are merged (the source triples are rewritten onto
  the existing relationship id), others are added as new nodes;
* **conflicts** — functional (single-valued) predicates with disagreeing
  values are scored with truth discovery; the per-value confidence is stored
  and exposed so downstream consumers (targeted fact curation, serving views)
  can pick the best value or flag the fact for auditing.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.construction.stages import StageContext
from repro.construction.truth_discovery import Claim, TruthDiscovery, TruthDiscoveryResult
from repro.errors import FusionError
from repro.model.entity import SAME_AS_PREDICATE, RelationshipNode
from repro.model.ontology import Ontology
from repro.model.provenance import Provenance
from repro.model.triples import ExtendedTriple, TripleStore


@dataclass
class FusionReport:
    """Counters for one fusion pass."""

    facts_added: int = 0
    facts_reinforced: int = 0      # existing facts whose provenance gained a source
    relationship_nodes_merged: int = 0
    relationship_nodes_added: int = 0
    facts_removed: int = 0
    subjects_touched: set[str] = field(default_factory=set)
    conflicts_detected: int = 0

    def merge(self, other: "FusionReport") -> "FusionReport":
        """Accumulate another report into this one and return self."""
        self.facts_added += other.facts_added
        self.facts_reinforced += other.facts_reinforced
        self.relationship_nodes_merged += other.relationship_nodes_merged
        self.relationship_nodes_added += other.relationship_nodes_added
        self.facts_removed += other.facts_removed
        self.subjects_touched |= other.subjects_touched
        self.conflicts_detected += other.conflicts_detected
        return self


@dataclass
class FusionConfig:
    """Fusion thresholds."""

    relationship_overlap_threshold: float = 0.5
    run_truth_discovery: bool = True


class Fusion:
    """Fuse linked, object-resolved triples into the KG triple store."""

    def __init__(self, ontology: Ontology, config: FusionConfig | None = None) -> None:
        self.ontology = ontology
        self.config = config or FusionConfig()
        self._truth = TruthDiscovery()
        self.last_truth_result: TruthDiscoveryResult | None = None

    # -------------------------------------------------------------- #
    # add / update paths
    # -------------------------------------------------------------- #
    def fuse_added(
        self,
        store: TripleStore,
        triples_by_subject: dict[str, list[ExtendedTriple]],
        same_as: Iterable[tuple[str, str]] = (),
    ) -> FusionReport:
        """Fuse newly linked payloads (the *Added* partition)."""
        report = FusionReport()
        for subject, triples in sorted(triples_by_subject.items()):
            report.merge(self._fuse_subject(store, subject, triples))
        report.merge(self._record_same_as(store, same_as))
        if self.config.run_truth_discovery:
            report.conflicts_detected = self._score_conflicts(store, report.subjects_touched)
        return report

    def fuse_updated(
        self,
        store: TripleStore,
        source_id: str,
        triples_by_subject: dict[str, list[ExtendedTriple]],
        same_as: Iterable[tuple[str, str]] = (),
    ) -> FusionReport:
        """Fuse the *Updated* partition of one source.

        The source's previous contribution to each updated subject is
        retracted first (provenance removal, purging facts left unsupported),
        then the new payload is fused like an add — which is exactly the
        "retract then re-assert" semantics of an upstream edit.
        """
        report = FusionReport()
        report.facts_removed += self._retract_source_facts(
            store, sorted(triples_by_subject), source_id
        )
        report.merge(self.fuse_added(store, triples_by_subject, same_as))
        return report

    def fuse_deleted(
        self, store: TripleStore, source_id: str, subjects: Iterable[str]
    ) -> FusionReport:
        """Fuse the *Deleted* partition: retract one source from the subjects."""
        report = FusionReport()
        deleted = sorted(set(subjects))
        report.facts_removed += self._retract_source_facts(store, deleted, source_id)
        report.subjects_touched |= set(deleted)
        return report

    def fuse_volatile(
        self,
        store: TripleStore,
        source_id: str,
        triples_by_subject: dict[str, list[ExtendedTriple]],
    ) -> FusionReport:
        """Overwrite the volatile partition of a source (optimized path, §2.4).

        Volatile predicates (popularity and friends) bypass the join-based
        fusion: the source's previous volatile facts for each subject are
        dropped wholesale and replaced by the fresh ones.
        """
        volatile_predicates = self.ontology.volatile_predicates()
        report = FusionReport()
        for subject, triples in sorted(triples_by_subject.items()):
            report.facts_removed += store.retract_source_from_subjects(
                source_id, (subject,), only_predicates=volatile_predicates
            )
            for triple in triples:
                if triple.predicate in volatile_predicates:
                    self._add_fact(store, triple, report)
            report.subjects_touched.add(subject)
        return report

    # -------------------------------------------------------------- #
    # conflict scoring
    # -------------------------------------------------------------- #
    def resolve_functional_conflicts(
        self, store: TripleStore, subjects: Iterable[str] | None = None
    ) -> TruthDiscoveryResult:
        """Run truth discovery over functional predicates with conflicts.

        Returns the full result; the resolved best value per ``(subject,
        predicate)`` is what serving views use when they need a single value.
        """
        claims: list[Claim] = []
        subject_pool = set(subjects) if subjects is not None else store.subjects()
        for subject in subject_pool:
            grouped: dict[str, list[ExtendedTriple]] = defaultdict(list)
            for triple in store.facts_about(subject):
                if triple.is_composite:
                    continue
                if not self.ontology.has_predicate(triple.predicate):
                    continue
                if self.ontology.predicate(triple.predicate).is_functional:
                    grouped[triple.predicate].append(triple)
            for predicate, triples in grouped.items():
                if len({t.obj for t in triples}) < 2:
                    continue
                for triple in triples:
                    for reference in triple.provenance.references:
                        claims.append(
                            Claim(
                                item=(subject, predicate),
                                value=triple.obj,
                                source_id=reference.source_id,
                                prior_trust=reference.trust,
                            )
                        )
        result = self._truth.run(claims)
        self.last_truth_result = result
        return result

    # -------------------------------------------------------------- #
    # internals
    # -------------------------------------------------------------- #
    def _fuse_subject(
        self, store: TripleStore, subject: str, triples: Sequence[ExtendedTriple]
    ) -> FusionReport:
        report = FusionReport()
        report.subjects_touched.add(subject)
        simple = [t for t in triples if not t.is_composite]
        composite = [t for t in triples if t.is_composite]

        for triple in simple:
            self._add_fact(store, triple, report)

        # Group incoming composite triples into relationship nodes.
        incoming_nodes: dict[tuple[str, str], list[ExtendedTriple]] = defaultdict(list)
        for triple in composite:
            incoming_nodes[(triple.predicate, triple.relationship_id)].append(triple)

        for (predicate, node_id), node_triples in sorted(incoming_nodes.items()):
            merged = self._merge_relationship_node(
                store, subject, predicate, node_id, node_triples, report
            )
            if merged:
                report.relationship_nodes_merged += 1
            else:
                report.relationship_nodes_added += 1
        return report

    def _merge_relationship_node(
        self,
        store: TripleStore,
        subject: str,
        predicate: str,
        node_id: str,
        node_triples: list[ExtendedTriple],
        report: FusionReport,
    ) -> bool:
        incoming = RelationshipNode(
            relationship_id=node_id,
            predicate=predicate,
            facts={t.relationship_predicate: t.obj for t in node_triples},
        )
        existing_nodes = store.relationship_facts(subject, predicate)
        best_id, best_overlap = None, 0.0
        for existing_id, existing_triples in existing_nodes.items():
            existing = RelationshipNode(
                relationship_id=existing_id,
                predicate=predicate,
                facts={t.relationship_predicate: t.obj for t in existing_triples},
            )
            overlap = incoming.overlap(existing)
            if overlap > best_overlap:
                best_overlap, best_id = overlap, existing_id

        target_id = node_id
        merged = False
        if best_id is not None and best_overlap >= self.config.relationship_overlap_threshold:
            target_id = best_id
            merged = True
        for triple in node_triples:
            rewritten = ExtendedTriple(
                subject=subject,
                predicate=predicate,
                obj=triple.obj,
                relationship_id=target_id,
                relationship_predicate=triple.relationship_predicate,
                locale=triple.locale,
                provenance=triple.provenance.copy(),
            )
            self._add_fact(store, rewritten, report)
        return merged

    def _add_fact(
        self, store: TripleStore, triple: ExtendedTriple, report: FusionReport
    ) -> None:
        before = store.fact_count()
        store.add(triple)
        if store.fact_count() == before:
            report.facts_reinforced += 1
        else:
            report.facts_added += 1

    def _retract_source_facts(
        self, store: TripleStore, subjects: Sequence[str], source_id: str
    ) -> int:
        return store.retract_source_from_subjects(
            source_id, subjects, skip_predicates=(SAME_AS_PREDICATE,)
        )

    def _record_same_as(
        self, store: TripleStore, same_as: Iterable[tuple[str, str]]
    ) -> FusionReport:
        report = FusionReport()
        for kg_id, source_entity_id in same_as:
            source_id = source_entity_id.split(":", 1)[0]
            triple = ExtendedTriple(
                subject=kg_id,
                predicate=SAME_AS_PREDICATE,
                obj=source_entity_id,
                provenance=Provenance.from_source(source_id, 0.99),
            )
            self._add_fact(store, triple, report)
            report.subjects_touched.add(kg_id)
        return report

    def _score_conflicts(self, store: TripleStore, subjects: set[str]) -> int:
        result = self.resolve_functional_conflicts(store, subjects)
        return len({item for (item, _), _ in result.value_confidence.items()})


@dataclass
class FusionStage:
    """Stage 6 of the construction pipeline: the synchronization barrier.

    Fusion is the only stage that mutates the shared triple store, so it is
    the single serialized point of the otherwise-parallel pipeline (Section
    2.4, Figure 5).  The context's ``fusion_kind`` selects the partition path:
    ``"added"`` (outer-join fusion of newly linked payloads), ``"updated"``
    (retract-then-reassert), ``"deleted"`` (source retraction), or
    ``"volatile"`` (partition overwrite).  The resulting
    :class:`FusionReport` lands in ``context.fusion_report``.
    """

    fusion: Fusion
    name: str = "fusion"

    def run(self, context: StageContext) -> StageContext:
        """Fuse the context's resolved triples into the store."""
        store = context.store
        if store is None:
            raise FusionError("FusionStage needs context.store to be set")
        triples = context.triples_by_subject or {}
        if context.fusion_kind == "added":
            report = self.fusion.fuse_added(store, triples, same_as=context.same_as)
        elif context.fusion_kind == "updated":
            report = self.fusion.fuse_updated(
                store, context.source_id, triples, context.same_as
            )
        elif context.fusion_kind == "deleted":
            report = self.fusion.fuse_deleted(store, context.source_id, context.subjects)
        elif context.fusion_kind == "volatile":
            report = self.fusion.fuse_volatile(store, context.source_id, triples)
        else:
            raise FusionError(f"unknown fusion kind {context.fusion_kind!r}")
        context.fusion_report = report
        return context
