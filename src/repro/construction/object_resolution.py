"""Object Resolution (OBR): map literal objects to KG entity identifiers.

Section 2.3: many triples carry a string literal (e.g. a person name) in the
object field of a reference predicate.  OBR resolves such literals to existing
KG entities — or creates new entities — so cross-references in the KG are
normalized.  The production system backs OBR with the NERD stack (Section 5.2);
this module defines the resolver interface, a lightweight name-index resolver
used for bootstrapping and tests, and the stage that rewrites linked triples.

The NERD service (:mod:`repro.ml.nerd.service`) satisfies the
:class:`ObjectResolver` protocol structurally, so it can be plugged in without
an import dependency from the ML stack onto construction.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Protocol, Sequence

from repro.construction.stages import StageContext
from repro.errors import LinkingError
from repro.ml.similarity import jaro_winkler_normalized, normalize_string
from repro.model.entity import NAME_PREDICATES
from repro.model.identifiers import IdGenerator, is_kg_identifier
from repro.model.ontology import Ontology, ValueKind
from repro.model.provenance import Provenance
from repro.model.triples import ExtendedTriple, TripleStore


@dataclass
class ResolutionContext:
    """Context handed to a resolver alongside the mention."""

    subject_id: str = ""
    predicate: str = ""
    expected_types: tuple[str, ...] = ()
    context_values: tuple[str, ...] = ()   # other literals about the same subject
    locale: str = "en"


@dataclass
class Resolution:
    """A resolver's answer for one mention."""

    entity_id: str
    confidence: float
    candidate_count: int = 0
    created: bool = False


class ObjectResolver(Protocol):
    """Anything that can resolve a text mention to a KG entity identifier."""

    def resolve(self, mention: str, context: ResolutionContext) -> Resolution | None:
        """Return the best resolution for *mention*, or ``None`` to reject."""
        ...


class NameIndexResolver:
    """Resolve mentions by (fuzzy) lookup in a name → entity index.

    This is the bootstrap resolver: exact normalized-name hits are returned
    with high confidence; otherwise the best fuzzy match above a threshold
    wins.  Entity-type hints restrict the candidate set exactly like the
    "NERD + type hints" configuration in Figure 14(b).
    """

    def __init__(
        self,
        store: TripleStore,
        ontology: Ontology | None = None,
        fuzzy_threshold: float = 0.90,
    ) -> None:
        self.ontology = ontology
        self.fuzzy_threshold = fuzzy_threshold
        self._names: dict[str, set[str]] = defaultdict(set)   # normalized name -> entity ids
        self._types: dict[str, set[str]] = defaultdict(set)   # entity id -> types
        #: name -> (length, character bitmask, repeat surplus, character counts)
        self._name_info: dict[str, tuple[int, int, int, dict[str, int]]] = {}
        self.refresh(store)

    def refresh(self, store: TripleStore) -> None:
        """Rebuild the index from the current KG triple store."""
        self._names.clear()
        self._types.clear()
        self._name_info.clear()
        for predicate in NAME_PREDICATES:
            for triple in store.facts_with_predicate(predicate):
                normalized = normalize_string(triple.obj)
                if normalized:
                    self._names[normalized].add(triple.subject)
                    self._index_info(normalized)
        for triple in store.facts_with_predicate("type"):
            self._types[triple.subject].add(str(triple.obj))

    def add_entity(self, entity_id: str, names: Iterable[str], entity_type: str = "") -> None:
        """Register a newly created entity so later mentions resolve to it."""
        for name in names:
            normalized = normalize_string(name)
            if normalized:
                self._names[normalized].add(entity_id)
                self._index_info(normalized)
        if entity_type:
            self._types[entity_id].add(entity_type)

    def resolve(self, mention: str, context: ResolutionContext) -> Resolution | None:
        """Resolve *mention* against the name index.

        The fuzzy scan prunes index names that provably cannot reach the
        threshold before computing any similarity: Jaro-Winkler with prefix
        weight 0.1 is bounded by ``0.6 * jaro + 0.4``, and Jaro itself is
        bounded by the character-multiset overlap of the two strings — so a
        length-ratio check and a shared-character count eliminate the vast
        majority of candidates with exact results (the scan was the dominant
        cost of object resolution, which is the serialized half of the
        parallel construction pipeline).
        """
        normalized = normalize_string(mention)
        if not normalized:
            return None
        exact = self._filter_by_type(self._names.get(normalized, set()), context)
        if exact:
            chosen = sorted(exact)[0]
            return Resolution(entity_id=chosen, confidence=0.97, candidate_count=len(exact))
        best_id, best_score, candidates = None, 0.0, 0
        # jw = jaro + prefix * 0.1 * (1 - jaro), prefix <= 4  =>  jw <= 0.6 * jaro + 0.4
        min_jaro = (self.fuzzy_threshold - 0.4) / 0.6
        needed = 3.0 * min_jaro - 1.0    # m/|a| + m/|b| must reach this
        q_len, q_mask, q_surplus, q_counts = self._string_info(normalized)
        for name, (n_len, n_mask, n_surplus, n_counts) in self._name_info.items():
            if min_jaro > 0:
                # Jaro match count m is bounded by min(|a|, |b|) ...
                shorter = q_len if q_len < n_len else n_len
                if shorter / q_len + shorter / n_len < needed:
                    continue
                # ... by the distinct shared characters plus the smaller
                # repeat surplus (multiset intersection <= distinct common +
                # min surplus; bitmask collisions only loosen the bound) ...
                bound = (q_mask & n_mask).bit_count() + (
                    q_surplus if q_surplus < n_surplus else n_surplus
                )
                if bound < shorter and bound / q_len + bound / n_len < needed:
                    continue
                # ... and exactly by the character-multiset intersection.
                common = sum(
                    count if count < q_counts.get(char, 0) else q_counts.get(char, 0)
                    for char, count in n_counts.items()
                )
                if common / q_len + common / n_len < needed:
                    continue
            score = jaro_winkler_normalized(normalized, name)
            if score < self.fuzzy_threshold:
                continue
            filtered = self._filter_by_type(self._names[name], context)
            if not filtered:
                continue
            candidates += len(filtered)
            if score > best_score:
                best_score = score
                best_id = sorted(filtered)[0]
        if best_id is None:
            return None
        return Resolution(entity_id=best_id, confidence=best_score, candidate_count=candidates)

    def _index_info(self, normalized: str) -> None:
        if normalized not in self._name_info:
            self._name_info[normalized] = self._string_info(normalized)

    @staticmethod
    def _string_info(normalized: str) -> tuple[int, int, int, dict[str, int]]:
        """``(length, character bitmask, repeat surplus, character counts)``.

        The bitmask folds characters onto 64 bits (collisions only loosen the
        pruning bound, never tighten it); the repeat surplus is ``length -
        distinct characters`` — together they bound the character-multiset
        intersection from above without touching the counts dict.
        """
        counts: dict[str, int] = {}
        mask = 0
        for char in normalized:
            counts[char] = counts.get(char, 0) + 1
            mask |= 1 << (ord(char) & 63)
        return len(normalized), mask, len(normalized) - len(counts), counts

    def _filter_by_type(self, entity_ids: set[str], context: ResolutionContext) -> set[str]:
        if not context.expected_types:
            return set(entity_ids)
        filtered = set()
        for entity_id in entity_ids:
            entity_types = self._types.get(entity_id, set())
            if not entity_types:
                filtered.add(entity_id)
                continue
            for entity_type in entity_types:
                if any(
                    self._compatible(entity_type, expected)
                    for expected in context.expected_types
                ):
                    filtered.add(entity_id)
                    break
        return filtered

    def _compatible(self, entity_type: str, expected: str) -> bool:
        if self.ontology is None or not self.ontology.has_type(entity_type):
            return entity_type == expected
        if not self.ontology.has_type(expected):
            return entity_type == expected
        return self.ontology.compatible_types(entity_type, expected)


@dataclass
class ObjectResolutionStats:
    """Counters describing one object-resolution pass."""

    examined: int = 0
    resolved: int = 0
    created: int = 0
    unresolved: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view for logging and tests."""
        return {
            "examined": self.examined,
            "resolved": self.resolved,
            "created": self.created,
            "unresolved": self.unresolved,
        }


@dataclass
class ObjectResolutionStage:
    """Rewrite reference-predicate objects of linked triples to KG ids."""

    ontology: Ontology
    resolver: ObjectResolver
    id_generator: IdGenerator | None = None
    confidence_threshold: float = 0.9
    create_missing: bool = False
    _creations: dict[str, str] = field(default_factory=dict)

    def resolve_triples(
        self, triples: Sequence[ExtendedTriple]
    ) -> tuple[list[ExtendedTriple], list[ExtendedTriple], ObjectResolutionStats]:
        """Resolve objects in *triples*.

        Returns ``(resolved_triples, new_entity_triples, stats)`` where
        ``new_entity_triples`` carries name/type facts for entities minted for
        unresolvable mentions (only when ``create_missing`` is enabled).
        """
        stats = ObjectResolutionStats()
        resolved: list[ExtendedTriple] = []
        new_entity_triples: list[ExtendedTriple] = []
        context_cache: dict[str, tuple[str, ...]] = {}

        for triple in triples:
            predicate_name = triple.relationship_predicate or triple.predicate
            if not self._needs_resolution(triple, predicate_name):
                resolved.append(triple)
                continue
            stats.examined += 1
            context = ResolutionContext(
                subject_id=triple.subject,
                predicate=predicate_name,
                expected_types=self._expected_types(predicate_name),
                context_values=self._context_values(triple, triples, context_cache),
                locale=triple.locale,
            )
            resolution = self.resolver.resolve(str(triple.obj), context)
            if resolution is not None and resolution.confidence >= self.confidence_threshold:
                resolved.append(triple.with_object(resolution.entity_id))
                stats.resolved += 1
                continue
            if self.create_missing:
                entity_id, created_triples = self._create_entity(triple, predicate_name)
                resolved.append(triple.with_object(entity_id))
                new_entity_triples.extend(created_triples)
                stats.created += 1
                continue
            resolved.append(triple)
            stats.unresolved += 1
        return resolved, new_entity_triples, stats

    # -------------------------------------------------------------- #
    # internals
    # -------------------------------------------------------------- #
    def _needs_resolution(self, triple: ExtendedTriple, predicate_name: str) -> bool:
        if not isinstance(triple.obj, str) or is_kg_identifier(triple.obj):
            return False
        if not self.ontology.has_predicate(predicate_name):
            return False
        return self.ontology.predicate(predicate_name).value_kind is ValueKind.REFERENCE

    def _expected_types(self, predicate_name: str) -> tuple[str, ...]:
        if not self.ontology.has_predicate(predicate_name):
            return ()
        return self.ontology.predicate(predicate_name).range_types

    def _context_values(
        self,
        triple: ExtendedTriple,
        triples: Sequence[ExtendedTriple],
        cache: dict[str, tuple[str, ...]],
    ) -> tuple[str, ...]:
        cached = cache.get(triple.subject)
        if cached is not None:
            return cached
        values = tuple(
            str(other.obj)
            for other in triples
            if other.subject == triple.subject and isinstance(other.obj, str)
        )[:12]
        cache[triple.subject] = values
        return values

    def _create_entity(
        self, triple: ExtendedTriple, predicate_name: str
    ) -> tuple[str, list[ExtendedTriple]]:
        mention_key = normalize_string(triple.obj)
        existing = self._creations.get(mention_key)
        if existing is not None:
            return existing, []
        generator = self.id_generator or IdGenerator()
        self.id_generator = generator
        entity_id = generator.next_id()
        self._creations[mention_key] = entity_id
        provenance = triple.provenance.copy() if triple.provenance else Provenance()
        created = [
            ExtendedTriple(
                subject=entity_id,
                predicate="name",
                obj=str(triple.obj),
                locale=triple.locale,
                provenance=provenance,
            )
        ]
        expected = self._expected_types(predicate_name)
        if expected:
            created.append(
                ExtendedTriple(
                    subject=entity_id,
                    predicate="type",
                    obj=expected[0],
                    locale=triple.locale,
                    provenance=provenance.copy(),
                )
            )
        # Make the fresh entity immediately addressable by later mentions.
        if isinstance(self.resolver, NameIndexResolver):
            self.resolver.add_entity(
                entity_id, [str(triple.obj)], expected[0] if expected else ""
            )
        return entity_id, created


@dataclass
class ResolutionStage:
    """Stage 5 of the construction pipeline: object resolution of linked triples.

    Runs on the serialized side of the fusion barrier: it reads the live
    store's name index (through the :class:`ObjectResolutionStage` machinery in
    ``context.resolution``) and may mint identifiers for unresolvable mentions,
    so it must never run concurrently with another partition's commit.

    The context's ``entities`` + ``assignments`` (source entity → KG id) are
    rewritten into KG-subject triples; the payload's own entities are
    registered with the resolver first so that object resolution can point at
    entities arriving in the same payload (e.g. a song referring to an artist
    shipped alongside it) instead of minting spurious duplicates.  Results land
    in ``context.triples_by_subject`` and ``context.resolution_stats``.
    """

    name: str = "object_resolution"

    def run(self, context: StageContext) -> StageContext:
        """Rewrite the context's linked entities into resolved KG triples."""
        obr = context.resolution
        if obr is None:
            raise LinkingError("ResolutionStage needs context.resolution to be set")
        assignments = context.assignments
        if isinstance(obr.resolver, NameIndexResolver):
            for entity in context.entities:
                kg_id = assignments.get(entity.entity_id)
                if kg_id is not None:
                    obr.resolver.add_entity(kg_id, entity.names(), entity.entity_type)
        all_triples: list[ExtendedTriple] = []
        for entity in context.entities:
            kg_id = assignments.get(entity.entity_id)
            if kg_id is None:
                continue
            all_triples.extend(t.with_subject(kg_id) for t in entity.to_triples())
        resolved, created, stats = obr.resolve_triples(all_triples)
        context.resolution_stats = stats
        triples_by_subject: dict[str, list[ExtendedTriple]] = {}
        for triple in [*resolved, *created]:
            triples_by_subject.setdefault(triple.subject, []).append(triple)
        context.triples_by_subject = triples_by_subject
        return context
