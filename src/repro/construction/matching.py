"""Matching models: score candidate pairs with a calibrated match probability.

Section 2.3 (step 4): matching models are domain-specific, controlled by the
ontology, and may be rule-based or machine-learning based; both consume
features built from the platform's deterministic and learned similarity
functions.  This module provides:

* :func:`default_features` — the standard feature set (name similarities,
  per-predicate agreement, type compatibility, optional learned similarity);
* :class:`RuleBasedMatcher` — a weighted feature blend squashed through a
  logistic link so the output is a calibrated probability;
* :class:`LearnedMatcher` — logistic regression trained on labelled pairs;
* :class:`MatcherRegistry` — per-entity-type matcher selection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Protocol, Sequence

import numpy as np

from repro.construction.pairs import CandidatePair
from repro.construction.records import LinkableRecord
from repro.construction.stages import StageContext
from repro.errors import LinkingError
from repro.ml.encoders import EncoderRegistry
from repro.ml.similarity import (
    jaro_winkler_similarity,
    monge_elkan_similarity,
    set_similarity,
    year_similarity,
)
from repro.model.ontology import Ontology

FeatureExtractor = Callable[[LinkableRecord, LinkableRecord], float]


@dataclass(frozen=True)
class FeatureSpec:
    """A named feature extractor used by matching models."""

    name: str
    extractor: FeatureExtractor


# --------------------------------------------------------------------- #
# feature extractors
# --------------------------------------------------------------------- #
def best_name_similarity(
    left: LinkableRecord,
    right: LinkableRecord,
    similarity: Callable[[object, object], float] = jaro_winkler_similarity,
) -> float:
    """Best similarity across the cross product of the two records' names."""
    left_names, right_names = left.names(), right.names()
    if not left_names or not right_names:
        return 0.0
    return max(similarity(a, b) for a in left_names for b in right_names)


def name_token_overlap(left: LinkableRecord, right: LinkableRecord) -> float:
    """Monge-Elkan token similarity of the primary names."""
    return monge_elkan_similarity(left.primary_name(), right.primary_name())


def shared_predicate_agreement(left: LinkableRecord, right: LinkableRecord) -> float:
    """Average value agreement over the predicates both records populate.

    Name-like, date-like, and bookkeeping predicates are excluded (they get
    dedicated features); agreement of each shared predicate is the set
    similarity of the two value lists.
    """
    skip = {
        "name", "alias", "title", "full_title", "type", "same_as", "popularity",
        "birth_date", "release_date", "year",
    }
    shared = (set(left.properties) & set(right.properties)) - skip
    if not shared:
        return 0.0
    total = 0.0
    for predicate in shared:
        total += set_similarity(left.values(predicate), right.values(predicate))
    return total / len(shared)


def date_agreement(left: LinkableRecord, right: LinkableRecord) -> float:
    """Year agreement over date-like predicates (birth/release dates)."""
    predicates = ("birth_date", "release_date", "year")
    scores = []
    for predicate in predicates:
        left_value, right_value = left.first(predicate), right.first(predicate)
        if left_value is not None and right_value is not None:
            scores.append(year_similarity(left_value, right_value, horizon=2))
    return sum(scores) / len(scores) if scores else 0.0


def type_compatibility(ontology: Ontology | None) -> FeatureExtractor:
    """Build a feature that is 1.0 when the record types are compatible."""

    def _compatible(left: LinkableRecord, right: LinkableRecord) -> float:
        if not left.entity_type or not right.entity_type:
            return 0.5
        if ontology is not None:
            return 1.0 if ontology.compatible_types(left.entity_type, right.entity_type) else 0.0
        return 1.0 if left.entity_type == right.entity_type else 0.0

    return _compatible


def learned_name_similarity(registry: EncoderRegistry, string_type: str = "name") -> FeatureExtractor:
    """Build a feature using a learned string encoder from the registry."""

    def _learned(left: LinkableRecord, right: LinkableRecord) -> float:
        encoder = registry.get(string_type)
        if encoder is None:
            return 0.0
        left_names, right_names = left.names(), right.names()
        if not left_names or not right_names:
            return 0.0
        return max(encoder.similarity(a, b) for a in left_names for b in right_names)

    return _learned


def default_features(
    ontology: Ontology | None = None,
    encoders: EncoderRegistry | None = None,
) -> list[FeatureSpec]:
    """The standard feature set used by matchers when no custom set is given."""
    features = [
        FeatureSpec("name_jaro_winkler", best_name_similarity),
        FeatureSpec("name_monge_elkan", name_token_overlap),
        FeatureSpec("predicate_agreement", shared_predicate_agreement),
        FeatureSpec("date_agreement", date_agreement),
        FeatureSpec("type_compatible", type_compatibility(ontology)),
    ]
    if encoders is not None and encoders.get("name") is not None:
        features.append(FeatureSpec("name_learned", learned_name_similarity(encoders)))
    return features


def feature_vector(
    features: Sequence[FeatureSpec], left: LinkableRecord, right: LinkableRecord
) -> np.ndarray:
    """Evaluate every feature for a pair."""
    return np.array([spec.extractor(left, right) for spec in features], dtype=float)


# --------------------------------------------------------------------- #
# matching models
# --------------------------------------------------------------------- #
class MatchingModel(Protocol):
    """A model producing a calibrated match probability for a pair."""

    def score(self, left: LinkableRecord, right: LinkableRecord) -> float:
        """Return the probability that the two records refer to the same entity."""
        ...


@dataclass
class RuleBasedMatcher:
    """Weighted blend of similarity features squashed to a probability.

    The default weights emphasize name similarity — the dominant signal for
    most verticals — and use attribute agreement and type compatibility as
    supporting evidence, which mirrors the hand-written rules domain teams
    deploy before collecting training data for a learned model.
    """

    features: Sequence[FeatureSpec]
    weights: dict[str, float] = field(default_factory=dict)
    bias: float = -4.0
    scale: float = 8.0

    DEFAULT_WEIGHTS = {
        "name_jaro_winkler": 0.35,
        "name_monge_elkan": 0.2,
        "name_learned": 0.15,
        "predicate_agreement": 0.15,
        "date_agreement": 0.05,
        "type_compatible": 0.10,
    }

    def __post_init__(self) -> None:
        if not self.weights:
            self.weights = dict(self.DEFAULT_WEIGHTS)

    def score(self, left: LinkableRecord, right: LinkableRecord) -> float:
        """Calibrated match probability for the pair."""
        total_weight = 0.0
        blended = 0.0
        for spec in self.features:
            weight = self.weights.get(spec.name, 0.1)
            blended += weight * spec.extractor(left, right)
            total_weight += weight
        if total_weight == 0.0:
            return 0.0
        normalized = blended / total_weight
        return _sigmoid(self.bias + self.scale * normalized)


@dataclass
class LearnedMatcher:
    """Logistic-regression matcher trained on labelled record pairs."""

    features: Sequence[FeatureSpec]
    learning_rate: float = 0.5
    epochs: int = 200
    l2: float = 1e-3
    seed: int = 11
    weights: np.ndarray | None = None
    bias: float = 0.0

    def fit(
        self,
        pairs: Sequence[tuple[LinkableRecord, LinkableRecord]],
        labels: Sequence[int],
    ) -> "LearnedMatcher":
        """Train on (pair, label) data where label 1 means a true match."""
        if len(pairs) != len(labels):
            raise LinkingError("pairs and labels must have equal length")
        if not pairs:
            raise LinkingError("cannot train a matcher on zero pairs")
        matrix = np.vstack([feature_vector(self.features, a, b) for a, b in pairs])
        target = np.asarray(labels, dtype=float)
        rng = np.random.default_rng(self.seed)
        weights = rng.normal(0, 0.01, size=matrix.shape[1])
        bias = 0.0
        for _ in range(self.epochs):
            logits = matrix @ weights + bias
            predictions = 1.0 / (1.0 + np.exp(-logits))
            error = predictions - target
            gradient = matrix.T @ error / len(target) + self.l2 * weights
            bias_gradient = float(error.mean())
            weights -= self.learning_rate * gradient
            bias -= self.learning_rate * bias_gradient
        self.weights = weights
        self.bias = bias
        return self

    def score(self, left: LinkableRecord, right: LinkableRecord) -> float:
        """Calibrated match probability for the pair."""
        if self.weights is None:
            raise LinkingError("LearnedMatcher.score called before fit()")
        vector = feature_vector(self.features, left, right)
        return _sigmoid(float(vector @ self.weights + self.bias))

    def evaluate(
        self,
        pairs: Sequence[tuple[LinkableRecord, LinkableRecord]],
        labels: Sequence[int],
        threshold: float = 0.5,
    ) -> dict[str, float]:
        """Precision / recall / F1 of the matcher at *threshold*."""
        true_positive = false_positive = false_negative = 0
        for (left, right), label in zip(pairs, labels):
            predicted = self.score(left, right) >= threshold
            if predicted and label:
                true_positive += 1
            elif predicted and not label:
                false_positive += 1
            elif not predicted and label:
                false_negative += 1
        precision = (
            true_positive / (true_positive + false_positive)
            if true_positive + false_positive
            else 0.0
        )
        recall = (
            true_positive / (true_positive + false_negative)
            if true_positive + false_negative
            else 0.0
        )
        f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
        return {"precision": precision, "recall": recall, "f1": f1}


@dataclass
class MatcherRegistry:
    """Per-entity-type matcher selection with a shared default."""

    default: MatchingModel
    by_type: dict[str, MatchingModel] = field(default_factory=dict)

    def register(self, entity_type: str, matcher: MatchingModel) -> None:
        """Register a specialized matcher for one entity type."""
        self.by_type[entity_type] = matcher

    def matcher_for(self, entity_type: str) -> MatchingModel:
        """Return the matcher to use for records of *entity_type*."""
        return self.by_type.get(entity_type, self.default)


@dataclass
class ScoredPair:
    """A candidate pair together with its match probability."""

    pair: CandidatePair
    probability: float

    @property
    def left(self) -> LinkableRecord:
        """Left record of the pair."""
        return self.pair.left

    @property
    def right(self) -> LinkableRecord:
        """Right record of the pair."""
        return self.pair.right


def score_pairs(
    pairs: Iterable[CandidatePair], registry: MatcherRegistry
) -> list[ScoredPair]:
    """Score every candidate pair with its type-specific matcher."""
    scored = []
    for pair in pairs:
        entity_type = pair.left.entity_type or pair.right.entity_type
        matcher = registry.matcher_for(entity_type)
        scored.append(ScoredPair(pair, matcher.score(pair.left, pair.right)))
    return scored


@dataclass
class MatchingStage:
    """Stage 3 of the construction pipeline: score pairs with type matchers."""

    registry: MatcherRegistry
    name: str = "matching"

    def run(self, context: StageContext) -> StageContext:
        """Score every candidate pair with its type-specific matcher."""
        context.scored = score_pairs(context.pairs or [], self.registry)
        return context


def _sigmoid(value: float) -> float:
    if value >= 0:
        return 1.0 / (1.0 + math.exp(-value))
    exp_value = math.exp(value)
    return exp_value / (1.0 + exp_value)
