"""Blocking: partition the combined payload into buckets of likely matches.

Record linkage is quadratic in the number of records; blocking (Section 2.3,
step 3) applies lightweight functions that group entities likely to be linked
into the same bucket, and only pairs within a bucket are ever compared.  Saga
ships several blocking functions; a source/entity-type pipeline picks one or
composes several.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.construction.records import LinkableRecord, normalized_names
from repro.construction.stages import StageContext
from repro.ml.similarity import qgrams, soundex, tokens

BlockingFunction = Callable[[LinkableRecord], Iterable[str]]


def name_qgram_keys(record: LinkableRecord, q: int = 3, max_keys: int = 12) -> list[str]:
    """Block on character q-grams of the record's names.

    Records sharing enough of their name q-grams land in overlapping buckets,
    which tolerates typos (the paper's example blocking function for movies).
    """
    keys: list[str] = []
    for name in normalized_names(record):
        keys.extend(qgrams(name, q))
    # Deduplicate while preserving order, then cap to bound bucket fan-out.
    seen: set[str] = set()
    capped = []
    for key in keys:
        if key not in seen:
            seen.add(key)
            capped.append(key)
        if len(capped) >= max_keys:
            break
    return [f"qg:{key}" for key in capped]


def name_token_keys(record: LinkableRecord) -> list[str]:
    """Block on whole name tokens (robust for multi-word titles)."""
    keys: set[str] = set()
    for name in normalized_names(record):
        for token in tokens(name):
            if len(token) >= 3:
                keys.add(f"tok:{token}")
    return sorted(keys)


def name_prefix_keys(record: LinkableRecord, length: int = 4) -> list[str]:
    """Block on the first *length* characters of each name."""
    keys = set()
    for name in normalized_names(record):
        compact = name.replace(" ", "")
        if compact:
            keys.add(f"pfx:{compact[:length]}")
    return sorted(keys)


def soundex_keys(record: LinkableRecord) -> list[str]:
    """Block on the Soundex code of each name token (person names)."""
    keys = set()
    for name in normalized_names(record):
        for token in tokens(name):
            code = soundex(token)
            if code:
                keys.add(f"sdx:{code}")
    return sorted(keys)


def exact_value_keys(predicate: str) -> BlockingFunction:
    """Build a blocking function keyed on the exact value of *predicate*."""

    def _keys(record: LinkableRecord) -> list[str]:
        return [
            f"val:{predicate}:{str(value).strip().lower()}"
            for value in record.values(predicate)
            if value not in (None, "")
        ]

    return _keys


BLOCKING_FUNCTIONS: dict[str, BlockingFunction] = {
    "name_qgram": name_qgram_keys,
    "name_token": name_token_keys,
    "name_prefix": name_prefix_keys,
    "soundex": soundex_keys,
}
"""Registry of named blocking functions for config-driven pipelines."""


@dataclass
class BlockingConfig:
    """Which blocking functions to apply and how to bound bucket sizes."""

    functions: tuple[str, ...] = ("name_token", "name_prefix")
    extra_functions: tuple[BlockingFunction, ...] = ()
    max_block_size: int = 200
    partition_by_type: bool = True

    def resolved_functions(self) -> list[BlockingFunction]:
        """Materialize the configured blocking functions."""
        resolved = [BLOCKING_FUNCTIONS[name] for name in self.functions]
        resolved.extend(self.extra_functions)
        return resolved


@dataclass
class Block:
    """A bucket of records sharing one blocking key."""

    key: str
    records: list[LinkableRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def has_mixed_origin(self) -> bool:
        """True when the block holds both source and KG records."""
        has_source = any(not record.is_kg for record in self.records)
        has_kg = any(record.is_kg for record in self.records)
        return has_source and has_kg


class Blocker:
    """Apply a :class:`BlockingConfig` to a combined payload."""

    def __init__(self, config: BlockingConfig | None = None) -> None:
        self.config = config or BlockingConfig()

    def block(self, records: Sequence[LinkableRecord]) -> list[Block]:
        """Partition *records* into blocks.

        Oversized blocks (low-selectivity keys such as the token "the") are
        dropped: their pairs are overwhelmingly non-matches and they would
        dominate the quadratic pair-generation cost.
        """
        functions = self.config.resolved_functions()
        buckets: dict[str, list[LinkableRecord]] = defaultdict(list)
        for record in records:
            keys: set[str] = set()
            for function in functions:
                keys.update(function(record))
            type_prefix = record.entity_type if self.config.partition_by_type else ""
            for key in keys:
                buckets[f"{type_prefix}|{key}"].append(record)

        blocks = []
        for key, bucket_records in buckets.items():
            if len(bucket_records) < 2:
                continue
            if len(bucket_records) > self.config.max_block_size:
                continue
            blocks.append(Block(key=key, records=bucket_records))
        blocks.sort(key=lambda block: block.key)
        return blocks

    def statistics(self, blocks: Sequence[Block]) -> dict[str, float]:
        """Basic blocking statistics used in tests and ablation benches."""
        if not blocks:
            return {"blocks": 0, "max_size": 0, "mean_size": 0.0, "candidate_pairs": 0}
        sizes = [len(block) for block in blocks]
        pairs = sum(size * (size - 1) // 2 for size in sizes)
        return {
            "blocks": len(blocks),
            "max_size": max(sizes),
            "mean_size": sum(sizes) / len(sizes),
            "candidate_pairs": pairs,
        }


@dataclass
class BlockingStage:
    """Stage 1 of the construction pipeline: bucket the combined payload.

    Pure with respect to shared state — reads the context's source and KG-view
    records and writes ``context.blocks``.
    """

    blocker: Blocker
    name: str = "blocking"

    def run(self, context: StageContext) -> StageContext:
        """Partition the combined payload into candidate blocks."""
        context.blocks = self.blocker.block(context.combined_records())
        return context
