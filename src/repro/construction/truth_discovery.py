"""Truth discovery and source reliability estimation (Section 2.3, Fusion).

During fusion Saga uses standard truth-discovery methods to estimate the
probability of correctness for each consolidated fact, reasoning about the
agreement and disagreement across sources and taking ontological constraints
(functional predicates) into account.  We implement an iterative
voting/reliability algorithm in the spirit of TruthFinder / SLiMFast:

* each claim (a value asserted for a data item by a source) starts with the
  source's prior trust;
* a value's confidence aggregates the reliabilities of the sources asserting
  it (independent-voter combination) discounted by conflicting claims;
* a source's reliability is re-estimated as the average confidence of the
  values it asserts;
* iterate until convergence.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence


@dataclass(frozen=True)
class Claim:
    """One value asserted for a data item by one source."""

    item: Hashable          # usually (subject, predicate)
    value: Hashable
    source_id: str
    prior_trust: float = 0.5


@dataclass
class TruthDiscoveryResult:
    """Outputs of a truth-discovery run."""

    value_confidence: dict[tuple[Hashable, Hashable], float] = field(default_factory=dict)
    source_reliability: dict[str, float] = field(default_factory=dict)
    resolved_values: dict[Hashable, Hashable] = field(default_factory=dict)
    iterations: int = 0

    def confidence_of(self, item: Hashable, value: Hashable) -> float:
        """Confidence of *value* for *item* (0.0 when never claimed)."""
        return self.value_confidence.get((item, value), 0.0)

    def best_value(self, item: Hashable) -> Hashable | None:
        """The most confident value resolved for *item*."""
        return self.resolved_values.get(item)


@dataclass
class TruthDiscoveryConfig:
    """Iteration and damping knobs of the algorithm."""

    max_iterations: int = 20
    tolerance: float = 1e-4
    damping: float = 0.3          # weight of the prior when updating reliability
    conflict_penalty: float = 0.35  # how strongly conflicting claims discount each other
    min_reliability: float = 0.05
    max_reliability: float = 0.99


class TruthDiscovery:
    """Iterative source-reliability / value-confidence estimation."""

    def __init__(self, config: TruthDiscoveryConfig | None = None) -> None:
        self.config = config or TruthDiscoveryConfig()

    def run(self, claims: Sequence[Claim]) -> TruthDiscoveryResult:
        """Estimate value confidences and source reliabilities for *claims*."""
        result = TruthDiscoveryResult()
        if not claims:
            return result

        claims_by_item: dict[Hashable, list[Claim]] = defaultdict(list)
        claims_by_source: dict[str, list[Claim]] = defaultdict(list)
        for claim in claims:
            claims_by_item[claim.item].append(claim)
            claims_by_source[claim.source_id].append(claim)

        reliability = {
            source_id: _mean(c.prior_trust for c in source_claims)
            for source_id, source_claims in claims_by_source.items()
        }

        confidence: dict[tuple[Hashable, Hashable], float] = {}
        for iteration in range(1, self.config.max_iterations + 1):
            confidence = self._update_value_confidence(claims_by_item, reliability)
            new_reliability = self._update_source_reliability(
                claims_by_source, confidence, reliability
            )
            delta = max(
                abs(new_reliability[s] - reliability[s]) for s in reliability
            )
            reliability = new_reliability
            if delta < self.config.tolerance:
                break

        result.value_confidence = confidence
        result.source_reliability = reliability
        result.iterations = iteration
        for item, item_claims in claims_by_item.items():
            best = max(
                {claim.value for claim in item_claims},
                key=lambda value: confidence.get((item, value), 0.0),
            )
            result.resolved_values[item] = best
        return result

    # -------------------------------------------------------------- #
    # update rules
    # -------------------------------------------------------------- #
    def _update_value_confidence(
        self,
        claims_by_item: dict[Hashable, list[Claim]],
        reliability: dict[str, float],
    ) -> dict[tuple[Hashable, Hashable], float]:
        confidence: dict[tuple[Hashable, Hashable], float] = {}
        for item, item_claims in claims_by_item.items():
            sources_by_value: dict[Hashable, set[str]] = defaultdict(set)
            for claim in item_claims:
                sources_by_value[claim.value].add(claim.source_id)
            for value, supporting in sources_by_value.items():
                # Independent-voter support for the value...
                wrong = 1.0
                for source_id in supporting:
                    wrong *= 1.0 - reliability[source_id]
                support = 1.0 - wrong
                # ...discounted by the reliability of sources asserting
                # conflicting values for the same item.
                conflict = 0.0
                for other_value, other_sources in sources_by_value.items():
                    if other_value == value:
                        continue
                    conflict += sum(reliability[s] for s in other_sources)
                discounted = support * (1.0 - self.config.conflict_penalty) ** conflict
                confidence[(item, value)] = max(0.0, min(1.0, discounted))
        return confidence

    def _update_source_reliability(
        self,
        claims_by_source: dict[str, list[Claim]],
        confidence: dict[tuple[Hashable, Hashable], float],
        previous: dict[str, float],
    ) -> dict[str, float]:
        updated = {}
        for source_id, source_claims in claims_by_source.items():
            observed = _mean(
                confidence.get((claim.item, claim.value), 0.0) for claim in source_claims
            )
            blended = (
                self.config.damping * previous[source_id]
                + (1.0 - self.config.damping) * observed
            )
            updated[source_id] = min(
                self.config.max_reliability, max(self.config.min_reliability, blended)
            )
        return updated


def _mean(values: Iterable[float]) -> float:
    materialized = list(values)
    return sum(materialized) / len(materialized) if materialized else 0.0
