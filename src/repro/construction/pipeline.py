"""Multi-source knowledge construction pipeline (Figures 4 and 5).

:class:`KnowledgeConstructionPipeline` coordinates ingestion results from
many sources into a single KG.  Per the paper, source-specific processing is
embarrassingly parallel and fusion is the synchronization point: batch
consumption runs the pre-fusion stages of every source/entity-type partition
concurrently through the :class:`~repro.construction.scheduler.
ParallelConstructionScheduler` and serializes only the fusion commits, whose
deterministic order makes parallel output byte-identical to sequential.  The
pipeline records growth history (facts / entities over time), the measurement
behind Figure 12 — growth points are stamped with a logical clock at
*fusion-commit* time, so the series is reproducible run-to-run regardless of
how the pre-fusion work was scheduled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.construction.incremental import ConstructionReport, IncrementalConstructor
from repro.construction.matching import MatcherRegistry
from repro.construction.scheduler import ParallelConstructionScheduler
from repro.ingestion.pipeline import IngestionResult
from repro.model.delta import SourceDelta
from repro.model.ontology import Ontology
from repro.model.triples import TripleStore


@dataclass
class GrowthPoint:
    """KG size after consuming one payload (one point of Figure 12)."""

    timestamp: int
    source_id: str
    fact_count: int
    entity_count: int


@dataclass
class GrowthHistory:
    """Time series of KG size used to reproduce Figure 12."""

    points: list[GrowthPoint] = field(default_factory=list)

    def record(self, timestamp: int, source_id: str, store: TripleStore) -> GrowthPoint:
        """Append a growth point for the current store size."""
        point = GrowthPoint(
            timestamp=timestamp,
            source_id=source_id,
            fact_count=store.fact_count(),
            entity_count=store.entity_count(),
        )
        self.points.append(point)
        return point

    def relative_growth(self) -> dict[str, float]:
        """Fact and entity growth relative to the first recorded point."""
        if not self.points:
            return {"facts": 1.0, "entities": 1.0}
        first, last = self.points[0], self.points[-1]
        return {
            "facts": last.fact_count / max(first.fact_count, 1),
            "entities": last.entity_count / max(first.entity_count, 1),
        }

    def series(self) -> list[dict[str, object]]:
        """Plain-dict series for reporting."""
        return [
            {
                "timestamp": point.timestamp,
                "source_id": point.source_id,
                "facts": point.fact_count,
                "entities": point.entity_count,
            }
            for point in self.points
        ]


class KnowledgeConstructionPipeline:
    """End-to-end construction over ingestion results from many sources.

    ``max_workers`` bounds the worker pool the scheduler prepares partitions
    on during :meth:`consume_many` (``None`` prepares inline — the staged
    pipeline still runs, just without concurrency); ``executor`` selects the
    pool flavor (``"thread"`` or ``"serial"``, see the scheduler).
    """

    def __init__(
        self,
        ontology: Ontology,
        store: TripleStore | None = None,
        matchers: MatcherRegistry | None = None,
        constructor: IncrementalConstructor | None = None,
        max_workers: int | None = None,
        executor: str = "thread",
    ) -> None:
        self.ontology = ontology
        if constructor is not None:
            self.constructor = constructor
        else:
            self.constructor = IncrementalConstructor(ontology, store=store, matchers=matchers)
        self.scheduler = ParallelConstructionScheduler(
            self.constructor, max_workers=max_workers, executor=executor
        )
        self.growth = GrowthHistory()
        self.reports: list[ConstructionReport] = []
        self._clock = 0

    @property
    def store(self) -> TripleStore:
        """The KG triple store being constructed."""
        return self.constructor.store

    @property
    def link_table(self) -> dict[str, str]:
        """Source entity id → KG id mapping accumulated so far."""
        return self.constructor.link_table

    # -------------------------------------------------------------- #
    # consumption APIs
    # -------------------------------------------------------------- #
    def consume_delta(self, delta: SourceDelta) -> ConstructionReport:
        """Consume one source delta and record KG growth at its commit."""
        report = self.constructor.consume(delta)
        self._record_commit(report)
        return report

    def consume_ingestion_result(self, result: IngestionResult) -> ConstructionReport:
        """Consume the delta produced by an ingestion pipeline run."""
        return self.consume_delta(result.delta)

    def consume_many(
        self,
        payloads: Iterable[SourceDelta | IngestionResult],
        max_workers: int | None = None,
    ) -> list[ConstructionReport]:
        """Consume a batch of payloads through the staged parallel pipeline.

        Pre-fusion stages of every source/entity-type partition run
        concurrently (bounded by *max_workers*, defaulting to the pipeline's
        configuration); sources are fused sequentially in payload order
        because fusion is the synchronization point across the
        otherwise-parallel source pipelines (Section 2.4).  The result is
        byte-identical to consuming the payloads one at a time.

        A failing payload no longer aborts the batch: the remaining sources
        keep fusing, the failed payload's report carries its ``error``, and a
        :class:`~repro.errors.ConstructionBatchError` with every report is
        raised after the batch finished.
        """
        deltas = [
            payload.delta if isinstance(payload, IngestionResult) else payload
            for payload in payloads
        ]
        return self.scheduler.consume_many(
            deltas, on_commit=self._record_commit, max_workers=max_workers
        )

    def _record_commit(self, report: ConstructionReport) -> None:
        """Stamp one fusion commit on the growth clock (deterministic order).

        Called inside the fusion barrier, immediately after each commit —
        never at consumption start — so the Figure 12 series depends only on
        commit order, which parallel scheduling keeps identical to sequential.
        Failed payloads never reach this hook and consume no clock tick.
        """
        self._clock += 1
        report.commit_clock = self._clock
        self.reports.append(report)
        self.growth.record(self._clock, report.source_id, self.store)

    # -------------------------------------------------------------- #
    # stats
    # -------------------------------------------------------------- #
    def metrics(self) -> dict[str, object]:
        """Aggregate construction metrics across every consumed payload."""
        return {
            "facts": self.store.fact_count(),
            "entities": self.store.entity_count(),
            "sources_consumed": len({report.source_id for report in self.reports}),
            "payloads_consumed": len(self.reports),
            "new_entities": sum(report.new_entities for report in self.reports),
            "facts_added": sum(report.fusion.facts_added for report in self.reports),
            "facts_removed": sum(report.fusion.facts_removed for report in self.reports),
            "relative_growth": self.growth.relative_growth(),
        }
