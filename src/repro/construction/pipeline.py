"""Multi-source knowledge construction pipeline (Figures 4 and 5).

:class:`KnowledgeConstructionPipeline` coordinates ingestion results from
many sources into a single KG.  Per the paper, source-specific processing is
embarrassingly parallel and fusion is the synchronization point: here the
per-source work is executed sequentially but kept independent, and the
pipeline records growth history (facts / entities over time) which is the
measurement behind Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.construction.incremental import ConstructionReport, IncrementalConstructor
from repro.construction.matching import MatcherRegistry
from repro.ingestion.pipeline import IngestionResult
from repro.model.delta import SourceDelta
from repro.model.ontology import Ontology
from repro.model.triples import TripleStore


@dataclass
class GrowthPoint:
    """KG size after consuming one payload (one point of Figure 12)."""

    timestamp: int
    source_id: str
    fact_count: int
    entity_count: int


@dataclass
class GrowthHistory:
    """Time series of KG size used to reproduce Figure 12."""

    points: list[GrowthPoint] = field(default_factory=list)

    def record(self, timestamp: int, source_id: str, store: TripleStore) -> GrowthPoint:
        """Append a growth point for the current store size."""
        point = GrowthPoint(
            timestamp=timestamp,
            source_id=source_id,
            fact_count=store.fact_count(),
            entity_count=store.entity_count(),
        )
        self.points.append(point)
        return point

    def relative_growth(self) -> dict[str, float]:
        """Fact and entity growth relative to the first recorded point."""
        if not self.points:
            return {"facts": 1.0, "entities": 1.0}
        first, last = self.points[0], self.points[-1]
        return {
            "facts": last.fact_count / max(first.fact_count, 1),
            "entities": last.entity_count / max(first.entity_count, 1),
        }

    def series(self) -> list[dict[str, object]]:
        """Plain-dict series for reporting."""
        return [
            {
                "timestamp": point.timestamp,
                "source_id": point.source_id,
                "facts": point.fact_count,
                "entities": point.entity_count,
            }
            for point in self.points
        ]


class KnowledgeConstructionPipeline:
    """End-to-end construction over ingestion results from many sources."""

    def __init__(
        self,
        ontology: Ontology,
        store: TripleStore | None = None,
        matchers: MatcherRegistry | None = None,
        constructor: IncrementalConstructor | None = None,
    ) -> None:
        self.ontology = ontology
        if constructor is not None:
            self.constructor = constructor
        else:
            self.constructor = IncrementalConstructor(ontology, store=store, matchers=matchers)
        self.growth = GrowthHistory()
        self.reports: list[ConstructionReport] = []
        self._clock = 0

    @property
    def store(self) -> TripleStore:
        """The KG triple store being constructed."""
        return self.constructor.store

    @property
    def link_table(self) -> dict[str, str]:
        """Source entity id → KG id mapping accumulated so far."""
        return self.constructor.link_table

    # -------------------------------------------------------------- #
    # consumption APIs
    # -------------------------------------------------------------- #
    def consume_delta(self, delta: SourceDelta) -> ConstructionReport:
        """Consume one source delta and record KG growth."""
        self._clock += 1
        report = self.constructor.consume(delta)
        self.reports.append(report)
        self.growth.record(self._clock, delta.source_id, self.store)
        return report

    def consume_ingestion_result(self, result: IngestionResult) -> ConstructionReport:
        """Consume the delta produced by an ingestion pipeline run."""
        return self.consume_delta(result.delta)

    def consume_many(
        self, payloads: Iterable[SourceDelta | IngestionResult]
    ) -> list[ConstructionReport]:
        """Consume a batch of payloads, one source at a time.

        Sources are fused sequentially because fusion is the synchronization
        point across the otherwise-parallel source pipelines (Section 2.4).
        """
        reports = []
        for payload in payloads:
            if isinstance(payload, IngestionResult):
                reports.append(self.consume_ingestion_result(payload))
            else:
                reports.append(self.consume_delta(payload))
        return reports

    # -------------------------------------------------------------- #
    # stats
    # -------------------------------------------------------------- #
    def metrics(self) -> dict[str, object]:
        """Aggregate construction metrics across every consumed payload."""
        return {
            "facts": self.store.fact_count(),
            "entities": self.store.entity_count(),
            "sources_consumed": len({report.source_id for report in self.reports}),
            "payloads_consumed": len(self.reports),
            "new_entities": sum(report.new_entities for report in self.reports),
            "facts_added": sum(report.fusion.facts_added for report in self.reports),
            "facts_removed": sum(report.fusion.facts_removed for report in self.reports),
            "relative_growth": self.growth.relative_growth(),
        }
