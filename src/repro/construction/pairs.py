"""Pair generation from blocks (Section 2.3, step 4).

Given the blocking output, generate the candidate pairs that the matching
model scores.  Pairs are deduplicated across blocks (two records frequently
share several blocking keys), KG-KG pairs are skipped (the KG view is already
deduplicated), and an optional cap bounds the work per run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.construction.blocking import Block
from repro.construction.records import LinkableRecord
from repro.construction.stages import StageContext


@dataclass(frozen=True)
class CandidatePair:
    """An unordered pair of records to be scored by a matching model."""

    left: LinkableRecord
    right: LinkableRecord

    @property
    def key(self) -> tuple[str, str]:
        """Canonical (sorted) id pair identifying this candidate."""
        ids = sorted((self.left.record_id, self.right.record_id))
        return (ids[0], ids[1])

    @property
    def involves_kg(self) -> bool:
        """True when one side of the pair is a KG-view record."""
        return self.left.is_kg or self.right.is_kg


@dataclass
class PairGenerationConfig:
    """Limits applied while generating candidate pairs."""

    max_pairs: int | None = None
    skip_kg_kg_pairs: bool = True
    require_compatible_types: bool = True


class PairGenerator:
    """Turn blocks into a deduplicated stream of candidate pairs."""

    def __init__(self, config: PairGenerationConfig | None = None) -> None:
        self.config = config or PairGenerationConfig()

    def generate(self, blocks: Sequence[Block]) -> list[CandidatePair]:
        """Materialize the candidate pairs for *blocks*."""
        return list(self.iter_pairs(blocks))

    def iter_pairs(self, blocks: Iterable[Block]) -> Iterator[CandidatePair]:
        """Yield candidate pairs lazily, deduplicated across blocks."""
        seen: set[tuple[str, str]] = set()
        emitted = 0
        for block in blocks:
            records = block.records
            for i in range(len(records)):
                for j in range(i + 1, len(records)):
                    left, right = records[i], records[j]
                    if left.record_id == right.record_id:
                        continue
                    if self.config.skip_kg_kg_pairs and left.is_kg and right.is_kg:
                        continue
                    if self.config.require_compatible_types and not _types_compatible(
                        left, right
                    ):
                        continue
                    pair = CandidatePair(left, right)
                    if pair.key in seen:
                        continue
                    seen.add(pair.key)
                    yield pair
                    emitted += 1
                    if self.config.max_pairs is not None and emitted >= self.config.max_pairs:
                        return


@dataclass
class PairGenerationStage:
    """Stage 2 of the construction pipeline: blocks → deduplicated pairs."""

    generator: PairGenerator
    name: str = "pair_generation"

    def run(self, context: StageContext) -> StageContext:
        """Materialize the candidate pairs for the context's blocks."""
        context.pairs = self.generator.generate(context.blocks or [])
        return context


def _types_compatible(left: LinkableRecord, right: LinkableRecord) -> bool:
    """Cheap type compatibility check (full ontology check happens in matching)."""
    if not left.entity_type or not right.entity_type:
        return True
    return left.entity_type == right.entity_type
