"""The Saga platform facade (Figure 1).

:class:`SagaPlatform` wires the individual subsystems into the end-to-end
platform the paper describes: source ingestion pipelines feed the incremental
knowledge-construction pipeline, whose output is published to the Graph Engine
(the polystore serving layer); the NERD service is built over the engine's KG
and powers both object resolution and semantic annotation; and the Live Graph
engine serves the union of a stable-KG view with streaming sources under
interactive latencies.

The facade is intentionally thin: every subsystem remains usable on its own
(and is exercised independently in tests and benchmarks), but examples and
downstream users get a one-object entry point::

    platform = SagaPlatform()
    platform.register_source("musicdb")
    platform.ingest_snapshot("musicdb", entities)
    platform.graph_engine.search("Billie Eilish")
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.construction.matching import MatcherRegistry
from repro.errors import ConstructionBatchError, ServingError
from repro.construction.pipeline import KnowledgeConstructionPipeline
from repro.construction.incremental import ConstructionReport
from repro.datagen.streams import LiveEvent
from repro.engine.graph_engine import GraphEngine
from repro.ingestion.alignment import AlignmentConfig
from repro.ingestion.pipeline import IngestionHub, IngestionPipeline, IngestionResult
from repro.ingestion.transform import EntityTransformer
from repro.ingestion.importers import Importer
from repro.live.engine import LiveGraphEngine
from repro.ml.encoders import StringEncoder
from repro.ml.nerd.service import NERDService
from repro.model.entity import SourceEntity
from repro.model.ontology import Ontology, default_ontology
from repro.serving.fleet import ServingFleet
from repro.serving.frontdoor import FrontDoor, TenantRegistry
from repro.serving.journal_store import FileJournalBackend, JournalStore


@dataclass
class SagaMetrics:
    """Aggregate platform metrics surfaced by :meth:`SagaPlatform.metrics`."""

    facts: int = 0
    entities: int = 0
    sources: int = 0
    payloads_consumed: int = 0
    engine_operations: int = 0
    store_freshness: dict[str, int] = field(default_factory=dict)
    relative_growth: dict[str, float] = field(default_factory=dict)


class SagaPlatform:
    """End-to-end knowledge construction and serving platform."""

    def __init__(
        self,
        ontology: Ontology | None = None,
        matchers: MatcherRegistry | None = None,
        name_encoder: StringEncoder | None = None,
    ) -> None:
        self.ontology = ontology or default_ontology()
        self.ingestion = IngestionHub(self.ontology)
        self.construction = KnowledgeConstructionPipeline(self.ontology, matchers=matchers)
        self.graph_engine = GraphEngine(self.ontology)
        self.name_encoder = name_encoder
        self._nerd: NERDService | None = None
        self._live: LiveGraphEngine | None = None
        self._fleet: ServingFleet | None = None
        self._front_door: FrontDoor | None = None

    # -------------------------------------------------------------- #
    # source onboarding and ingestion
    # -------------------------------------------------------------- #
    def register_source(
        self,
        source_id: str,
        transformer: EntityTransformer | None = None,
        alignment: AlignmentConfig | None = None,
    ) -> IngestionPipeline:
        """Register (self-serve onboard) a new data source."""
        return self.ingestion.register_source(source_id, transformer, alignment)

    def ingest_snapshot(
        self,
        source_id: str,
        entities: Sequence[SourceEntity],
        timestamp: int | None = None,
        publish: bool = True,
    ) -> ConstructionReport:
        """Ingest one snapshot of a source end-to-end.

        Runs the source's ingestion pipeline (alignment, delta computation,
        export), consumes the delta with incremental knowledge construction,
        and publishes the changed subjects to the Graph Engine.
        """
        pipeline = self.ingestion.get(source_id)
        ingestion_result = pipeline.run_entities(entities, timestamp=timestamp)
        return self._consume(ingestion_result, publish)

    def ingest_importer(
        self,
        source_id: str,
        importer: Importer,
        timestamp: int | None = None,
        publish: bool = True,
    ) -> ConstructionReport:
        """Ingest a snapshot read from an importer (CSV / JSON / in-memory)."""
        pipeline = self.ingestion.get(source_id)
        ingestion_result = pipeline.run(importer, timestamp=timestamp)
        return self._consume(ingestion_result, publish)

    def ingest_batch(
        self,
        snapshots: Sequence[tuple[str, Sequence[SourceEntity]]],
        timestamp: int | None = None,
        publish: bool = True,
        max_workers: int | None = None,
    ) -> list[ConstructionReport]:
        """Ingest several sources' snapshots as one construction batch.

        Every source's ingestion pipeline runs first (alignment, delta
        computation, export); the resulting deltas are then consumed through
        the staged construction scheduler — pre-fusion stages in parallel
        (bounded by *max_workers*), fusion serialized in snapshot order — and
        each commit's classified entity delta is published straight into the
        Graph Engine's journals.  A failing source does not abort the batch:
        the surviving sources are fused *and published*, then the
        :class:`~repro.errors.ConstructionBatchError` (which carries every
        report) propagates.
        """
        results = [
            self.ingestion.get(source_id).run_entities(entities, timestamp=timestamp)
            for source_id, entities in snapshots
        ]
        try:
            reports = self.construction.consume_many(results, max_workers=max_workers)
        except ConstructionBatchError as exc:
            if publish:
                for report in exc.reports:
                    if report.error is None:
                        self._publish_report(report)
            raise
        if publish:
            for report in reports:
                self._publish_report(report)
        return reports

    def _consume(self, ingestion_result: IngestionResult, publish: bool) -> ConstructionReport:
        report = self.construction.consume_ingestion_result(ingestion_result)
        if publish:
            self._publish_report(report)
        return report

    def _publish_report(self, report: ConstructionReport) -> None:
        """Publish one commit's classified entity delta to the Graph Engine.

        Construction already classified its effect at fusion-commit time
        (:class:`~repro.construction.incremental.EntityDelta`), so the engine
        receives added / updated / deleted subjects directly — deletions
        included — and the coordinator journals them without re-diffing any
        store.
        """
        delta = report.entity_delta
        changed = [*delta.added, *delta.updated]
        self.graph_engine.publish_subjects(
            self.construction.store,
            changed,
            source_id=report.source_id,
            deleted_subjects=delta.deleted,
            added_subjects=delta.added,
        )
        touched = sorted({*changed, *delta.deleted})
        if self._nerd is not None and touched:
            self._nerd.refresh_entities(self.graph_engine.triples, touched)

    # -------------------------------------------------------------- #
    # ML services
    # -------------------------------------------------------------- #
    @property
    def nerd(self) -> NERDService:
        """The NERD service over the current KG (built lazily, kept fresh)."""
        if self._nerd is None:
            importance = {
                entity_id: score.score
                for entity_id, score in self.graph_engine.importance_scores().items()
            }
            self._nerd = NERDService.from_store(
                self.graph_engine.triples,
                ontology=self.ontology,
                encoder=self.name_encoder,
                importance=importance,
            )
        return self._nerd

    def annotate(self, text: str) -> list:
        """Semantic annotation of free text with KG entities (§6.3)."""
        return self.nerd.annotate(text)

    # -------------------------------------------------------------- #
    # live graph
    # -------------------------------------------------------------- #
    @property
    def live(self) -> LiveGraphEngine:
        """The live graph engine, seeded with a stable-KG view on first use."""
        if self._live is None:
            self._live = LiveGraphEngine(resolution_service=self.nerd)
            self._live.load_stable_view(self.graph_engine.triples)
            if self._fleet is not None:
                self._live.attach_router(self._fleet.router)
                self._live.attach_query_router(self._fleet.query_router)
        return self._live

    def ingest_live_events(self, events: Iterable[LiveEvent]) -> int:
        """Feed streaming events into the live graph."""
        return self.live.ingest_events(events)

    # -------------------------------------------------------------- #
    # replicated serving fleet
    # -------------------------------------------------------------- #
    @property
    def fleet(self) -> ServingFleet | None:
        """The replicated serving fleet, when one has been started."""
        return self._fleet

    def start_serving_fleet(
        self,
        views: Sequence[str] = (),
        num_replicas: int = 3,
        journal_dir: str | None = None,
        queue_capacity: int = 256,
        anti_entropy_interval: float | None = None,
    ) -> ServingFleet:
        """Start a replicated serving fleet over the Graph Engine's views.

        The fleet ships every named materialized row-shaped view to
        *num_replicas* live replicas, persists delta journals (to segment
        files under *journal_dir* when given, in memory otherwise), and
        routes reads with the same LSN currency the engine's metadata store
        uses.  The live engine (when instantiated) gains replica-backed
        point reads through :meth:`LiveGraphEngine.routed_view_read` and
        scatter-gather KGQ execution through
        :meth:`LiveGraphEngine.routed_query`.  With *anti_entropy_interval*
        the fleet also runs periodic checksum audits (with repair) on a
        background thread.
        """
        if self._fleet is not None:
            raise ServingError("a serving fleet is already running; stop it first")
        backend = FileJournalBackend(journal_dir) if journal_dir is not None else None
        engine = self.graph_engine
        fleet = ServingFleet(
            engine.view_manager,
            num_replicas=num_replicas,
            journal_store=JournalStore(backend) if backend is not None else None,
            metadata=engine.metadata,
            head_lsn_source=engine.minimum_version,
            queue_capacity=queue_capacity,
        ).start()
        try:
            fleet.serve_views(views)
            if anti_entropy_interval is not None:
                fleet.start_anti_entropy(anti_entropy_interval)
        except Exception:
            # Atomic start: an unshippable view (unmaterialized, not
            # row-shaped) or an invalid audit interval must not leave
            # replica threads and a journal listener behind — and must not
            # block a corrected retry.
            fleet.stop()
            raise
        self._fleet = fleet
        if self._live is not None:
            self._live.attach_router(self._fleet.router)
            self._live.attach_query_router(self._fleet.query_router)
        return self._fleet

    def stop_serving_fleet(self) -> None:
        """Drain and stop the serving fleet (no-op when none is running).

        An attached front door is closed first: the request surface must
        stop admitting before the fleet it scatters over disappears.
        """
        if self._fleet is None:
            return
        self.stop_front_door()
        self._fleet.drain()
        self._fleet.stop()
        if self._live is not None:
            self._live.attach_router(None)
            self._live.attach_query_router(None)
        self._fleet = None

    # -------------------------------------------------------------- #
    # multi-tenant front door
    # -------------------------------------------------------------- #
    @property
    def front_door(self) -> FrontDoor | None:
        """The multi-tenant request front door, when one has been started."""
        return self._front_door

    def start_front_door(
        self,
        registry: TenantRegistry | None = None,
        max_concurrency: int = 8,
        queue_capacity: int = 64,
        default_deadline: float | None = None,
    ) -> FrontDoor:
        """Start the multi-tenant asyncio front door over the running fleet.

        Requires :meth:`start_serving_fleet` to have been called: the front
        door admits per-tenant KGQ requests (token buckets, a bounded
        priority admission queue, deadlines) and executes them over the
        fleet's scatter-gather on a bounded worker pool, mirroring its
        serving metrics into the engine's metadata store.  Tenants are
        onboarded through ``front_door.registry.register(...)``.
        """
        if self._fleet is None:
            raise ServingError("start a serving fleet before the front door")
        if self._front_door is not None:
            raise ServingError("a front door is already running; stop it first")
        self._front_door = FrontDoor(
            self._fleet,
            registry=registry,
            max_concurrency=max_concurrency,
            queue_capacity=queue_capacity,
            default_deadline=default_deadline,
            metadata=self.graph_engine.metadata,
        )
        return self._front_door

    def stop_front_door(self) -> None:
        """Close the front door (no-op when none is running)."""
        if self._front_door is None:
            return
        self._front_door.close()
        self._front_door = None

    # -------------------------------------------------------------- #
    # metrics
    # -------------------------------------------------------------- #
    def metrics(self) -> SagaMetrics:
        """Aggregate platform metrics."""
        construction_metrics = self.construction.metrics()
        return SagaMetrics(
            facts=self.graph_engine.triples.fact_count(),
            entities=self.graph_engine.triples.entity_count(),
            sources=int(construction_metrics["sources_consumed"]),
            payloads_consumed=int(construction_metrics["payloads_consumed"]),
            engine_operations=self.graph_engine.stats.operations_published,
            store_freshness=self.graph_engine.freshness(),
            relative_growth=dict(construction_metrics["relative_growth"]),
        )
