"""The pre-columnar TripleStore, frozen as an equivalence baseline.

This is the row-at-a-time, dict-of-``ExtendedTriple`` store the platform used
before the columnar refactor of :mod:`repro.model.triples`: every fact is a
full :class:`~repro.model.triples.ExtendedTriple` object held in a dict keyed
by :meth:`~repro.model.triples.ExtendedTriple.key`, with ``set``-of-keys
secondary indexes.  It is kept verbatim for two jobs:

* the seeded equivalence suite (``tests/test_model_triples_columnar.py``)
  runs random operation sequences against this store and the columnar one and
  asserts ``canonical_rows()`` equality — the byte-level oracle proving the
  refactor changed the layout, not the semantics;
* the STORE benchmark (``benchmarks/bench_triplestore.py``) measures the
  columnar batch operators against this implementation's scans.

Do not "fix" or optimize this module: its value is that it stays exactly what
shipped before.  Like the other baselines it accesses only its own private
state; the lint guard banning ``TripleStore`` internals outside
``src/repro/model/`` whitelists this file.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Iterable, Iterator

from repro.model.triples import ExtendedTriple, Value


class LegacyTripleStore:
    """In-memory collection of extended triples with secondary indexes.

    The store deduplicates facts by :meth:`ExtendedTriple.key`; adding an
    already-present fact merges provenance instead of creating a duplicate row
    (non-destructive integration).
    """

    def __init__(self, triples: Iterable[ExtendedTriple] | None = None) -> None:
        self._by_key: dict[tuple, ExtendedTriple] = {}
        self._by_subject: dict[str, set[tuple]] = defaultdict(set)
        self._by_predicate: dict[str, set[tuple]] = defaultdict(set)
        self._by_object: dict[Value, set[tuple]] = defaultdict(set)
        if triples:
            for triple in triples:
                self.add(triple)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add(self, triple: ExtendedTriple) -> ExtendedTriple:
        """Insert *triple*, merging provenance when the fact already exists.

        Returns the stored triple (existing instance when merged).
        """
        key = triple.key()
        existing = self._by_key.get(key)
        if existing is not None:
            existing.provenance = existing.provenance.merge(triple.provenance)
            return existing
        stored = triple.copy()
        self._by_key[key] = stored
        self._by_subject[stored.subject].add(key)
        self._by_predicate[stored.predicate].add(key)
        self._index_object(stored, key)
        return stored

    def add_all(self, triples: Iterable[ExtendedTriple]) -> int:
        """Insert every triple; return how many new facts were created."""
        before = len(self._by_key)
        for triple in triples:
            self.add(triple)
        return len(self._by_key) - before

    def discard(self, triple: ExtendedTriple) -> bool:
        """Remove the fact identified by *triple*'s key. Returns ``True`` if present."""
        return self._discard_key(triple.key())

    def remove_subject(self, subject: str) -> int:
        """Remove every fact about *subject*; return the number removed."""
        keys = list(self._by_subject.get(subject, ()))
        for key in keys:
            self._discard_key(key)
        return len(keys)

    def remove_source(self, source_id: str) -> int:
        """Drop *source_id* from all provenance; purge facts left unsupported."""
        removed = 0
        for key in list(self._by_key):
            triple = self._by_key[key]
            if source_id in triple.provenance:
                triple.provenance.remove_source(source_id)
                if triple.provenance.is_empty():
                    self._discard_key(key)
                    removed += 1
        return removed

    def overwrite_source_partition(
        self, source_id: str, triples: Iterable[ExtendedTriple]
    ) -> tuple[int, int]:
        """Replace every fact attributed *only* to *source_id* with *triples*."""
        removed = 0
        for key in list(self._by_key):
            triple = self._by_key[key]
            if triple.provenance.sources == [source_id]:
                self._discard_key(key)
                removed += 1
        added = self.add_all(triples)
        return removed, added

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def facts_about(self, subject: str) -> list[ExtendedTriple]:
        """Return all facts whose subject is *subject*."""
        return [self._by_key[key] for key in sorted(self._by_subject.get(subject, ()), key=repr)]

    def facts_with_predicate(self, predicate: str) -> list[ExtendedTriple]:
        """Return all facts using *predicate*."""
        return [self._by_key[key] for key in sorted(self._by_predicate.get(predicate, ()), key=repr)]

    def facts_with_object(self, obj: Value) -> list[ExtendedTriple]:
        """Return all facts whose object equals *obj* (literal or entity id)."""
        try:
            keys = self._by_object.get(obj, set())
        except TypeError:  # unhashable object value: fall back to a scan
            return [t for t in self if t.obj == obj]
        return [self._by_key[key] for key in sorted(keys, key=repr)]

    def value_of(self, subject: str, predicate: str) -> Value | None:
        """Return one object for ``(subject, predicate)`` or ``None``."""
        for triple in self.facts_about(subject):
            if triple.predicate == predicate and not triple.is_composite:
                return triple.obj
        return None

    def values_of(self, subject: str, predicate: str) -> list[Value]:
        """Return every object asserted for ``(subject, predicate)``."""
        return [
            t.obj
            for t in self.facts_about(subject)
            if t.predicate == predicate and not t.is_composite
        ]

    def relationship_facts(
        self, subject: str, predicate: str
    ) -> dict[str, list[ExtendedTriple]]:
        """Group composite facts of ``(subject, predicate)`` by relationship id."""
        grouped: dict[str, list[ExtendedTriple]] = defaultdict(list)
        for triple in self.facts_about(subject):
            if triple.predicate == predicate and triple.is_composite:
                grouped[triple.relationship_id].append(triple)
        return dict(grouped)

    def subjects(self) -> set[str]:
        """Return the set of all subject identifiers."""
        return {s for s, keys in self._by_subject.items() if keys}

    def predicates(self) -> set[str]:
        """Return the set of all predicates in use."""
        return {p for p, keys in self._by_predicate.items() if keys}

    def entity_count(self) -> int:
        """Number of distinct subjects (entities) in the store."""
        return len(self.subjects())

    def fact_count(self) -> int:
        """Number of distinct facts in the store."""
        return len(self._by_key)

    def filter(self, predicate_fn: Callable[[ExtendedTriple], bool]) -> "LegacyTripleStore":
        """Return a new store with the facts satisfying *predicate_fn*."""
        return LegacyTripleStore(t.copy() for t in self if predicate_fn(t))

    def snapshot(self) -> "LegacyTripleStore":
        """Return a deep copy of the store (used for versioned analytics)."""
        return LegacyTripleStore(t.copy() for t in self)

    def to_rows(self) -> list[dict]:
        """Serialize the whole store to relational rows."""
        return [t.to_row() for t in self]

    def canonical_rows(self) -> list[tuple]:
        """Canonical content of the store: every fact with its provenance.

        Sorted, hashable, and independent of insertion order — the same
        definition as :meth:`repro.model.triples.TripleStore.canonical_rows`,
        which is what makes the two implementations comparable byte-for-byte.
        """
        return sorted(
            (
                repr(triple.key()),
                tuple(
                    sorted(
                        (ref.source_id, ref.trust)
                        for ref in triple.provenance.references
                    )
                ),
            )
            for triple in self
        )

    @classmethod
    def from_rows(cls, rows: Iterable[dict]) -> "LegacyTripleStore":
        """Deserialize a store from rows produced by :meth:`to_rows`."""
        return cls(ExtendedTriple.from_row(row) for row in rows)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _index_object(self, triple: ExtendedTriple, key: tuple) -> None:
        try:
            self._by_object[triple.obj].add(key)
        except TypeError:
            # Unhashable literal objects are rare; they are still retrievable
            # via full scans, just not via the object index.
            pass

    def _discard_key(self, key: tuple) -> bool:
        triple = self._by_key.pop(key, None)
        if triple is None:
            return False
        self._by_subject[triple.subject].discard(key)
        self._by_predicate[triple.predicate].discard(key)
        try:
            self._by_object[triple.obj].discard(key)
        except TypeError:
            pass
        return True

    def __iter__(self) -> Iterator[ExtendedTriple]:
        return iter(list(self._by_key.values()))

    def __len__(self) -> int:
        return len(self._by_key)

    def __contains__(self, triple: object) -> bool:
        if not isinstance(triple, ExtendedTriple):
            return False
        return triple.key() in self._by_key
