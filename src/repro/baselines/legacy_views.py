"""Legacy view computation baseline for the Figure 8 comparison.

Figure 8 compares the Graph Engine's analytics store against a legacy
implementation of the same schematized entity views as custom Spark jobs.  The
characteristic weaknesses of that legacy path — row-at-a-time processing over
the raw triples, no secondary indexes, dependent lookups executed as repeated
full scans — are what this baseline reproduces: it computes *exactly the same
view rows* as :meth:`repro.engine.analytics.AnalyticsStore.entity_view`, but
with nested-loop scans over the full triple list, so the relative speedup of
the optimized hash-join path can be measured on identical inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.engine.analytics import EntityViewSpec, Relation
from repro.model.entity import NAME_PREDICATES
from repro.model.triples import ExtendedTriple


@dataclass
class LegacyViewEngine:
    """Row-at-a-time, index-free computation of schematized entity views."""

    triples: list[ExtendedTriple] = field(default_factory=list)
    rows_scanned: int = 0

    @classmethod
    def from_triples(cls, triples: Iterable[ExtendedTriple]) -> "LegacyViewEngine":
        """Load the raw triples the legacy jobs would read from the warehouse dump."""
        return cls(triples=list(triples))

    # -------------------------------------------------------------- #
    # the legacy "job"
    # -------------------------------------------------------------- #
    def entity_view(self, spec: EntityViewSpec) -> Relation:
        """Compute the same view as the optimized engine with full scans."""
        subjects = self._scan_subjects_of_type(spec.entity_type)
        rows = []
        for subject in subjects:
            row: dict = {"subject": subject}
            for predicate in spec.predicates:
                row[predicate] = self._collapse(self._scan_values(subject, predicate))
            for column, reference_predicate in spec.reference_joins.items():
                references = self._scan_values(subject, reference_predicate)
                names = [self._scan_display_name(ref) for ref in references]
                row[column] = self._collapse(names)
            for column, (first, second) in spec.nested_joins.items():
                mids = self._scan_values(subject, first)
                far_names = []
                for mid in mids:
                    for far in self._scan_values(str(mid), second):
                        far_names.append(self._scan_display_name(str(far)))
                row[column] = self._collapse(far_names)
            rows.append(row)
        return Relation(spec.name, rows)

    def compute_views(self, specs: Sequence[EntityViewSpec]) -> dict[str, Relation]:
        """Run one legacy job per view spec."""
        return {spec.name: self.entity_view(spec) for spec in specs}

    # -------------------------------------------------------------- #
    # full-scan primitives (no indexes, by design)
    # -------------------------------------------------------------- #
    def _scan_subjects_of_type(self, entity_type: str) -> list[str]:
        subjects = []
        seen = set()
        for triple in self.triples:
            self.rows_scanned += 1
            if (
                triple.predicate == "type"
                and not triple.is_composite
                and triple.obj == entity_type
                and triple.subject not in seen
            ):
                seen.add(triple.subject)
                subjects.append(triple.subject)
        return sorted(subjects)

    def _scan_values(self, subject: str, predicate: str) -> list[object]:
        values = []
        for triple in self.triples:
            self.rows_scanned += 1
            effective = triple.relationship_predicate or triple.predicate
            if triple.subject == subject and effective == predicate:
                values.append(triple.obj)
        return values

    def _scan_display_name(self, subject: str) -> object:
        for triple in self.triples:
            self.rows_scanned += 1
            if triple.subject == subject and triple.predicate in NAME_PREDICATES:
                return triple.obj
        return subject

    @staticmethod
    def _collapse(values: list[object]) -> object:
        cleaned = [value for value in values if value is not None]
        if not cleaned:
            return None
        if len(cleaned) == 1:
            return cleaned[0]
        return cleaned
