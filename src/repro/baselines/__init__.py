"""Baseline implementations the paper compares Saga's components against."""

from repro.baselines.embedding_baselines import (
    ClusterProfile,
    DGLKEStyleTrainer,
    PBGStyleTrainer,
)
from repro.baselines.legacy_nerd import (
    LegacyEntityLinker,
    PopularityDisambiguator,
    PopularityDisambiguatorConfig,
)
from repro.baselines.legacy_store import LegacyTripleStore
from repro.baselines.legacy_views import LegacyViewEngine

__all__ = [
    "ClusterProfile",
    "DGLKEStyleTrainer",
    "LegacyEntityLinker",
    "LegacyTripleStore",
    "LegacyViewEngine",
    "PBGStyleTrainer",
    "PopularityDisambiguator",
    "PopularityDisambiguatorConfig",
]
