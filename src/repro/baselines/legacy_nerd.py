"""The previously-deployed entity disambiguation baseline of Figure 14.

Section 6.3 describes the alternative solution NERD is compared against: it
does not leverage the relational information of KG entities; instead it relies
on learned name/popularity correlations, which "promotes high-quality
predictions for head entities but not tail entities".  This baseline
reproduces that behaviour: candidates are scored from name similarity and a
popularity prior only — the mention's surrounding context is ignored — so it
resolves ambiguous surface forms to the most popular entity and is far less
confident (or simply wrong) on tail entities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.nerd.candidates import Candidate, CandidateRetriever
from repro.ml.nerd.disambiguation import DisambiguationResult, MentionContext
from repro.ml.nerd.entity_view import NERDEntityRecord, NERDEntityView
from repro.ml.similarity import jaro_winkler_similarity, normalize_string
from repro.model.ontology import Ontology


@dataclass
class PopularityDisambiguatorConfig:
    """Weights of the popularity-prior baseline."""

    name_weight: float = 3.4
    popularity_weight: float = 2.6
    bias: float = -3.2
    rejection_threshold: float = 0.5


class PopularityDisambiguator:
    """Context-free disambiguation: name similarity + popularity prior only."""

    def __init__(self, config: PopularityDisambiguatorConfig | None = None) -> None:
        self.config = config or PopularityDisambiguatorConfig()

    def score(self, context: MentionContext, record: NERDEntityRecord) -> float:
        """Probability of *record* being the referent, ignoring the context."""
        mention = normalize_string(context.mention)
        names = record.normalized_names() or {normalize_string(record.entity_id)}
        name_similarity = max(
            (jaro_winkler_similarity(mention, name) for name in names), default=0.0
        )
        logit = (
            self.config.bias
            + self.config.name_weight * name_similarity
            + self.config.popularity_weight * min(max(record.importance, 0.0), 1.0)
        )
        return float(1.0 / (1.0 + np.exp(-logit)))

    def disambiguate(
        self, context: MentionContext, candidates: list[Candidate]
    ) -> DisambiguationResult:
        """Pick the highest-scoring candidate, rejecting below the threshold."""
        if not candidates:
            return DisambiguationResult(None, 0.0, rejected=True, candidate_count=0)
        scores = {c.entity_id: self.score(context, c.record) for c in candidates}
        best_id = max(scores, key=lambda entity_id: (scores[entity_id], entity_id))
        best = scores[best_id]
        if best < self.config.rejection_threshold:
            return DisambiguationResult(
                None, best, rejected=True, scores=scores, candidate_count=len(candidates)
            )
        return DisambiguationResult(
            best_id, best, rejected=False, scores=scores, candidate_count=len(candidates)
        )


class LegacyEntityLinker:
    """Baseline service with the same interface shape as :class:`NERDService`."""

    def __init__(
        self,
        view: NERDEntityView,
        ontology: Ontology | None = None,
        config: PopularityDisambiguatorConfig | None = None,
    ) -> None:
        self.view = view
        self.retriever = CandidateRetriever(view, ontology=ontology)
        self.disambiguator = PopularityDisambiguator(config)

    def link_mention(
        self,
        mention: str,
        context_text: str = "",
        context_values: tuple[str, ...] = (),
        type_hints: tuple[str, ...] = (),
    ) -> DisambiguationResult:
        """Retrieve candidates and disambiguate without using the context."""
        candidates = self.retriever.retrieve(mention, type_hints)
        context = MentionContext(
            mention=mention,
            context_text=context_text,
            context_values=tuple(context_values),
            type_hints=type_hints,
        )
        return self.disambiguator.disambiguate(context, candidates)

    def resolve(self, mention: str, context) -> object | None:
        """Object-resolution protocol adapter (mirrors :meth:`NERDService.resolve`)."""
        from repro.construction.object_resolution import Resolution

        result = self.link_mention(
            mention,
            context_values=tuple(getattr(context, "context_values", ()) or ()),
            type_hints=tuple(getattr(context, "expected_types", ()) or ()),
        )
        if result.entity_id is None:
            return None
        return Resolution(
            entity_id=result.entity_id,
            confidence=result.confidence,
            candidate_count=result.candidate_count,
        )
