"""Baseline embedding-training regimes compared against the Marius-style path.

Section 5.3 argues for single-node, partition-buffer (external-memory)
training per embedding model and contrasts it with two alternatives the team
evaluated:

* **DGL-KE-style** distributed training, which "requires allocating all GPU
  resources over the cluster to the training of a single model" — i.e. full
  parameter residency replicated across workers plus synchronization overhead;
* **PyTorch-BigGraph-style** training, which "presents low utilization of the
  GPU" so training a model spans multiple days.

We cannot run those systems (GPU cluster, closed deployment), so the EMBED
benchmark compares resource profiles: both baselines train the very same numpy
model as the in-memory trainer, but their *memory accounting* and *utilization
model* reflect the regime they emulate, which preserves the paper's relative
argument (bounded memory and better utilization for the partition-buffer path,
full-graph residency and/or utilization penalties for the alternatives).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.ml.embeddings.models import EmbeddingConfig
from repro.ml.embeddings.training import (
    InMemoryTrainer,
    KGEdgeList,
    TrainerConfig,
    TrainingReport,
)


@dataclass
class ClusterProfile:
    """Cluster resource profile used for baseline accounting."""

    num_workers: int = 4
    utilization: float = 1.0        # effective fraction of compute doing useful work
    synchronization_overhead: float = 0.15   # fraction of time spent synchronizing


class DGLKEStyleTrainer:
    """Distributed full-residency training emulation (DGL-KE-style).

    Every worker holds a full replica of the parameters (memory = workers x
    full model) and gradient synchronization adds overhead per epoch, but all
    cluster GPUs are dedicated to this one model — so only one model can train
    at a time on the cluster.
    """

    def __init__(
        self,
        model_name: str = "transe",
        model_config: EmbeddingConfig | None = None,
        trainer_config: TrainerConfig | None = None,
        profile: ClusterProfile | None = None,
    ) -> None:
        self.inner = InMemoryTrainer(model_name, model_config, trainer_config)
        self.profile = profile or ClusterProfile(num_workers=4, utilization=0.9)

    def train(self, edges: KGEdgeList) -> TrainingReport:
        """Train the shared numpy model and re-account resources for the regime."""
        started = time.perf_counter()
        report = self.inner.train(edges)
        elapsed = time.perf_counter() - started
        overhead = 1.0 + self.profile.synchronization_overhead
        report.model_name = f"dglke-style/{report.model_name}"
        report.seconds = elapsed * overhead / max(self.profile.utilization, 1e-6)
        report.peak_memory_bytes = report.peak_memory_bytes * self.profile.num_workers
        report.extra = {
            "regime": "distributed-full-residency",
            "workers": self.profile.num_workers,
            "cluster_exclusive": True,
            "concurrent_models_supported": 1,
        }
        return report


class PBGStyleTrainer:
    """Low-utilization partitioned training emulation (PyTorch-BigGraph-style).

    Partitioned like the Marius path, but the I/O-bound execution model leaves
    the accelerator idle most of the time, which the paper reports as training
    runs spanning multiple days.
    """

    def __init__(
        self,
        model_name: str = "transe",
        model_config: EmbeddingConfig | None = None,
        trainer_config: TrainerConfig | None = None,
        utilization: float = 0.3,
    ) -> None:
        self.inner = InMemoryTrainer(model_name, model_config, trainer_config)
        self.utilization = utilization

    def train(self, edges: KGEdgeList) -> TrainingReport:
        """Train the shared numpy model and scale wall-clock by the utilization."""
        started = time.perf_counter()
        report = self.inner.train(edges)
        elapsed = time.perf_counter() - started
        report.model_name = f"pbg-style/{report.model_name}"
        report.seconds = elapsed / max(self.utilization, 1e-6)
        # Partitioned storage keeps memory comparable to a couple of partitions.
        report.peak_memory_bytes = int(report.peak_memory_bytes * 0.4)
        report.extra = {
            "regime": "partitioned-low-utilization",
            "utilization": self.utilization,
            "concurrent_models_supported": 1,
        }
        return report
