"""Name pools, nicknames, and noise utilities for the synthetic world.

The paper evaluates Saga on proprietary production feeds.  We substitute a
synthetic world whose entity names, aliases, and noise characteristics mimic
the phenomena the platform has to handle: nicknames/synonyms ("Robert" vs
"Bob"), typos, re-orderings ("Smith, Robert"), partial names, and shared
surface forms across entities (the "Hanover, NH" vs "Hanover, Germany"
ambiguity driving NERD).
"""

from __future__ import annotations

import numpy as np

FIRST_NAMES = [
    "Robert", "Elizabeth", "William", "Katherine", "Michael", "Jennifer",
    "Christopher", "Margaret", "Alexander", "Victoria", "Jonathan", "Samantha",
    "Nicholas", "Stephanie", "Benjamin", "Alexandra", "Theodore", "Gabriella",
    "Sebastian", "Isabella", "Nathaniel", "Penelope", "Zachary", "Charlotte",
    "Dominic", "Josephine", "Frederick", "Genevieve", "Maximilian", "Rosalind",
    "Harrison", "Evangeline", "Montgomery", "Seraphina", "Bartholomew", "Anastasia",
    "Leonardo", "Valentina", "Rafael", "Carolina", "Santiago", "Lucia",
    "Hiroshi", "Yuki", "Kenji", "Sakura", "Wei", "Mei", "Arjun", "Priya",
    "Omar", "Layla", "Kwame", "Amara", "Sven", "Ingrid", "Dmitri", "Natasha",
]

NICKNAMES = {
    "robert": ["bob", "rob", "bobby", "bert"],
    "elizabeth": ["liz", "beth", "lizzie", "eliza"],
    "william": ["will", "bill", "billy", "liam"],
    "katherine": ["kate", "kathy", "katie", "kat"],
    "michael": ["mike", "mikey", "mick"],
    "jennifer": ["jen", "jenny"],
    "christopher": ["chris", "topher", "kit"],
    "margaret": ["maggie", "meg", "peggy", "greta"],
    "alexander": ["alex", "xander", "sasha", "lex"],
    "victoria": ["vicky", "tori", "vic"],
    "jonathan": ["jon", "johnny", "nathan"],
    "samantha": ["sam", "sammy"],
    "nicholas": ["nick", "nico", "cole"],
    "stephanie": ["steph", "stevie"],
    "benjamin": ["ben", "benny", "benji"],
    "alexandra": ["alex", "lexi", "sandra"],
    "theodore": ["ted", "teddy", "theo"],
    "gabriella": ["gabby", "ella", "brie"],
    "sebastian": ["seb", "bash"],
    "isabella": ["bella", "izzy", "isa"],
    "nathaniel": ["nate", "nat"],
    "penelope": ["penny", "nell"],
    "zachary": ["zach", "zack"],
    "charlotte": ["charlie", "lottie"],
    "dominic": ["dom", "nico"],
    "josephine": ["jo", "josie"],
    "frederick": ["fred", "freddy", "fritz"],
    "genevieve": ["gen", "evie"],
    "maximilian": ["max", "milo"],
    "rosalind": ["rosa", "roz"],
    "harrison": ["harry"],
    "evangeline": ["eva", "evie", "angie"],
    "bartholomew": ["bart", "barry"],
    "anastasia": ["ana", "stacy", "tasia"],
    "leonardo": ["leo", "leon"],
    "valentina": ["val", "tina"],
    "dmitri": ["dima", "mitya"],
    "natasha": ["nat", "tasha"],
}

LAST_NAMES = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
    "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
    "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
    "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
    "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
    "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
    "Carter", "Roberts", "Gomez", "Phillips", "Evans", "Turner", "Diaz",
    "Parker", "Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris",
    "Morales", "Murphy", "Cook", "Rogers", "Gutierrez", "Ortiz", "Morgan",
    "Cooper", "Peterson", "Bailey", "Reed", "Kelly", "Howard", "Ramos",
    "Kim", "Cox", "Ward", "Richardson", "Watson", "Brooks", "Chavez",
]

CITY_NAMES = [
    "Hanover", "Springfield", "Franklin", "Clinton", "Georgetown", "Salem",
    "Fairview", "Madison", "Washington", "Arlington", "Ashland", "Burlington",
    "Manchester", "Oxford", "Cambridge", "Dover", "Newport", "Bristol",
    "Richmond", "Auburn", "Milton", "Clayton", "Dayton", "Lexington",
    "Milford", "Riverside", "Greenville", "Kingston", "Marion", "Monroe",
]

REGION_NAMES = [
    "New Hampshire", "Germany", "Massachusetts", "Ontario", "Bavaria",
    "California", "Texas", "Victoria", "Saxony", "Vermont", "Oregon",
    "Yorkshire", "Quebec", "New South Wales", "Catalonia", "Tuscany",
]

MUSIC_WORDS = [
    "Midnight", "Echo", "Velvet", "Neon", "Crystal", "Golden", "Silver",
    "Electric", "Lunar", "Solar", "Crimson", "Azure", "Wild", "Silent",
    "Broken", "Endless", "Fading", "Rising", "Falling", "Burning",
    "Dreams", "Roads", "Lights", "Shadows", "Rivers", "Mountains",
    "Horizons", "Mirrors", "Wires", "Stars", "Waves", "Embers", "Echoes",
    "Hearts", "Voices", "Nights", "Days", "Skies", "Storms", "Secrets",
]

GENRES = [
    "pop", "rock", "indie", "electronic", "hip hop", "jazz", "classical",
    "country", "folk", "r&b", "metal", "ambient", "soul", "blues", "dance",
]

MOVIE_WORDS = [
    "Last", "First", "Dark", "Bright", "Lost", "Hidden", "Final", "Eternal",
    "Secret", "Silent", "Distant", "Forgotten", "Crimson", "Golden",
    "Kingdom", "Empire", "Journey", "Return", "Legacy", "Covenant",
    "Horizon", "Voyage", "Shadow", "Garden", "Winter", "Summer",
]

SCHOOL_WORDS = [
    "University of", "Institute of", "College of", "Academy of",
]

TEAM_WORDS = [
    "Wolves", "Hawks", "Titans", "Comets", "Raptors", "Chargers", "Pioneers",
    "Voyagers", "Mariners", "Guardians", "Falcons", "Storm", "Thunder",
    "Rangers", "Royals", "Spartans", "Knights", "Bears", "Lions", "Sharks",
]

COMPANY_WORDS = [
    "Apex", "Northwind", "Bluepeak", "Ironwood", "Starfall", "Brightline",
    "Cobalt", "Redwood", "Summit", "Meridian", "Vertex", "Atlas", "Orion",
]

_QWERTY_NEIGHBORS = {
    "a": "qws", "b": "vgn", "c": "xdv", "d": "sfe", "e": "wrd", "f": "dgr",
    "g": "fht", "h": "gjy", "i": "uok", "j": "hku", "k": "jli", "l": "ko",
    "m": "n", "n": "bm", "o": "ipl", "p": "o", "q": "wa", "r": "etf",
    "s": "adw", "t": "ryg", "u": "yij", "v": "cbf", "w": "qes", "x": "zcs",
    "y": "tuh", "z": "xa",
}


def synonym_lexicon() -> dict[str, str]:
    """Return a ``nickname -> canonical first name`` lexicon (lower-cased)."""
    lexicon: dict[str, str] = {}
    for canonical, nicknames in NICKNAMES.items():
        for nickname in nicknames:
            lexicon[nickname] = canonical
    return lexicon


def make_typo(text: str, rng: np.random.Generator) -> str:
    """Introduce a single realistic typo into *text*."""
    if len(text) < 4:
        return text
    chars = list(text)
    # Only corrupt alphabetic positions so separators stay intact.
    positions = [i for i, c in enumerate(chars) if c.isalpha()]
    if not positions:
        return text
    position = positions[int(rng.integers(0, len(positions)))]
    operation = rng.choice(["swap", "drop", "replace", "double"])
    if operation == "swap" and position < len(chars) - 1:
        chars[position], chars[position + 1] = chars[position + 1], chars[position]
    elif operation == "drop":
        del chars[position]
    elif operation == "replace":
        lower = chars[position].lower()
        neighbors = _QWERTY_NEIGHBORS.get(lower, "")
        if neighbors:
            replacement = neighbors[int(rng.integers(0, len(neighbors)))]
            chars[position] = replacement.upper() if chars[position].isupper() else replacement
    else:
        chars.insert(position, chars[position])
    return "".join(chars)


def person_aliases(first: str, last: str, rng: np.random.Generator) -> list[str]:
    """Generate alternative surface forms for a person's name."""
    aliases = []
    nicknames = NICKNAMES.get(first.lower(), [])
    if nicknames:
        nickname = nicknames[int(rng.integers(0, len(nicknames)))]
        aliases.append(f"{nickname.title()} {last}")
    aliases.append(f"{first[0]}. {last}")
    aliases.append(f"{last}, {first}")
    return aliases


def pick(pool: list[str], rng: np.random.Generator) -> str:
    """Pick a uniformly random element of *pool*."""
    return pool[int(rng.integers(0, len(pool)))]
