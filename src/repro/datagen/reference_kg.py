"""Build a clean reference KG directly from the ground-truth world.

Several subsystems (NERD, embeddings, views, the live graph) are evaluated
against a *known-correct* knowledge graph so their measurements are not
confounded by linking noise.  This module converts the synthetic world into a
:class:`~repro.model.triples.TripleStore` whose entity identifiers are the
ground-truth identifiers, mirroring what the production platform would have
after a fully-converged construction run.
"""

from __future__ import annotations

from repro.datagen.world import World
from repro.model.provenance import Provenance
from repro.model.triples import ExtendedTriple, TripleStore
from repro.model.identifiers import relationship_id

REFERENCE_SOURCE = "reference"


def world_to_store(world: World, source_id: str = REFERENCE_SOURCE) -> TripleStore:
    """Materialize the ground-truth world as a triple store."""
    store = TripleStore()
    for entity in world.entities.values():
        provenance = Provenance.from_source(source_id, 0.95)
        store.add(
            ExtendedTriple(
                subject=entity.truth_id,
                predicate="type",
                obj=entity.entity_type,
                provenance=provenance.copy(),
            )
        )
        store.add(
            ExtendedTriple(
                subject=entity.truth_id,
                predicate="name",
                obj=entity.name,
                provenance=provenance.copy(),
            )
        )
        for alias in entity.aliases:
            store.add(
                ExtendedTriple(
                    subject=entity.truth_id,
                    predicate="alias",
                    obj=alias,
                    provenance=provenance.copy(),
                )
            )
        store.add(
            ExtendedTriple(
                subject=entity.truth_id,
                predicate="popularity",
                obj=round(float(entity.popularity), 4),
                provenance=provenance.copy(),
            )
        )
        for predicate, value in entity.facts.items():
            for item in value if isinstance(value, list) else [value]:
                if item is None:
                    continue
                store.add(
                    ExtendedTriple(
                        subject=entity.truth_id,
                        predicate=predicate,
                        obj=item,
                        provenance=provenance.copy(),
                    )
                )
        for predicate, nodes in entity.relationships.items():
            for node in nodes:
                discriminator = "|".join(f"{k}={node[k]}" for k in sorted(node))
                rel_id = relationship_id(entity.truth_id, predicate, discriminator)
                for rel_predicate, rel_value in node.items():
                    if rel_value is None:
                        continue
                    store.add(
                        ExtendedTriple(
                            subject=entity.truth_id,
                            predicate=predicate,
                            obj=rel_value,
                            relationship_id=rel_id,
                            relationship_predicate=rel_predicate,
                            provenance=provenance.copy(),
                        )
                    )
    return store
