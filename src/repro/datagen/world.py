"""Ground-truth synthetic world used by tests, examples, and benchmarks.

The production Saga deployment integrates proprietary feeds (Wikipedia,
Wikidata, music catalogs, sports providers, ...).  This module substitutes a
deterministic generator that produces a *ground-truth world*: a set of
real-world entities with canonical names, aliases, facts, and relationships
spanning the verticals the paper motivates (people, music, movies, places,
organizations, sports).  Noisy data sources are then derived from the world by
:mod:`repro.datagen.sources`, which lets every experiment measure precision
and recall against known truth — something the paper can only report in
relative terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datagen import names as name_pools
from repro.datagen.names import person_aliases, pick


@dataclass
class WorldEntity:
    """One ground-truth entity in the synthetic world."""

    truth_id: str
    entity_type: str
    name: str
    aliases: list[str] = field(default_factory=list)
    facts: dict[str, object] = field(default_factory=dict)
    relationships: dict[str, list[dict]] = field(default_factory=dict)
    popularity: float = 0.1

    @property
    def all_names(self) -> list[str]:
        """Canonical name plus aliases."""
        return [self.name, *self.aliases]

    @property
    def is_head(self) -> bool:
        """Head (popular) entities have popularity above 0.5."""
        return self.popularity > 0.5


@dataclass
class WorldConfig:
    """Size knobs for the synthetic world."""

    num_people: int = 60
    num_artists: int = 30
    num_actors: int = 15
    num_athletes: int = 15
    songs_per_artist: int = 4
    albums_per_artist: int = 2
    num_playlists: int = 10
    num_movies: int = 25
    num_cities: int = 24
    num_countries: int = 8
    num_schools: int = 10
    num_labels: int = 8
    num_teams: int = 12
    num_stadiums: int = 12
    num_companies: int = 10
    ambiguous_city_fraction: float = 0.4
    head_fraction: float = 0.25
    seed: int = 7


class World:
    """Container of ground-truth entities with typed and name lookups."""

    def __init__(self, config: WorldConfig) -> None:
        self.config = config
        self.entities: dict[str, WorldEntity] = {}
        self._by_type: dict[str, list[str]] = {}

    def add(self, entity: WorldEntity) -> WorldEntity:
        """Register a ground-truth entity."""
        self.entities[entity.truth_id] = entity
        self._by_type.setdefault(entity.entity_type, []).append(entity.truth_id)
        return entity

    def get(self, truth_id: str) -> WorldEntity:
        """Return the entity with the given ground-truth identifier."""
        return self.entities[truth_id]

    def of_type(self, entity_type: str) -> list[WorldEntity]:
        """Return every entity of exactly *entity_type*."""
        return [self.entities[tid] for tid in self._by_type.get(entity_type, [])]

    def of_types(self, entity_types: tuple[str, ...]) -> list[WorldEntity]:
        """Return entities of any of the given types."""
        found: list[WorldEntity] = []
        for entity_type in entity_types:
            found.extend(self.of_type(entity_type))
        return found

    def types(self) -> list[str]:
        """Entity types present in the world."""
        return sorted(self._by_type)

    def name_of(self, truth_id: str) -> str:
        """Canonical name of an entity (empty string when unknown)."""
        entity = self.entities.get(truth_id)
        return entity.name if entity else ""

    def __len__(self) -> int:
        return len(self.entities)

    def alias_groups(self) -> list[list[str]]:
        """Per-entity name/alias groups for distant supervision (§5.1)."""
        return [entity.all_names for entity in self.entities.values() if entity.all_names]


def generate_world(config: WorldConfig | None = None) -> World:
    """Generate the deterministic ground-truth world."""
    config = config or WorldConfig()
    rng = np.random.default_rng(config.seed)
    world = World(config)
    counter = {"value": 0}

    def next_id(prefix: str) -> str:
        counter["value"] += 1
        return f"truth:{prefix}{counter['value']:05d}"

    def popularity() -> float:
        if rng.random() < config.head_fraction:
            return float(0.6 + 0.4 * rng.random())
        return float(0.01 + 0.45 * rng.random())

    # ----------------------------------------------------------------- #
    # places
    # ----------------------------------------------------------------- #
    countries = []
    for index in range(config.num_countries):
        region = name_pools.REGION_NAMES[index % len(name_pools.REGION_NAMES)]
        country = world.add(
            WorldEntity(
                truth_id=next_id("country"),
                entity_type="country",
                name=region,
                aliases=[],
                facts={"population": int(rng.integers(1, 90)) * 1_000_000},
                popularity=popularity(),
            )
        )
        countries.append(country)

    cities = []
    # A fraction of cities deliberately share a surface name with a city in a
    # different country, creating the "Hanover, NH vs Hanover, Germany"
    # ambiguity that NERD must resolve via context.  Drawing names from a pool
    # smaller than the number of cities forces the duplicates.
    name_pool_size = max(3, int(round(config.num_cities * (1.0 - config.ambiguous_city_fraction))))
    name_pool_size = min(name_pool_size, len(name_pools.CITY_NAMES))
    for index in range(config.num_cities):
        base_name = name_pools.CITY_NAMES[index % name_pool_size]
        country = countries[int(rng.integers(0, len(countries)))]
        city = world.add(
            WorldEntity(
                truth_id=next_id("city"),
                entity_type="city",
                name=base_name,
                aliases=[f"{base_name}, {country.name}"],
                facts={
                    "located_in": country.truth_id,
                    "population": int(rng.integers(1, 900)) * 1_000,
                },
                popularity=popularity(),
            )
        )
        cities.append(city)

    # ----------------------------------------------------------------- #
    # organizations
    # ----------------------------------------------------------------- #
    schools = []
    for index in range(config.num_schools):
        city = cities[int(rng.integers(0, len(cities)))]
        prefix = pick(name_pools.SCHOOL_WORDS, rng)
        name = f"{prefix} {city.name}"
        schools.append(
            world.add(
                WorldEntity(
                    truth_id=next_id("school"),
                    entity_type="school",
                    name=name,
                    aliases=[f"{city.name} {prefix.split()[0]}"],
                    facts={"located_in": city.truth_id},
                    popularity=popularity(),
                )
            )
        )

    labels = []
    for index in range(config.num_labels):
        word = name_pools.COMPANY_WORDS[index % len(name_pools.COMPANY_WORDS)]
        labels.append(
            world.add(
                WorldEntity(
                    truth_id=next_id("label"),
                    entity_type="record_label",
                    name=f"{word} Records",
                    aliases=[f"{word} Music"],
                    facts={"headquarters": pick([c.truth_id for c in cities], rng)},
                    popularity=popularity(),
                )
            )
        )

    companies = []
    for index in range(config.num_companies):
        word = name_pools.COMPANY_WORDS[(index * 3 + 1) % len(name_pools.COMPANY_WORDS)]
        companies.append(
            world.add(
                WorldEntity(
                    truth_id=next_id("company"),
                    entity_type="company",
                    name=f"{word} Technologies",
                    aliases=[f"{word} Tech", word],
                    facts={"headquarters": pick([c.truth_id for c in cities], rng)},
                    popularity=popularity(),
                )
            )
        )

    stadiums = []
    for index in range(config.num_stadiums):
        city = cities[index % len(cities)]
        stadiums.append(
            world.add(
                WorldEntity(
                    truth_id=next_id("stadium"),
                    entity_type="stadium",
                    name=f"{city.name} Arena",
                    aliases=[f"{city.name} Stadium"],
                    facts={"located_in": city.truth_id},
                    popularity=popularity(),
                )
            )
        )

    teams = []
    for index in range(config.num_teams):
        city = cities[int(rng.integers(0, len(cities)))]
        mascot = name_pools.TEAM_WORDS[index % len(name_pools.TEAM_WORDS)]
        teams.append(
            world.add(
                WorldEntity(
                    truth_id=next_id("team"),
                    entity_type="sports_team",
                    name=f"{city.name} {mascot}",
                    aliases=[mascot, f"{city.name[:3].upper()} {mascot}"],
                    facts={
                        "headquarters": city.truth_id,
                        "venue": stadiums[index % len(stadiums)].truth_id,
                    },
                    popularity=popularity(),
                )
            )
        )

    # ----------------------------------------------------------------- #
    # people
    # ----------------------------------------------------------------- #
    people: list[WorldEntity] = []
    artists: list[WorldEntity] = []
    actors: list[WorldEntity] = []
    athletes: list[WorldEntity] = []
    total_people = config.num_people
    for index in range(total_people):
        first = pick(name_pools.FIRST_NAMES, rng)
        last = pick(name_pools.LAST_NAMES, rng)
        full_name = f"{first} {last}"
        if index < config.num_artists:
            entity_type = "music_artist"
        elif index < config.num_artists + config.num_actors:
            entity_type = "actor"
        elif index < config.num_artists + config.num_actors + config.num_athletes:
            entity_type = "athlete"
        else:
            entity_type = "person"
        birth_city = cities[int(rng.integers(0, len(cities)))]
        school = schools[int(rng.integers(0, len(schools)))]
        person = world.add(
            WorldEntity(
                truth_id=next_id("person"),
                entity_type=entity_type,
                name=full_name,
                aliases=person_aliases(first, last, rng),
                facts={
                    "birth_date": f"{int(rng.integers(1950, 2004))}-"
                                  f"{int(rng.integers(1, 13)):02d}-"
                                  f"{int(rng.integers(1, 29)):02d}",
                    "birth_place": birth_city.truth_id,
                    "occupation": {
                        "music_artist": ["singer", "songwriter"],
                        "actor": ["actor"],
                        "athlete": ["athlete"],
                        "person": ["researcher"],
                    }[entity_type],
                },
                relationships={
                    "educated_at": [
                        {
                            "school": school.truth_id,
                            "degree": pick(["BA", "BSc", "MSc", "PhD"], rng),
                            "year": int(rng.integers(1970, 2022)),
                        }
                    ]
                },
                popularity=popularity(),
            )
        )
        people.append(person)
        if entity_type == "music_artist":
            person.facts["record_label"] = pick([l.truth_id for l in labels], rng)
            artists.append(person)
        elif entity_type == "actor":
            actors.append(person)
        elif entity_type == "athlete":
            person.facts["plays_for"] = pick([t.truth_id for t in teams], rng)
            athletes.append(person)

    # Spouses: pair up a fraction of people.
    shuffled = list(people)
    rng.shuffle(shuffled)
    for i in range(0, len(shuffled) - 1, 4):
        a, b = shuffled[i], shuffled[i + 1]
        a.facts["spouse"] = b.truth_id
        b.facts["spouse"] = a.truth_id

    # ----------------------------------------------------------------- #
    # music catalog
    # ----------------------------------------------------------------- #
    albums: list[WorldEntity] = []
    songs: list[WorldEntity] = []
    for artist in artists:
        artist_albums = []
        for _ in range(config.albums_per_artist):
            title = f"{pick(name_pools.MUSIC_WORDS, rng)} {pick(name_pools.MUSIC_WORDS, rng)}"
            album = world.add(
                WorldEntity(
                    truth_id=next_id("album"),
                    entity_type="album",
                    name=title,
                    aliases=[f"{title} (Deluxe)"],
                    facts={
                        "performed_by": artist.truth_id,
                        "record_label": artist.facts.get("record_label"),
                        "release_date": f"{int(rng.integers(1990, 2022))}",
                        "genre": pick(name_pools.GENRES, rng),
                    },
                    popularity=artist.popularity * float(0.5 + 0.5 * rng.random()),
                )
            )
            albums.append(album)
            artist_albums.append(album)
        for song_index in range(config.songs_per_artist):
            title = f"{pick(name_pools.MUSIC_WORDS, rng)} {pick(name_pools.MUSIC_WORDS, rng)}"
            album = artist_albums[song_index % len(artist_albums)]
            song = world.add(
                WorldEntity(
                    truth_id=next_id("song"),
                    entity_type="song",
                    name=title,
                    aliases=[f"{title} (Remix)"] if rng.random() < 0.3 else [],
                    facts={
                        "performed_by": artist.truth_id,
                        "part_of_album": album.truth_id,
                        "duration_seconds": int(rng.integers(120, 420)),
                        "genre": album.facts.get("genre"),
                        "release_date": album.facts.get("release_date"),
                    },
                    popularity=artist.popularity * float(0.3 + 0.7 * rng.random()),
                )
            )
            songs.append(song)

    playlists = []
    for index in range(config.num_playlists):
        playlist_songs = [
            songs[int(rng.integers(0, len(songs)))].truth_id for _ in range(6)
        ] if songs else []
        playlists.append(
            world.add(
                WorldEntity(
                    truth_id=next_id("playlist"),
                    entity_type="playlist",
                    name=f"{pick(name_pools.MUSIC_WORDS, rng)} Mix {index + 1}",
                    facts={"track": playlist_songs,
                           "genre": pick(name_pools.GENRES, rng)},
                    popularity=popularity(),
                )
            )
        )

    # ----------------------------------------------------------------- #
    # movies
    # ----------------------------------------------------------------- #
    movies = []
    for index in range(config.num_movies):
        title = f"The {pick(name_pools.MOVIE_WORDS, rng)} {pick(name_pools.MOVIE_WORDS, rng)}"
        director = people[int(rng.integers(0, len(people)))]
        cast = [actors[int(rng.integers(0, len(actors)))] for _ in range(3)] if actors else []
        movies.append(
            world.add(
                WorldEntity(
                    truth_id=next_id("movie"),
                    entity_type="movie",
                    name=title,
                    aliases=[title.replace("The ", "")],
                    facts={
                        "directed_by": director.truth_id,
                        "release_date": f"{int(rng.integers(1980, 2022))}",
                        "genre": pick(["drama", "comedy", "thriller", "sci-fi", "action"], rng),
                    },
                    relationships={
                        "cast_member": [
                            {"actor": member.truth_id,
                             "role": f"{pick(name_pools.FIRST_NAMES, rng)} {pick(name_pools.LAST_NAMES, rng)}"}
                            for member in cast
                        ]
                    },
                    popularity=popularity(),
                )
            )
        )

    # Mayors / heads of state for QA intents.
    for city in cities:
        mayor = people[int(rng.integers(0, len(people)))]
        city.facts["mayor"] = mayor.truth_id
    for country in countries:
        leader = people[int(rng.integers(0, len(people)))]
        country.facts["head_of_state"] = leader.truth_id
        country.facts["capital"] = cities[int(rng.integers(0, len(cities)))].truth_id

    return world
