"""Derive noisy, overlapping data sources from the ground-truth world.

Each generated source mimics an upstream provider feed: it covers a subset of
the world's entities for some verticals, re-states facts with its own level of
noise (typos, nicknames, missing values, within-source duplicates), refers to
other entities by *name strings* (so object resolution is required), and can
optionally use a source-specific schema so that ontology alignment has real
work to do.

A :class:`GeneratedSource` keeps the mapping from every emitted source-entity
identifier back to the ground-truth entity, which is what lets tests and
benchmarks report linking precision/recall against known truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datagen.names import make_typo
from repro.datagen.world import World, WorldEntity
from repro.model.entity import SourceEntity


@dataclass
class SourceSpec:
    """Configuration of one synthetic upstream source."""

    source_id: str
    entity_types: tuple[str, ...]
    coverage: float = 1.0            # fraction of matching world entities included
    duplicate_rate: float = 0.0      # fraction of entities emitted twice (in-source dups)
    typo_rate: float = 0.1           # chance the primary name carries a typo
    alias_rate: float = 0.3          # chance an alias is used instead of the name
    missing_rate: float = 0.1        # chance an individual fact is dropped
    trust: float = 0.8
    include_volatile: bool = True    # emit popularity-style volatile predicates
    schema_map: dict[str, str] = field(default_factory=dict)  # kg predicate -> source name
    seed: int = 17


@dataclass
class GeneratedSource:
    """A materialized source snapshot plus its ground-truth mapping."""

    spec: SourceSpec
    entities: list[SourceEntity]
    truth_map: dict[str, str]        # source entity id -> world truth id
    snapshot: int = 0

    @property
    def source_id(self) -> str:
        """Identifier of the upstream source."""
        return self.spec.source_id

    def truth_of(self, source_entity_id: str) -> str | None:
        """Ground-truth id for a source entity id, or ``None``."""
        return self.truth_map.get(source_entity_id)


# The predicates each vertical emits (beyond name/alias/type).
_TYPE_PREDICATES: dict[str, list[str]] = {
    "person": ["birth_date", "birth_place", "occupation", "spouse"],
    "music_artist": ["birth_date", "birth_place", "occupation", "record_label", "spouse"],
    "actor": ["birth_date", "birth_place", "occupation", "spouse"],
    "athlete": ["birth_date", "birth_place", "occupation", "plays_for", "spouse"],
    "song": ["performed_by", "part_of_album", "duration_seconds", "genre", "release_date"],
    "album": ["performed_by", "record_label", "release_date", "genre"],
    "playlist": ["track", "genre"],
    "movie": ["directed_by", "release_date", "genre"],
    "city": ["located_in", "population", "mayor"],
    "country": ["capital", "head_of_state", "population"],
    "school": ["located_in"],
    "record_label": ["headquarters"],
    "company": ["headquarters"],
    "sports_team": ["headquarters", "venue"],
    "stadium": ["located_in"],
}

_REFERENCE_PREDICATES = {
    "birth_place", "spouse", "record_label", "performed_by", "part_of_album",
    "located_in", "capital", "head_of_state", "mayor", "headquarters", "venue",
    "directed_by", "plays_for", "track",
}

_COMPOSITE_PREDICATES = {"educated_at", "cast_member"}


def generate_source(
    world: World,
    spec: SourceSpec,
    snapshot: int = 0,
    rng: np.random.Generator | None = None,
) -> GeneratedSource:
    """Materialize one snapshot of a noisy source from the world."""
    rng = rng or np.random.default_rng(spec.seed + snapshot)
    candidates = world.of_types(spec.entity_types)
    entities: list[SourceEntity] = []
    truth_map: dict[str, str] = {}

    for world_entity in candidates:
        if rng.random() > spec.coverage:
            continue
        copies = 2 if rng.random() < spec.duplicate_rate else 1
        for copy_index in range(copies):
            record = _make_record(world, world_entity, spec, rng, copy_index)
            entities.append(record)
            truth_map[record.entity_id] = world_entity.truth_id

    return GeneratedSource(spec=spec, entities=entities, truth_map=truth_map,
                           snapshot=snapshot)


def evolve_source(
    world: World,
    previous: GeneratedSource,
    added_fraction: float = 0.05,
    updated_fraction: float = 0.1,
    deleted_fraction: float = 0.02,
    rng: np.random.Generator | None = None,
) -> GeneratedSource:
    """Produce the next snapshot of a source with realistic churn.

    A fraction of previously uncovered world entities appear (*added*), a
    fraction of existing records change a fact (*updated*), a fraction drop
    out (*deleted*), and volatile popularity always changes.
    """
    spec = previous.spec
    snapshot = previous.snapshot + 1
    rng = rng or np.random.default_rng(spec.seed + 1000 + snapshot)

    covered_truth_ids = set(previous.truth_map.values())
    candidates = world.of_types(spec.entity_types)
    uncovered = [e for e in candidates if e.truth_id not in covered_truth_ids]

    entities: list[SourceEntity] = []
    truth_map: dict[str, str] = {}

    for record in previous.entities:
        if rng.random() < deleted_fraction:
            continue
        clone = record.copy()
        truth_id = previous.truth_map[record.entity_id]
        world_entity = world.get(truth_id)
        if rng.random() < updated_fraction:
            _mutate_record(clone, world_entity, rng)
        if spec.include_volatile and "popularity" in clone.properties:
            clone.properties["popularity"] = round(
                float(np.clip(world_entity.popularity + rng.normal(0, 0.05), 0.0, 1.0)), 4
            )
        entities.append(clone)
        truth_map[clone.entity_id] = truth_id

    num_to_add = int(len(uncovered) * added_fraction) if uncovered else 0
    rng.shuffle(uncovered)
    for world_entity in uncovered[:max(num_to_add, 0)]:
        record = _make_record(world, world_entity, spec, rng, copy_index=0)
        entities.append(record)
        truth_map[record.entity_id] = world_entity.truth_id

    return GeneratedSource(spec=spec, entities=entities, truth_map=truth_map,
                           snapshot=snapshot)


# --------------------------------------------------------------------- #
# record construction helpers
# --------------------------------------------------------------------- #
def _make_record(
    world: World,
    world_entity: WorldEntity,
    spec: SourceSpec,
    rng: np.random.Generator,
    copy_index: int,
) -> SourceEntity:
    local_id = world_entity.truth_id.split(":", 1)[1]
    suffix = f"-{copy_index}" if copy_index else ""
    entity_id = f"{spec.source_id}:{local_id}{suffix}"

    name = world_entity.name
    if world_entity.aliases and rng.random() < spec.alias_rate:
        name = world_entity.aliases[int(rng.integers(0, len(world_entity.aliases)))]
    if rng.random() < spec.typo_rate:
        name = make_typo(name, rng)

    properties: dict[str, object] = {_source_key(spec, "name"): name}
    if world_entity.aliases and rng.random() < 0.5:
        properties[_source_key(spec, "alias")] = list(world_entity.aliases)

    for predicate in _TYPE_PREDICATES.get(world_entity.entity_type, []):
        if predicate not in world_entity.facts:
            continue
        if rng.random() < spec.missing_rate:
            continue
        value = world_entity.facts[predicate]
        properties[_source_key(spec, predicate)] = _render_value(
            world, predicate, value, rng
        )

    for predicate, nodes in world_entity.relationships.items():
        if rng.random() < spec.missing_rate:
            continue
        rendered_nodes = []
        for node in nodes:
            rendered_nodes.append(
                {key: _render_value(world, key, value, rng) for key, value in node.items()}
            )
        properties[_source_key(spec, predicate)] = rendered_nodes

    if spec.include_volatile:
        properties[_source_key(spec, "popularity")] = round(float(world_entity.popularity), 4)

    return SourceEntity(
        entity_id=entity_id,
        entity_type=world_entity.entity_type,
        properties=properties,
        source_id=spec.source_id,
        trust=spec.trust,
    )


def _mutate_record(
    record: SourceEntity, world_entity: WorldEntity, rng: np.random.Generator
) -> None:
    """Apply a small content change to simulate an upstream edit."""
    mutable = [
        key for key, value in record.properties.items()
        if isinstance(value, (str, int, float)) and key != "popularity"
    ]
    if not mutable:
        return
    key = mutable[int(rng.integers(0, len(mutable)))]
    value = record.properties[key]
    if isinstance(value, str):
        record.properties[key] = make_typo(value, rng) if len(value) > 4 else value + "!"
    else:
        record.properties[key] = value + 1


def _render_value(
    world: World, predicate: str, value: object, rng: np.random.Generator
) -> object:
    """Render a ground-truth fact value the way a source would state it.

    Reference facts are rendered as the referenced entity's *name* (sometimes
    an alias) rather than an identifier, which is exactly what object
    resolution has to fix during construction.
    """
    if isinstance(value, list):
        return [_render_value(world, predicate, item, rng) for item in value]
    if isinstance(value, str) and value.startswith("truth:"):
        target = world.entities.get(value)
        if target is None:
            return value
        if target.aliases and rng.random() < 0.25:
            return target.aliases[int(rng.integers(0, len(target.aliases)))]
        return target.name
    return value


def _source_key(spec: SourceSpec, predicate: str) -> str:
    """Translate a KG predicate to the source's own column name, if mapped."""
    return spec.schema_map.get(predicate, predicate)


# --------------------------------------------------------------------- #
# ready-made source suites
# --------------------------------------------------------------------- #
def music_catalog_spec(seed: int = 101) -> SourceSpec:
    """A music-vertical provider: artists, albums, songs, playlists."""
    return SourceSpec(
        source_id="musicdb",
        entity_types=("music_artist", "album", "song", "playlist", "record_label"),
        coverage=0.95,
        duplicate_rate=0.08,
        typo_rate=0.08,
        trust=0.85,
        seed=seed,
    )


def wiki_people_spec(seed: int = 102) -> SourceSpec:
    """An encyclopedia-style provider: people, places, organizations."""
    return SourceSpec(
        source_id="wiki",
        entity_types=(
            "person", "music_artist", "actor", "athlete",
            "city", "country", "school", "company", "sports_team", "stadium",
        ),
        coverage=0.9,
        duplicate_rate=0.03,
        typo_rate=0.05,
        trust=0.9,
        seed=seed,
    )


def movie_catalog_spec(seed: int = 103) -> SourceSpec:
    """A movie-vertical provider using a source-specific schema."""
    return SourceSpec(
        source_id="moviedb",
        entity_types=("movie", "actor"),
        coverage=0.95,
        duplicate_rate=0.05,
        typo_rate=0.08,
        trust=0.75,
        schema_map={
            "name": "title",
            "genre": "category",
            "directed_by": "director",
            "release_date": "year",
            "cast_member": "credits",
        },
        seed=seed,
    )


def sports_reference_spec(seed: int = 104) -> SourceSpec:
    """A sports-vertical provider: teams, athletes, stadiums."""
    return SourceSpec(
        source_id="sportsref",
        entity_types=("athlete", "sports_team", "stadium"),
        coverage=0.9,
        duplicate_rate=0.02,
        typo_rate=0.05,
        trust=0.8,
        seed=seed,
    )


def default_source_suite(world: World, seed: int = 100) -> list[GeneratedSource]:
    """Generate the standard four-source suite used by examples and benches."""
    specs = [
        music_catalog_spec(seed + 1),
        wiki_people_spec(seed + 2),
        movie_catalog_spec(seed + 3),
        sports_reference_spec(seed + 4),
    ]
    return [generate_source(world, spec) for spec in specs]
