"""Text passages with labelled entity mentions for NERD evaluation (§5.2, §6.3).

The generator composes short passages that mention ground-truth entities.  A
mention may use the canonical name, an alias, or an ambiguous surface form
shared by several entities (e.g. two cities called "Hanover"); the surrounding
context includes words drawn from *related* entities so that a context-aware
disambiguator can tell candidates apart while a popularity-only baseline
cannot — the phenomenon behind Figure 14.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datagen.world import World, WorldEntity


@dataclass
class LabelledMention:
    """A mention of one entity inside a passage, with ground truth."""

    mention: str
    truth_id: str
    entity_type: str
    start: int = 0
    end: int = 0
    is_head: bool = False


@dataclass
class Passage:
    """A text passage with its labelled mentions."""

    passage_id: str
    text: str
    mentions: list[LabelledMention] = field(default_factory=list)


@dataclass
class TextCorpusConfig:
    """Knobs for the annotated-passage generator."""

    num_passages: int = 120
    alias_mention_rate: float = 0.35
    tail_fraction: float = 0.5
    seed: int = 31


_TEMPLATES = {
    "person": [
        "We spoke with {mention}, who grew up in {context0} and studied at {context1}.",
        "{mention} was born in {context0} and is married to {context1}.",
        "The award went to {mention} for work completed at {context1} in {context0}.",
    ],
    "music_artist": [
        "{mention} released the album {context0} under {context1}.",
        "Fans of {mention} love the song {context0}, recorded with {context1}.",
        "{mention} performed tracks from {context0} last night.",
    ],
    "city": [
        "We visited {mention} after spending time in {context0} near {context1}.",
        "The conference takes place in {mention}, {context0}, close to {context1}.",
        "{mention} in {context0} elected a new mayor, {context1}.",
    ],
    "movie": [
        "{mention} was directed by {context0} and stars {context1}.",
        "Critics praised {mention}, the new film from {context0} featuring {context1}.",
    ],
    "sports_team": [
        "The {mention} won at {context0} in front of a home crowd in {context1}.",
        "{mention} signed a new player, {context0}, ahead of the game in {context1}.",
    ],
    "company": [
        "{mention} opened a new office in {context0} led by {context1}.",
        "Shares of {mention} rose after the announcement in {context0}.",
    ],
}


class TextCorpusGenerator:
    """Compose passages whose mentions require contextual disambiguation."""

    def __init__(self, world: World, config: TextCorpusConfig | None = None) -> None:
        self.world = world
        self.config = config or TextCorpusConfig()
        self._rng = np.random.default_rng(self.config.seed)

    def generate(self) -> list[Passage]:
        """Generate the configured number of labelled passages."""
        passages = []
        eligible = [
            entity for entity in self.world.entities.values()
            if entity.entity_type in _TEMPLATES
        ]
        head = [e for e in eligible if e.is_head]
        tail = [e for e in eligible if not e.is_head]
        for index in range(self.config.num_passages):
            use_tail = self._rng.random() < self.config.tail_fraction and tail
            pool = tail if use_tail else (head or tail)
            if not pool:
                break
            entity = pool[int(self._rng.integers(0, len(pool)))]
            passages.append(self._compose(index, entity))
        return passages

    def _compose(self, index: int, entity: WorldEntity) -> Passage:
        templates = _TEMPLATES[entity.entity_type]
        template = templates[int(self._rng.integers(0, len(templates)))]
        mention_text = entity.name
        if entity.aliases and self._rng.random() < self.config.alias_mention_rate:
            mention_text = entity.aliases[int(self._rng.integers(0, len(entity.aliases)))]
        context_names = self._context_names(entity)
        text = template.format(
            mention=mention_text,
            context0=context_names[0],
            context1=context_names[1],
        )
        start = text.index(mention_text)
        mention = LabelledMention(
            mention=mention_text,
            truth_id=entity.truth_id,
            entity_type=entity.entity_type,
            start=start,
            end=start + len(mention_text),
            is_head=entity.is_head,
        )
        return Passage(passage_id=f"passage:{index:05d}", text=text, mentions=[mention])

    def _context_names(self, entity: WorldEntity) -> list[str]:
        """Names of entities related to *entity* in the ground-truth graph."""
        related: list[str] = []
        for value in entity.facts.values():
            related.extend(self._names_from_value(value))
        for nodes in entity.relationships.values():
            for node in nodes:
                for value in node.values():
                    related.extend(self._names_from_value(value))
        # Reverse links: entities that point at this one (albums of an artist,
        # cast of a movie, schools in a city, ...).
        for other in self.world.entities.values():
            if len(related) >= 6:
                break
            for value in other.facts.values():
                if value == entity.truth_id or (
                    isinstance(value, list) and entity.truth_id in value
                ):
                    related.append(other.name)
                    break
        while len(related) < 2:
            related.append("the area")
        self._rng.shuffle(related)
        return related[:2]

    def _names_from_value(self, value: object) -> list[str]:
        if isinstance(value, list):
            names = []
            for item in value:
                names.extend(self._names_from_value(item))
            return names
        if isinstance(value, str) and value.startswith("truth:"):
            name = self.world.name_of(value)
            return [name] if name else []
        return []
