"""Synthetic live streaming sources (Section 4): sports, stocks, flights.

Live sources contribute temporal facts (scores, prices, statuses) whose
records are uniquely identifiable across updates, but whose *references* to
stable entities (teams, venues, cities, companies) are ambiguous text mentions
that live-graph construction must resolve against the stable KG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.datagen.world import World, WorldEntity


@dataclass
class LiveEvent:
    """One streaming update from a live source."""

    source_id: str
    event_id: str
    entity_type: str
    payload: dict[str, object]
    references: dict[str, str] = field(default_factory=dict)  # predicate -> mention text
    truth_references: dict[str, str] = field(default_factory=dict)  # predicate -> truth id
    timestamp: int = 0


@dataclass
class StreamConfig:
    """Size and churn knobs for the live event generator."""

    num_games: int = 8
    num_stocks: int = 6
    num_flights: int = 6
    updates_per_game: int = 5
    updates_per_stock: int = 4
    updates_per_flight: int = 3
    seed: int = 23


class LiveStreamGenerator:
    """Generate interleaved live events referencing stable-world entities."""

    def __init__(self, world: World, config: StreamConfig | None = None) -> None:
        self.world = world
        self.config = config or StreamConfig()
        self._rng = np.random.default_rng(self.config.seed)

    # -------------------------------------------------------------- #
    # sports scores
    # -------------------------------------------------------------- #
    def sports_events(self) -> list[LiveEvent]:
        """A stream of score updates for a slate of games."""
        teams = self.world.of_type("sports_team")
        stadiums = self.world.of_type("stadium")
        if len(teams) < 2:
            return []
        events: list[LiveEvent] = []
        timestamp = 0
        for game_index in range(self.config.num_games):
            home = teams[int(self._rng.integers(0, len(teams)))]
            away = home
            while away.truth_id == home.truth_id:
                away = teams[int(self._rng.integers(0, len(teams)))]
            venue = stadiums[int(self._rng.integers(0, len(stadiums)))] if stadiums else None
            game_id = f"sportsfeed:game/{game_index:04d}"
            home_score, away_score = 0, 0
            for update in range(self.config.updates_per_game):
                timestamp += 1
                home_score += int(self._rng.integers(0, 4))
                away_score += int(self._rng.integers(0, 4))
                status = "final" if update == self.config.updates_per_game - 1 else "in_progress"
                references = {
                    "home_team": self._mention(home),
                    "away_team": self._mention(away),
                }
                truth_refs = {"home_team": home.truth_id, "away_team": away.truth_id}
                if venue is not None:
                    references["venue"] = self._mention(venue)
                    truth_refs["venue"] = venue.truth_id
                events.append(
                    LiveEvent(
                        source_id="sportsfeed",
                        event_id=game_id,
                        entity_type="sports_game",
                        payload={
                            "name": f"{home.name} vs {away.name}",
                            "home_score": home_score,
                            "away_score": away_score,
                            "game_status": status,
                        },
                        references=references,
                        truth_references=truth_refs,
                        timestamp=timestamp,
                    )
                )
        return events

    # -------------------------------------------------------------- #
    # stock prices
    # -------------------------------------------------------------- #
    def stock_events(self) -> list[LiveEvent]:
        """A stream of price updates for company tickers."""
        companies = self.world.of_type("company")
        events: list[LiveEvent] = []
        timestamp = 0
        for stock_index, company in enumerate(companies[: self.config.num_stocks]):
            ticker = "".join(w[0] for w in company.name.split()[:3]).upper() + str(stock_index)
            price = float(self._rng.uniform(20, 400))
            for _ in range(self.config.updates_per_stock):
                timestamp += 1
                price = max(1.0, price * float(1 + self._rng.normal(0, 0.02)))
                events.append(
                    LiveEvent(
                        source_id="stockfeed",
                        event_id=f"stockfeed:quote/{ticker}",
                        entity_type="stock",
                        payload={
                            "name": f"{company.name} stock",
                            "ticker": ticker,
                            "stock_price": round(price, 2),
                        },
                        references={"issuer": self._mention(company)},
                        truth_references={"issuer": company.truth_id},
                        timestamp=timestamp,
                    )
                )
        return events

    # -------------------------------------------------------------- #
    # flights
    # -------------------------------------------------------------- #
    def flight_events(self) -> list[LiveEvent]:
        """A stream of flight-status updates between cities."""
        cities = self.world.of_type("city")
        if len(cities) < 2:
            return []
        events: list[LiveEvent] = []
        timestamp = 0
        statuses = ["scheduled", "boarding", "departed", "landed", "delayed"]
        for flight_index in range(self.config.num_flights):
            departure = cities[int(self._rng.integers(0, len(cities)))]
            arrival = departure
            while arrival.truth_id == departure.truth_id:
                arrival = cities[int(self._rng.integers(0, len(cities)))]
            number = f"SG{100 + flight_index}"
            for update in range(self.config.updates_per_flight):
                timestamp += 1
                events.append(
                    LiveEvent(
                        source_id="flightfeed",
                        event_id=f"flightfeed:flight/{number}",
                        entity_type="flight",
                        payload={
                            "name": f"Flight {number}",
                            "flight_number": number,
                            "flight_status": statuses[min(update, len(statuses) - 1)],
                        },
                        references={
                            "departure_airport": self._mention(departure),
                            "arrival_airport": self._mention(arrival),
                        },
                        truth_references={
                            "departure_airport": departure.truth_id,
                            "arrival_airport": arrival.truth_id,
                        },
                        timestamp=timestamp,
                    )
                )
        return events

    def all_events(self) -> list[LiveEvent]:
        """All streams merged and ordered by timestamp."""
        events = self.sports_events() + self.stock_events() + self.flight_events()
        return sorted(events, key=lambda event: (event.timestamp, event.event_id))

    def iter_events(self) -> Iterator[LiveEvent]:
        """Iterate over all events in timestamp order."""
        return iter(self.all_events())

    def _mention(self, entity: WorldEntity) -> str:
        """Render a (possibly alias) text mention of a stable entity."""
        if entity.aliases and self._rng.random() < 0.3:
            return entity.aliases[int(self._rng.integers(0, len(entity.aliases)))]
        return entity.name
