"""Synthetic world, noisy sources, live streams, and annotated text corpora."""

from repro.datagen.reference_kg import world_to_store
from repro.datagen.sources import (
    GeneratedSource,
    SourceSpec,
    default_source_suite,
    evolve_source,
    generate_source,
    movie_catalog_spec,
    music_catalog_spec,
    sports_reference_spec,
    wiki_people_spec,
)
from repro.datagen.streams import LiveEvent, LiveStreamGenerator, StreamConfig
from repro.datagen.text import (
    LabelledMention,
    Passage,
    TextCorpusConfig,
    TextCorpusGenerator,
)
from repro.datagen.world import World, WorldConfig, WorldEntity, generate_world

__all__ = [
    "GeneratedSource",
    "LabelledMention",
    "LiveEvent",
    "LiveStreamGenerator",
    "Passage",
    "SourceSpec",
    "StreamConfig",
    "TextCorpusConfig",
    "TextCorpusGenerator",
    "World",
    "WorldConfig",
    "WorldEntity",
    "default_source_suite",
    "evolve_source",
    "generate_source",
    "generate_world",
    "movie_catalog_spec",
    "music_catalog_spec",
    "sports_reference_spec",
    "wiki_people_spec",
    "world_to_store",
]
