"""The NERD service: mention generation, retrieval, disambiguation (Figure 10).

The service wires the stack together and exposes the two interfaces the paper
describes:

* **annotation** of text passages or semi-structured records — mention
  generation over the input, candidate retrieval, bulk contextual
  disambiguation, and preparation of the annotated output;
* **object resolution** for KG construction — the service structurally
  satisfies :class:`repro.construction.object_resolution.ObjectResolver`, so
  the construction pipeline can plug it in directly (optionally with entity
  type hints, the "NERD + type hints" configuration of Figure 14b).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.ml.encoders import StringEncoder
from repro.ml.nerd.candidates import CandidateRetriever, CandidateRetrieverConfig
from repro.ml.nerd.disambiguation import (
    ContextualDisambiguator,
    DisambiguationResult,
    MentionContext,
)
from repro.ml.nerd.entity_view import NERDEntityView
from repro.ml.similarity import normalize_string
from repro.model.ontology import Ontology
from repro.model.triples import TripleStore


@dataclass
class Mention:
    """A detected entity mention inside a text passage."""

    text: str
    start: int
    end: int


@dataclass
class Annotation:
    """One annotated mention: the mention plus the linked entity (if any)."""

    mention: Mention
    entity_id: str | None
    confidence: float
    rejected: bool
    candidate_count: int = 0


@dataclass
class NERDConfig:
    """Service-level configuration."""

    confidence_threshold: float = 0.5
    max_mention_tokens: int = 5
    retriever: CandidateRetrieverConfig = field(default_factory=CandidateRetrieverConfig)


class NERDService:
    """Entity recognition and disambiguation over the NERD Entity View."""

    def __init__(
        self,
        view: NERDEntityView,
        ontology: Ontology | None = None,
        encoder: StringEncoder | None = None,
        disambiguator: ContextualDisambiguator | None = None,
        config: NERDConfig | None = None,
    ) -> None:
        self.view = view
        self.ontology = ontology
        self.config = config or NERDConfig()
        self.retriever = CandidateRetriever(
            view, ontology=ontology, encoder=encoder, config=self.config.retriever
        )
        self.disambiguator = disambiguator or ContextualDisambiguator(
            encoder=encoder, rejection_threshold=self.config.confidence_threshold
        )
        self._gazetteer: dict[str, list[str]] = {}
        self._rebuild_gazetteer()

    @classmethod
    def from_store(
        cls,
        store: TripleStore,
        ontology: Ontology | None = None,
        encoder: StringEncoder | None = None,
        importance: dict[str, float] | None = None,
        config: NERDConfig | None = None,
    ) -> "NERDService":
        """Build the entity view from a KG store and wrap a service around it."""
        view = NERDEntityView.build(store, importance)
        return cls(view, ontology=ontology, encoder=encoder, config=config)

    # -------------------------------------------------------------- #
    # maintenance
    # -------------------------------------------------------------- #
    def refresh_entities(self, store: TripleStore, entity_ids: list[str]) -> None:
        """Refresh the entity view and retrieval indexes for changed entities."""
        self.view.refresh(store, entity_ids)
        self.retriever.refresh_entities(entity_ids)
        self._rebuild_gazetteer()

    def _rebuild_gazetteer(self) -> None:
        self._gazetteer.clear()
        for record in self.view.records():
            for name in record.names:
                normalized = normalize_string(name)
                if normalized:
                    self._gazetteer.setdefault(normalized, []).append(record.entity_id)

    # -------------------------------------------------------------- #
    # mention generation
    # -------------------------------------------------------------- #
    def generate_mentions(self, text: str) -> list[Mention]:
        """Detect candidate entity mentions in *text*.

        A gazetteer matcher over the entity view's surface forms: the longest
        non-overlapping known name at each position becomes a mention.  This
        is the "Mention Generation" component of the batch NERD deployment.
        """
        if not text:
            return []
        word_spans = [(m.start(), m.end()) for m in re.finditer(r"\S+", text)]
        mentions: list[Mention] = []
        position = 0
        while position < len(word_spans):
            matched = None
            for width in range(min(self.config.max_mention_tokens, len(word_spans) - position), 0, -1):
                start = word_spans[position][0]
                end = word_spans[position + width - 1][1]
                surface = text[start:end].strip(" ,.;:!?'\"")
                if normalize_string(surface) in self._gazetteer:
                    matched = Mention(text=surface, start=start, end=start + len(surface))
                    position += width
                    break
            if matched is not None:
                mentions.append(matched)
            else:
                position += 1
        return mentions

    # -------------------------------------------------------------- #
    # annotation
    # -------------------------------------------------------------- #
    def annotate(self, text: str, type_hints: tuple[str, ...] = ()) -> list[Annotation]:
        """Annotate every detected mention in *text* with a KG entity."""
        annotations = []
        for mention in self.generate_mentions(text):
            result = self.link_mention(
                mention.text, context_text=text, type_hints=type_hints
            )
            annotations.append(
                Annotation(
                    mention=mention,
                    entity_id=result.entity_id,
                    confidence=result.confidence,
                    rejected=result.rejected,
                    candidate_count=result.candidate_count,
                )
            )
        return annotations

    def annotate_batch(
        self, passages: Iterable[str], type_hints: tuple[str, ...] = ()
    ) -> list[list[Annotation]]:
        """Annotate a batch of passages (the elastic batch deployment path)."""
        return [self.annotate(passage, type_hints) for passage in passages]

    def link_mention(
        self,
        mention: str,
        context_text: str = "",
        context_values: Sequence[str] = (),
        type_hints: tuple[str, ...] = (),
    ) -> DisambiguationResult:
        """Retrieve candidates for one mention and disambiguate it."""
        candidates = self.retriever.retrieve(mention, type_hints)
        context = MentionContext(
            mention=mention,
            context_text=context_text,
            context_values=tuple(context_values),
            type_hints=type_hints,
        )
        return self.disambiguator.disambiguate(context, candidates)

    # -------------------------------------------------------------- #
    # object resolution protocol (used by KG construction)
    # -------------------------------------------------------------- #
    def resolve(self, mention: str, context) -> object | None:
        """Resolve *mention* for object resolution during construction.

        ``context`` is a
        :class:`repro.construction.object_resolution.ResolutionContext`; the
        return value mirrors
        :class:`repro.construction.object_resolution.Resolution`.  Imported
        lazily to keep the ML stack import-independent from construction.
        """
        from repro.construction.object_resolution import Resolution

        result = self.link_mention(
            mention,
            context_values=tuple(getattr(context, "context_values", ()) or ()),
            type_hints=tuple(getattr(context, "expected_types", ()) or ()),
        )
        if result.entity_id is None:
            return None
        return Resolution(
            entity_id=result.entity_id,
            confidence=result.confidence,
            candidate_count=result.candidate_count,
        )
