"""Named entity recognition and disambiguation (NERD) stack."""

from repro.ml.nerd.candidates import Candidate, CandidateRetriever, CandidateRetrieverConfig
from repro.ml.nerd.disambiguation import (
    ContextualDisambiguator,
    DisambiguationResult,
    MentionContext,
)
from repro.ml.nerd.entity_view import NERDEntityRecord, NERDEntityView
from repro.ml.nerd.service import Annotation, Mention, NERDConfig, NERDService

__all__ = [
    "Annotation",
    "Candidate",
    "CandidateRetriever",
    "CandidateRetrieverConfig",
    "ContextualDisambiguator",
    "DisambiguationResult",
    "Mention",
    "MentionContext",
    "NERDConfig",
    "NERDEntityRecord",
    "NERDEntityView",
    "NERDService",
]
