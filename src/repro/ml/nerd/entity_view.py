"""The NERD Entity View: per-entity summaries used for disambiguation (§5.2).

Each record summarizes what the KG knows about an entity — names and aliases,
ontology types, a textual description, important one-hop relationships, the
types of important neighbours, and the entity-importance score.  The view is
computed by the Graph Engine and kept fresh incrementally as facts arrive;
disambiguation compares the context of a text mention against these summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.model.entity import KGEntity
from repro.model.identifiers import is_kg_identifier
from repro.model.triples import TripleStore
from repro.ml.similarity import normalize_string, tokens


@dataclass
class NERDEntityRecord:
    """One entry of the NERD Entity View."""

    entity_id: str
    names: list[str] = field(default_factory=list)
    types: list[str] = field(default_factory=list)
    description: str = ""
    relations: list[tuple[str, str]] = field(default_factory=list)   # (predicate, neighbour name)
    neighbor_types: list[str] = field(default_factory=list)
    importance: float = 0.0

    def context_tokens(self) -> set[str]:
        """Token bag summarizing the entity for context-overlap scoring."""
        bag: set[str] = set()
        for name in self.names:
            bag.update(tokens(name))
        bag.update(tokens(self.description))
        for predicate, neighbor in self.relations:
            bag.update(tokens(predicate))
            bag.update(tokens(neighbor))
        for neighbor_type in self.neighbor_types:
            bag.update(tokens(neighbor_type))
        return bag

    def normalized_names(self) -> set[str]:
        """Normalized surface forms for exact-match candidate retrieval."""
        return {normalize_string(name) for name in self.names if normalize_string(name)}


class NERDEntityView:
    """Materialized, incrementally-maintainable collection of entity summaries."""

    def __init__(self) -> None:
        self._records: dict[str, NERDEntityRecord] = {}

    # -------------------------------------------------------------- #
    # construction / maintenance
    # -------------------------------------------------------------- #
    @classmethod
    def build(
        cls,
        store: TripleStore,
        importance: dict[str, float] | None = None,
    ) -> "NERDEntityView":
        """Build the view for every entity in *store*."""
        view = cls()
        view.refresh(store, store.subjects(), importance)
        return view

    def refresh(
        self,
        store: TripleStore,
        entity_ids: Iterable[str],
        importance: dict[str, float] | None = None,
    ) -> int:
        """(Re)build the records of *entity_ids* from the store."""
        importance = importance or {}
        names_cache: dict[str, str] = {}
        refreshed = 0
        for entity_id in entity_ids:
            facts = store.facts_about(entity_id)
            if not facts:
                self._records.pop(entity_id, None)
                continue
            entity = KGEntity.from_triples(entity_id, facts)
            record = NERDEntityRecord(
                entity_id=entity_id,
                names=list(entity.names) or [entity_id],
                types=list(entity.types),
                description=str(entity.value("description") or ""),
                importance=float(importance.get(entity_id, self._popularity(entity))),
            )
            record.relations = self._relations(store, entity, names_cache)
            record.neighbor_types = self._neighbor_types(store, entity)
            self._records[entity_id] = record
            refreshed += 1
        return refreshed

    def remove(self, entity_id: str) -> bool:
        """Drop an entity's record (entity deleted from the KG)."""
        return self._records.pop(entity_id, None) is not None

    # -------------------------------------------------------------- #
    # access
    # -------------------------------------------------------------- #
    def get(self, entity_id: str) -> NERDEntityRecord | None:
        """Record for *entity_id* (``None`` when absent)."""
        return self._records.get(entity_id)

    def records(self) -> list[NERDEntityRecord]:
        """All records in the view."""
        return list(self._records.values())

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, entity_id: object) -> bool:
        return entity_id in self._records

    # -------------------------------------------------------------- #
    # internals
    # -------------------------------------------------------------- #
    def _relations(
        self, store: TripleStore, entity: KGEntity, names_cache: dict[str, str]
    ) -> list[tuple[str, str]]:
        relations: list[tuple[str, str]] = []
        for predicate, values in entity.facts.items():
            for value in values:
                if isinstance(value, str) and self._is_entity_reference(store, value):
                    relations.append((predicate, self._name_of(store, value, names_cache)))
        for predicate, nodes in entity.relationships.items():
            for node in nodes:
                for rel_predicate, value in node.facts.items():
                    if isinstance(value, str) and self._is_entity_reference(store, value):
                        relations.append(
                            (f"{predicate}.{rel_predicate}", self._name_of(store, value, names_cache))
                        )
        # Reverse relations: who points at this entity (e.g. the albums of an artist).
        for triple in store.facts_with_object(entity.entity_id):
            if triple.subject == entity.entity_id:
                continue
            relations.append(
                (f"~{triple.relationship_predicate or triple.predicate}",
                 self._name_of(store, triple.subject, names_cache))
            )
            if len(relations) >= 40:
                break
        return relations[:40]

    def _neighbor_types(self, store: TripleStore, entity: KGEntity) -> list[str]:
        neighbor_types: list[str] = []
        neighbors: set[str] = set()
        for values in entity.facts.values():
            for value in values:
                if isinstance(value, str) and self._is_entity_reference(store, value):
                    neighbors.add(value)
        for triple in store.facts_with_object(entity.entity_id):
            neighbors.add(triple.subject)
        for neighbor in sorted(neighbors):
            for type_value in store.values_of(neighbor, "type"):
                if type_value not in neighbor_types:
                    neighbor_types.append(str(type_value))
        return neighbor_types[:20]

    def _is_entity_reference(self, store: TripleStore, value: str) -> bool:
        return is_kg_identifier(value) or bool(store.facts_about(value))

    def _name_of(self, store: TripleStore, entity_id: str, cache: dict[str, str]) -> str:
        cached = cache.get(entity_id)
        if cached is not None:
            return cached
        name = store.value_of(entity_id, "name") or entity_id
        cache[entity_id] = str(name)
        return str(name)

    def _popularity(self, entity: KGEntity) -> float:
        value = entity.value("popularity")
        try:
            return float(value) if value is not None else 0.0
        except (TypeError, ValueError):
            return 0.0
