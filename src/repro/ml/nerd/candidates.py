"""Candidate retrieval for NERD: the blocking analogue of entity linking (§5.2).

Given an entity mention, candidate retrieval prunes the enormous space of KG
entities to a small set of likely matches using exact normalized-name lookup,
token-level postings, and — when available — a learned string encoder.
Admissible-type hints narrow the candidates further and entity importance
prioritizes candidates when the budget is tight.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.ml.encoders import StringEncoder
from repro.ml.nerd.entity_view import NERDEntityRecord, NERDEntityView
from repro.ml.similarity import jaro_winkler_similarity, normalize_string, tokens
from repro.model.ontology import Ontology


@dataclass
class Candidate:
    """One candidate entity with its retrieval score."""

    record: NERDEntityRecord
    retrieval_score: float

    @property
    def entity_id(self) -> str:
        """Candidate entity identifier."""
        return self.record.entity_id


@dataclass
class CandidateRetrieverConfig:
    """Retrieval budget and scoring knobs."""

    max_candidates: int = 10
    fuzzy_threshold: float = 0.82
    importance_weight: float = 0.15
    use_learned_similarity: bool = True


class CandidateRetriever:
    """Name-based candidate generation over the NERD Entity View."""

    def __init__(
        self,
        view: NERDEntityView,
        ontology: Ontology | None = None,
        encoder: StringEncoder | None = None,
        config: CandidateRetrieverConfig | None = None,
    ) -> None:
        self.view = view
        self.ontology = ontology
        self.encoder = encoder
        self.config = config or CandidateRetrieverConfig()
        self._exact: dict[str, set[str]] = defaultdict(set)
        self._token_postings: dict[str, set[str]] = defaultdict(set)
        self.rebuild()

    def rebuild(self) -> None:
        """Rebuild the retrieval indexes from the current entity view."""
        self._exact.clear()
        self._token_postings.clear()
        for record in self.view.records():
            for name in record.normalized_names():
                self._exact[name].add(record.entity_id)
                for token in tokens(name):
                    self._token_postings[token].add(record.entity_id)

    def refresh_entities(self, entity_ids: list[str]) -> None:
        """Re-index specific entities after the entity view was refreshed."""
        doomed = set(entity_ids)
        for postings in (self._exact, self._token_postings):
            for key in list(postings):
                postings[key] -= doomed
                if not postings[key]:
                    del postings[key]
        for entity_id in entity_ids:
            record = self.view.get(entity_id)
            if record is None:
                continue
            for name in record.normalized_names():
                self._exact[name].add(entity_id)
                for token in tokens(name):
                    self._token_postings[token].add(entity_id)

    # -------------------------------------------------------------- #
    # retrieval
    # -------------------------------------------------------------- #
    def retrieve(
        self, mention: str, type_hints: tuple[str, ...] = ()
    ) -> list[Candidate]:
        """Return the top candidates for *mention*, best retrieval score first."""
        normalized = normalize_string(mention)
        if not normalized:
            return []
        scores: dict[str, float] = {}

        for entity_id in self._exact.get(normalized, ()):
            scores[entity_id] = max(scores.get(entity_id, 0.0), 1.0)

        mention_tokens = set(tokens(normalized))
        pooled: set[str] = set()
        for token in mention_tokens:
            pooled.update(self._token_postings.get(token, ()))
        for entity_id in pooled:
            if entity_id in scores:
                continue
            record = self.view.get(entity_id)
            if record is None:
                continue
            best = max(
                (jaro_winkler_similarity(normalized, name) for name in record.normalized_names()),
                default=0.0,
            )
            if self.encoder is not None and self.config.use_learned_similarity:
                learned = max(
                    (self.encoder.similarity(normalized, name) for name in record.normalized_names()),
                    default=0.0,
                )
                best = max(best, learned)
            if best >= self.config.fuzzy_threshold:
                scores[entity_id] = best

        candidates = []
        for entity_id, score in scores.items():
            record = self.view.get(entity_id)
            if record is None:
                continue
            if type_hints and not self._type_admissible(record, type_hints):
                continue
            blended = score + self.config.importance_weight * record.importance
            candidates.append(Candidate(record=record, retrieval_score=blended))
        candidates.sort(key=lambda c: (-c.retrieval_score, c.entity_id))
        return candidates[: self.config.max_candidates]

    def _type_admissible(
        self, record: NERDEntityRecord, type_hints: tuple[str, ...]
    ) -> bool:
        if not record.types:
            return True
        for record_type in record.types:
            for hint in type_hints:
                if record_type == hint:
                    return True
                if (
                    self.ontology is not None
                    and self.ontology.has_type(record_type)
                    and self.ontology.has_type(hint)
                    and self.ontology.compatible_types(record_type, hint)
                ):
                    return True
        return False
