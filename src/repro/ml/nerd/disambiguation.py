"""Contextual entity disambiguation with a rejection option (§5.2, Figure 11).

The production model is a transformer that attends between the mention context
and each attribute of the NERD Entity View record.  We reproduce the same
decision structure with an interpretable feature-interaction model:

* one sub-score per view attribute (names, description, relations, neighbour
  types, entity types, importance) measuring its agreement with the mention
  and its surrounding context;
* a linear layer over those sub-scores with a sigmoid link, trained with weak
  supervision (labelled mentions bootstrapped from the KG and synthetic text);
* one-vs-all scoring across the candidate set with a rejection threshold, so
  the model can decline to link when no candidate is supported by the context.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import NERDError
from repro.ml.encoders import StringEncoder
from repro.ml.nerd.candidates import Candidate
from repro.ml.nerd.entity_view import NERDEntityRecord
from repro.ml.similarity import jaro_winkler_similarity, normalize_string, tokens

_STOP_WORDS = {
    "the", "a", "an", "of", "in", "at", "on", "and", "or", "to", "for", "with",
    "after", "before", "from", "by", "is", "was", "were", "we", "new", "near",
}

FEATURE_NAMES = (
    "name_similarity",
    "learned_name_similarity",
    "context_overlap",
    "relation_overlap",
    "neighbor_type_overlap",
    "type_hint_match",
    "importance",
)


@dataclass
class MentionContext:
    """A mention plus the context available for disambiguation."""

    mention: str
    context_text: str = ""
    context_values: tuple[str, ...] = ()
    type_hints: tuple[str, ...] = ()

    def context_tokens(self) -> set[str]:
        """Informative tokens around the mention (mention + stop words removed)."""
        bag = set(tokens(self.context_text))
        for value in self.context_values:
            bag.update(tokens(value))
        bag -= set(tokens(self.mention))
        return {token for token in bag if token not in _STOP_WORDS and len(token) > 2}


@dataclass
class DisambiguationResult:
    """Output of disambiguating one mention."""

    entity_id: str | None
    confidence: float
    rejected: bool
    scores: dict[str, float] = field(default_factory=dict)   # entity id -> probability
    candidate_count: int = 0


class ContextualDisambiguator:
    """Feature-interaction disambiguation model with rejection."""

    #: Hand-tuned prior weights used before any weak-supervision training.
    DEFAULT_WEIGHTS = {
        "name_similarity": 4.0,
        "learned_name_similarity": 1.0,
        "context_overlap": 2.6,
        "relation_overlap": 2.2,
        "neighbor_type_overlap": 0.6,
        "type_hint_match": 1.2,
        "importance": 0.8,
    }
    DEFAULT_BIAS = -4.0

    def __init__(
        self,
        encoder: StringEncoder | None = None,
        rejection_threshold: float = 0.5,
        weights: dict[str, float] | None = None,
        bias: float | None = None,
    ) -> None:
        self.encoder = encoder
        self.rejection_threshold = rejection_threshold
        self.weights = dict(weights or self.DEFAULT_WEIGHTS)
        self.bias = self.DEFAULT_BIAS if bias is None else bias
        self.trained = False

    # -------------------------------------------------------------- #
    # features
    # -------------------------------------------------------------- #
    def features(
        self, context: MentionContext, record: NERDEntityRecord
    ) -> dict[str, float]:
        """Per-attribute agreement features for (mention, context, candidate)."""
        mention_norm = normalize_string(context.mention)
        names = record.normalized_names() or {normalize_string(record.entity_id)}
        name_similarity = max(
            (jaro_winkler_similarity(mention_norm, name) for name in names), default=0.0
        )
        learned = 0.0
        if self.encoder is not None:
            learned = max(
                (self.encoder.similarity(mention_norm, name) for name in names), default=0.0
            )
        context_tokens = context.context_tokens()
        candidate_tokens = record.context_tokens() - set(tokens(context.mention))
        context_overlap = (
            len(context_tokens & candidate_tokens) / len(context_tokens)
            if context_tokens
            else 0.0
        )
        relation_overlap = self._relation_overlap(context_tokens, record)
        neighbor_type_overlap = self._token_list_overlap(context_tokens, record.neighbor_types)
        type_hint_match = 0.0
        if context.type_hints:
            type_hint_match = (
                1.0 if any(hint in record.types for hint in context.type_hints) else 0.0
            )
        return {
            "name_similarity": name_similarity,
            "learned_name_similarity": learned,
            "context_overlap": min(context_overlap, 1.0),
            "relation_overlap": relation_overlap,
            "neighbor_type_overlap": neighbor_type_overlap,
            "type_hint_match": type_hint_match,
            "importance": min(max(record.importance, 0.0), 1.0),
        }

    def score(self, context: MentionContext, record: NERDEntityRecord) -> float:
        """Calibrated probability that *record* is the referent of the mention."""
        feats = self.features(context, record)
        logit = self.bias + sum(self.weights[name] * feats[name] for name in FEATURE_NAMES)
        return float(1.0 / (1.0 + np.exp(-logit)))

    # -------------------------------------------------------------- #
    # prediction
    # -------------------------------------------------------------- #
    def disambiguate(
        self, context: MentionContext, candidates: Sequence[Candidate]
    ) -> DisambiguationResult:
        """One-vs-all scoring over *candidates* with rejection."""
        if not candidates:
            return DisambiguationResult(None, 0.0, rejected=True, candidate_count=0)
        scores = {
            candidate.entity_id: self.score(context, candidate.record)
            for candidate in candidates
        }
        best_id = max(scores, key=lambda entity_id: (scores[entity_id], entity_id))
        best_score = scores[best_id]
        if best_score < self.rejection_threshold:
            return DisambiguationResult(
                None, best_score, rejected=True, scores=scores,
                candidate_count=len(candidates),
            )
        return DisambiguationResult(
            best_id, best_score, rejected=False, scores=scores,
            candidate_count=len(candidates),
        )

    # -------------------------------------------------------------- #
    # weak-supervision training
    # -------------------------------------------------------------- #
    def fit(
        self,
        examples: Sequence[tuple[MentionContext, NERDEntityRecord, int]],
        learning_rate: float = 0.3,
        epochs: int = 150,
        l2: float = 1e-3,
        seed: int = 3,
    ) -> "ContextualDisambiguator":
        """Train the linear layer on (context, candidate, label) examples.

        Labels are 1 for the true referent and 0 for negative candidates; the
        examples are typically produced by weak supervision (entity-tagged
        text, query logs, or templated snippets generated from KG facts).
        """
        if not examples:
            raise NERDError("cannot train the disambiguator on zero examples")
        matrix = np.array(
            [[self.features(ctx, rec)[name] for name in FEATURE_NAMES] for ctx, rec, _ in examples]
        )
        labels = np.array([label for _, _, label in examples], dtype=float)
        rng = np.random.default_rng(seed)
        weights = np.array([self.weights[name] for name in FEATURE_NAMES]) + rng.normal(
            0, 0.01, len(FEATURE_NAMES)
        )
        bias = self.bias
        for _ in range(epochs):
            logits = matrix @ weights + bias
            predictions = 1.0 / (1.0 + np.exp(-logits))
            error = predictions - labels
            gradient = matrix.T @ error / len(labels) + l2 * weights
            weights -= learning_rate * gradient
            bias -= learning_rate * float(error.mean())
        self.weights = dict(zip(FEATURE_NAMES, weights.tolist()))
        self.bias = float(bias)
        self.trained = True
        return self

    # -------------------------------------------------------------- #
    # internals
    # -------------------------------------------------------------- #
    def _relation_overlap(self, context_tokens: set[str], record: NERDEntityRecord) -> float:
        if not record.relations or not context_tokens:
            return 0.0
        hits = 0
        for _, neighbor_name in record.relations:
            neighbor_tokens = {
                token for token in tokens(neighbor_name) if token not in _STOP_WORDS
            }
            if neighbor_tokens and neighbor_tokens & context_tokens:
                hits += 1
        return min(1.0, hits / max(len(record.relations), 1) * 3.0)

    def _token_list_overlap(self, context_tokens: set[str], values: list[str]) -> float:
        if not values or not context_tokens:
            return 0.0
        value_tokens = set()
        for value in values:
            value_tokens.update(tokens(value))
        if not value_tokens:
            return 0.0
        return len(value_tokens & context_tokens) / len(value_tokens)
