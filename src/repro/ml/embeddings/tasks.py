"""Embedding-backed tasks: fact ranking, fact verification, missing-fact imputation.

Section 5.3: Saga unifies three tasks on top of trained KG embeddings by
comparing the predicted object vector ``f(theta_s, theta_p)`` against the
embedding of the observed (or candidate) object:

* **fact ranking** — rank the multiple objects of a high-cardinality predicate
  (e.g. several occupations) by their plausibility so the dominant one can be
  surfaced first;
* **fact verification** — flag stored facts whose plausibility is unusually
  low compared with sibling facts as candidates for auditing;
* **missing-fact imputation** — when ``<s, p, ?>`` has no object, retrieve the
  most plausible candidate objects via nearest-neighbour search in the Vector
  DB.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.vector_db import VectorDB
from repro.errors import EmbeddingError
from repro.ml.embeddings.models import KGEmbeddingModel
from repro.ml.embeddings.training import KGEdgeList


@dataclass
class RankedFact:
    """One object of a fact ranked by embedding plausibility."""

    subject: str
    predicate: str
    obj: str
    score: float
    rank: int = 0


@dataclass
class VerificationFinding:
    """A stored fact flagged as a potential error."""

    subject: str
    predicate: str
    obj: str
    score: float
    zscore: float


@dataclass
class ImputedFact:
    """A candidate object proposed for a missing fact."""

    subject: str
    predicate: str
    candidate: str
    score: float


class EmbeddingTasks:
    """Fact ranking / verification / imputation over a trained model."""

    def __init__(self, model: KGEmbeddingModel, edges: KGEdgeList) -> None:
        if model is None:
            raise EmbeddingError("EmbeddingTasks needs a trained model")
        self.model = model
        self.edges = edges

    # -------------------------------------------------------------- #
    # scoring primitives
    # -------------------------------------------------------------- #
    def fact_score(self, subject: str, predicate: str, obj: str) -> float:
        """Plausibility score of one ``<subject, predicate, object>`` fact."""
        s = self._entity_index(subject)
        r = self._relation_index(predicate)
        o = self._entity_index(obj)
        return float(
            self.model.score(np.array([s]), np.array([r]), np.array([o]))[0]
        )

    def rank_facts(self, subject: str, predicate: str, objects: list[str]) -> list[RankedFact]:
        """Rank the given objects of ``(subject, predicate)`` by plausibility."""
        ranked = [
            RankedFact(subject, predicate, obj, self.fact_score(subject, predicate, obj))
            for obj in objects
        ]
        ranked.sort(key=lambda fact: (-fact.score, fact.obj))
        for position, fact in enumerate(ranked, start=1):
            fact.rank = position
        return ranked

    def verify_facts(
        self, facts: list[tuple[str, str, str]], zscore_threshold: float = -1.5
    ) -> list[VerificationFinding]:
        """Flag facts whose plausibility is a low outlier among the given facts."""
        if not facts:
            return []
        scores = np.array([self.fact_score(s, p, o) for s, p, o in facts])
        mean = float(scores.mean())
        std = float(scores.std()) or 1.0
        findings = []
        for (subject, predicate, obj), score in zip(facts, scores):
            zscore = (float(score) - mean) / std
            if zscore <= zscore_threshold:
                findings.append(
                    VerificationFinding(subject, predicate, obj, float(score), zscore)
                )
        findings.sort(key=lambda finding: finding.zscore)
        return findings

    def impute_missing(
        self, subject: str, predicate: str, k: int = 5, exclude: tuple[str, ...] = ()
    ) -> list[ImputedFact]:
        """Propose the top-*k* candidate objects for the missing fact ``<s, p, ?>``."""
        s = self._entity_index(subject)
        r = self._relation_index(predicate)
        scores = self.model.score_all_objects(s, r)
        excluded = {self._entity_index(entity) for entity in exclude if entity in self.edges.entity_index}
        excluded.add(s)
        candidates = []
        for index in np.argsort(-scores):
            if int(index) in excluded:
                continue
            candidates.append(
                ImputedFact(
                    subject=subject,
                    predicate=predicate,
                    candidate=self.edges.entity_ids[int(index)],
                    score=float(scores[int(index)]),
                )
            )
            if len(candidates) >= k:
                break
        return candidates

    # -------------------------------------------------------------- #
    # vector DB integration
    # -------------------------------------------------------------- #
    def export_to_vector_db(
        self, vector_db: VectorDB, entity_types: dict[str, str] | None = None
    ) -> int:
        """Store every entity embedding in the Graph Engine's vector DB."""
        entity_types = entity_types or {}
        count = 0
        for entity_id, index in self.edges.entity_index.items():
            vector = self.model.entity_embeddings[index]
            vector_db.upsert(
                entity_id, vector, {"type": entity_types.get(entity_id, "")}
            )
            count += 1
        return count

    def impute_with_vector_db(
        self, vector_db: VectorDB, subject: str, predicate: str, k: int = 5
    ) -> list[ImputedFact]:
        """Impute via nearest-neighbour search in the Vector DB (serving path)."""
        s = self._entity_index(subject)
        r = self._relation_index(predicate)
        query = self.model.predicted_object_vector(s, r)
        hits = vector_db.search(query, k=k + 1, exclude=[subject])
        return [
            ImputedFact(subject=subject, predicate=predicate, candidate=hit.key, score=hit.score)
            for hit in hits[:k]
        ]

    # -------------------------------------------------------------- #
    # internals
    # -------------------------------------------------------------- #
    def _entity_index(self, entity_id: str) -> int:
        try:
            return self.edges.entity_index[entity_id]
        except KeyError:
            raise EmbeddingError(f"entity {entity_id!r} was not part of training") from None

    def _relation_index(self, predicate: str) -> int:
        try:
            return self.edges.relation_index[predicate]
        except KeyError:
            raise EmbeddingError(f"relation {predicate!r} was not part of training") from None
