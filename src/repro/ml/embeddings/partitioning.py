"""Partition-buffer ("Marius-style") external-memory embedding training (§5.3).

Billion-node graphs cannot keep all embedding parameters in GPU (or even main)
memory, so Saga trains each embedding model on a single node using the Marius
system: entity embeddings are split into partitions kept on disk, a bounded
in-memory buffer holds a few partitions at a time, and edge buckets whose
endpoints both reside in buffered partitions are trained before the buffer
rotates.  This module reproduces that training regime in-process:

* entities are hashed into ``num_partitions`` partitions;
* edges are grouped into ``(source_partition, target_partition)`` buckets;
* the buffer admits at most ``buffer_partitions`` partitions; buckets are
  visited in an order that reuses buffered partitions, and every admission of
  a partition not currently in the buffer counts as a swap (disk I/O in the
  real system);
* peak memory is the buffer capacity times the per-partition parameter bytes,
  which is how the benchmark demonstrates the bounded-memory property against
  the full-memory baselines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import EmbeddingError
from repro.ml.embeddings.models import EmbeddingConfig, KGEmbeddingModel, make_model
from repro.ml.embeddings.training import (
    KGEdgeList,
    TrainerConfig,
    TrainingReport,
    sample_negatives,
)


@dataclass
class PartitionConfig:
    """Partitioning and buffer-capacity knobs."""

    num_partitions: int = 8
    buffer_partitions: int = 2

    def __post_init__(self) -> None:
        if self.buffer_partitions < 2:
            raise EmbeddingError("the partition buffer needs capacity for at least 2 partitions")
        if self.num_partitions < self.buffer_partitions:
            raise EmbeddingError("num_partitions must be >= buffer_partitions")


class PartitionBufferTrainer:
    """Train a KG embedding model through a bounded partition buffer."""

    def __init__(
        self,
        model_name: str = "transe",
        model_config: EmbeddingConfig | None = None,
        trainer_config: TrainerConfig | None = None,
        partition_config: PartitionConfig | None = None,
    ) -> None:
        self.model_name = model_name
        self.model_config = model_config or EmbeddingConfig()
        self.trainer_config = trainer_config or TrainerConfig()
        self.partition_config = partition_config or PartitionConfig()
        self.model: KGEmbeddingModel | None = None

    # -------------------------------------------------------------- #
    # training
    # -------------------------------------------------------------- #
    def train(self, edges: KGEdgeList) -> TrainingReport:
        """Train over edge buckets while honouring the buffer capacity."""
        model = make_model(
            self.model_name, edges.num_entities, edges.num_relations, self.model_config
        )
        rng = np.random.default_rng(self.trainer_config.seed)
        partitions = self._assign_partitions(edges.num_entities)
        buckets = self._bucketize(edges.edges, partitions)
        ordering = self._bucket_order()

        losses = []
        swaps = 0
        buffer: list[int] = []
        started = time.perf_counter()
        for _ in range(self.trainer_config.epochs):
            epoch_loss = 0.0
            batches = 0
            for bucket_key in ordering:
                bucket_edges = buckets.get(bucket_key)
                if bucket_edges is None or len(bucket_edges) == 0:
                    continue
                swaps += self._admit(buffer, bucket_key)
                order = rng.permutation(len(bucket_edges))
                for start in range(0, len(bucket_edges), self.trainer_config.batch_size):
                    batch = bucket_edges[order[start:start + self.trainer_config.batch_size]]
                    negatives = self._sample_bucket_negatives(
                        batch, partitions, buffer, edges.num_entities, rng
                    )
                    epoch_loss += model.train_step(batch, negatives)
                    batches += 1
            model.normalize()
            losses.append(epoch_loss / max(batches, 1))
        elapsed = time.perf_counter() - started
        self.model = model

        per_entity_bytes = self.model_config.dimension * 8
        entities_per_partition = int(np.ceil(edges.num_entities / self.partition_config.num_partitions))
        peak_memory = (
            self.partition_config.buffer_partitions * entities_per_partition * per_entity_bytes
            + model.relation_embeddings.nbytes
        )
        return TrainingReport(
            model_name=self.model_name,
            epochs=self.trainer_config.epochs,
            final_loss=losses[-1] if losses else 0.0,
            loss_history=losses,
            seconds=elapsed,
            peak_memory_bytes=int(peak_memory),
            partition_swaps=swaps,
            extra={
                "num_partitions": self.partition_config.num_partitions,
                "buffer_partitions": self.partition_config.buffer_partitions,
            },
        )

    # -------------------------------------------------------------- #
    # internals
    # -------------------------------------------------------------- #
    def _assign_partitions(self, num_entities: int) -> np.ndarray:
        return np.arange(num_entities) % self.partition_config.num_partitions

    def _bucketize(
        self, edges: np.ndarray, partitions: np.ndarray
    ) -> dict[tuple[int, int], np.ndarray]:
        keys = list(zip(partitions[edges[:, 0]], partitions[edges[:, 2]]))
        buckets: dict[tuple[int, int], list[int]] = {}
        for row_index, key in enumerate(keys):
            buckets.setdefault((int(key[0]), int(key[1])), []).append(row_index)
        return {key: edges[rows] for key, rows in buckets.items()}

    def _bucket_order(self) -> list[tuple[int, int]]:
        """Visit buckets so consecutive buckets share a buffered partition.

        This is a simplified version of Marius' buffer-aware ordering: fix the
        source partition and sweep its target partitions before moving on,
        which keeps one partition resident across consecutive buckets.
        """
        total = self.partition_config.num_partitions
        ordering = []
        for source in range(total):
            for target in range(total):
                ordering.append((source, target))
        return ordering

    def _admit(self, buffer: list[int], bucket_key: tuple[int, int]) -> int:
        swaps = 0
        for partition in bucket_key:
            if partition in buffer:
                continue
            if len(buffer) >= self.partition_config.buffer_partitions:
                # Evict the least-recently admitted partition not needed now.
                for index, resident in enumerate(buffer):
                    if resident not in bucket_key:
                        buffer.pop(index)
                        break
                else:
                    buffer.pop(0)
            buffer.append(partition)
            swaps += 1
        return swaps

    def _sample_bucket_negatives(
        self,
        batch: np.ndarray,
        partitions: np.ndarray,
        buffer: list[int],
        num_entities: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Negative sampling restricted to entities resident in the buffer.

        External-memory training can only corrupt triples with entities whose
        embeddings are currently in memory; falling back to uniform sampling
        when the buffer view is tiny keeps training stable on small graphs.
        """
        resident = np.nonzero(np.isin(partitions, list(buffer)))[0]
        if len(resident) < 2:
            return sample_negatives(batch, num_entities, rng)
        negatives = batch.copy()
        corrupt_object = rng.random(len(batch)) < 0.5
        random_entities = resident[rng.integers(0, len(resident), size=len(batch))]
        negatives[corrupt_object, 2] = random_entities[corrupt_object]
        negatives[~corrupt_object, 0] = random_entities[~corrupt_object]
        return negatives
