"""Knowledge-graph embeddings: models, trainers, and downstream tasks."""

from repro.ml.embeddings.models import (
    DistMult,
    EmbeddingConfig,
    KGEmbeddingModel,
    TransE,
    make_model,
)
from repro.ml.embeddings.partitioning import PartitionBufferTrainer, PartitionConfig
from repro.ml.embeddings.tasks import (
    EmbeddingTasks,
    ImputedFact,
    RankedFact,
    VerificationFinding,
)
from repro.ml.embeddings.training import (
    InMemoryTrainer,
    KGEdgeList,
    TrainerConfig,
    TrainingReport,
    evaluate_link_prediction,
    extract_edges,
    sample_negatives,
)

__all__ = [
    "DistMult",
    "EmbeddingConfig",
    "EmbeddingTasks",
    "ImputedFact",
    "InMemoryTrainer",
    "KGEdgeList",
    "KGEmbeddingModel",
    "PartitionBufferTrainer",
    "PartitionConfig",
    "RankedFact",
    "TrainerConfig",
    "TrainingReport",
    "TransE",
    "VerificationFinding",
    "evaluate_link_prediction",
    "extract_edges",
    "make_model",
    "sample_negatives",
]
