"""Knowledge-graph embedding models: TransE and DistMult (Section 5.3).

Both models assign each entity and predicate a continuous vector such that the
score of a triple ``<s, p, o>`` reflects its plausibility:

* **TransE** — ``score = -|| e_s + r_p - e_o ||``: a relation is a translation
  in embedding space;
* **DistMult** — ``score = <e_s, r_p, e_o>``: a relation is a diagonal bilinear
  form.

The models expose a shared interface (score triples, score against all
candidate objects, gradients for one positive/negative batch) so the trainer
and the downstream tasks (fact ranking, verification, imputation) do not care
which model is in use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EmbeddingError


@dataclass
class EmbeddingConfig:
    """Shared hyper-parameters for KG embedding models."""

    dimension: int = 32
    learning_rate: float = 0.05
    margin: float = 1.0            # TransE margin
    regularization: float = 1e-4   # DistMult L2
    seed: int = 41


class KGEmbeddingModel:
    """Base class holding entity/relation parameter matrices."""

    name = "base"

    def __init__(self, num_entities: int, num_relations: int, config: EmbeddingConfig) -> None:
        if num_entities <= 0 or num_relations <= 0:
            raise EmbeddingError("embedding models need at least one entity and relation")
        self.config = config
        rng = np.random.default_rng(config.seed)
        scale = 1.0 / np.sqrt(config.dimension)
        self.entity_embeddings = rng.uniform(-scale, scale, (num_entities, config.dimension))
        self.relation_embeddings = rng.uniform(-scale, scale, (num_relations, config.dimension))

    # -- interface ---------------------------------------------------- #
    def score(self, subjects: np.ndarray, relations: np.ndarray, objects: np.ndarray) -> np.ndarray:
        """Plausibility scores for aligned (subject, relation, object) id arrays."""
        raise NotImplementedError

    def score_all_objects(self, subject: int, relation: int) -> np.ndarray:
        """Scores of ``<subject, relation, ?>`` against every entity."""
        raise NotImplementedError

    def train_step(
        self,
        positives: np.ndarray,
        negatives: np.ndarray,
    ) -> float:
        """One SGD step over aligned positive / negative triple id arrays.

        ``positives`` and ``negatives`` are ``(batch, 3)`` integer arrays of
        (subject, relation, object) ids; negatives are corruptions of the
        aligned positives.  Returns the mean batch loss.
        """
        raise NotImplementedError

    def normalize(self) -> None:
        """Optional post-step parameter normalization."""

    def predicted_object_vector(self, subject: int, relation: int) -> np.ndarray:
        """Vector ``f(theta_s, theta_p)`` used for nearest-neighbour object search."""
        raise NotImplementedError


class TransE(KGEmbeddingModel):
    """Translation-based embeddings with a margin ranking loss."""

    name = "transe"

    def score(self, subjects: np.ndarray, relations: np.ndarray, objects: np.ndarray) -> np.ndarray:
        difference = (
            self.entity_embeddings[subjects]
            + self.relation_embeddings[relations]
            - self.entity_embeddings[objects]
        )
        return -np.linalg.norm(difference, axis=-1)

    def score_all_objects(self, subject: int, relation: int) -> np.ndarray:
        target = self.entity_embeddings[subject] + self.relation_embeddings[relation]
        return -np.linalg.norm(self.entity_embeddings - target, axis=1)

    def predicted_object_vector(self, subject: int, relation: int) -> np.ndarray:
        return self.entity_embeddings[subject] + self.relation_embeddings[relation]

    def train_step(self, positives: np.ndarray, negatives: np.ndarray) -> float:
        lr = self.config.learning_rate
        pos_scores = self.score(positives[:, 0], positives[:, 1], positives[:, 2])
        neg_scores = self.score(negatives[:, 0], negatives[:, 1], negatives[:, 2])
        # margin ranking loss: max(0, margin + d(pos) - d(neg)) with d = -score
        losses = np.maximum(0.0, self.config.margin - pos_scores + neg_scores)
        active = losses > 0
        if not np.any(active):
            return 0.0
        for index in np.nonzero(active)[0]:
            s, r, o = positives[index]
            s_n, r_n, o_n = negatives[index]
            pos_diff = (
                self.entity_embeddings[s] + self.relation_embeddings[r] - self.entity_embeddings[o]
            )
            neg_diff = (
                self.entity_embeddings[s_n]
                + self.relation_embeddings[r_n]
                - self.entity_embeddings[o_n]
            )
            pos_norm = np.linalg.norm(pos_diff) + 1e-9
            neg_norm = np.linalg.norm(neg_diff) + 1e-9
            pos_grad = pos_diff / pos_norm
            neg_grad = neg_diff / neg_norm
            self.entity_embeddings[s] -= lr * pos_grad
            self.relation_embeddings[r] -= lr * pos_grad
            self.entity_embeddings[o] += lr * pos_grad
            self.entity_embeddings[s_n] += lr * neg_grad
            self.relation_embeddings[r_n] += lr * neg_grad
            self.entity_embeddings[o_n] -= lr * neg_grad
        return float(losses.mean())

    def normalize(self) -> None:
        norms = np.linalg.norm(self.entity_embeddings, axis=1, keepdims=True)
        np.divide(self.entity_embeddings, np.maximum(norms, 1.0), out=self.entity_embeddings)


class DistMult(KGEmbeddingModel):
    """Diagonal bilinear embeddings with a logistic loss."""

    name = "distmult"

    def score(self, subjects: np.ndarray, relations: np.ndarray, objects: np.ndarray) -> np.ndarray:
        return np.sum(
            self.entity_embeddings[subjects]
            * self.relation_embeddings[relations]
            * self.entity_embeddings[objects],
            axis=-1,
        )

    def score_all_objects(self, subject: int, relation: int) -> np.ndarray:
        query = self.entity_embeddings[subject] * self.relation_embeddings[relation]
        return self.entity_embeddings @ query

    def predicted_object_vector(self, subject: int, relation: int) -> np.ndarray:
        return self.entity_embeddings[subject] * self.relation_embeddings[relation]

    def train_step(self, positives: np.ndarray, negatives: np.ndarray) -> float:
        lr = self.config.learning_rate
        reg = self.config.regularization
        triples = np.vstack([positives, negatives])
        labels = np.concatenate([np.ones(len(positives)), np.zeros(len(negatives))])
        scores = self.score(triples[:, 0], triples[:, 1], triples[:, 2])
        probabilities = 1.0 / (1.0 + np.exp(-scores))
        errors = probabilities - labels
        loss = float(
            np.mean(
                -labels * np.log(probabilities + 1e-9)
                - (1 - labels) * np.log(1 - probabilities + 1e-9)
            )
        )
        for index, (s, r, o) in enumerate(triples):
            error = errors[index]
            e_s = self.entity_embeddings[s]
            e_o = self.entity_embeddings[o]
            w_r = self.relation_embeddings[r]
            grad_s = error * w_r * e_o + reg * e_s
            grad_o = error * w_r * e_s + reg * e_o
            grad_r = error * e_s * e_o + reg * w_r
            self.entity_embeddings[s] -= lr * grad_s
            self.entity_embeddings[o] -= lr * grad_o
            self.relation_embeddings[r] -= lr * grad_r
        return loss


MODEL_REGISTRY = {
    "transe": TransE,
    "distmult": DistMult,
}
"""Embedding model constructors by name."""


def make_model(
    name: str, num_entities: int, num_relations: int, config: EmbeddingConfig | None = None
) -> KGEmbeddingModel:
    """Instantiate a registered embedding model by name."""
    try:
        factory = MODEL_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_REGISTRY))
        raise EmbeddingError(f"unknown embedding model {name!r} (known: {known})") from None
    return factory(num_entities, num_relations, config or EmbeddingConfig())
