"""Training harness for KG embedding models (Section 5.3).

Responsibilities:

* extract the relationship-only edge list from a KG triple store (the paper
  registers a specialized view filtering metadata facts; :func:`extract_edges`
  plays that role);
* map entities and relations to contiguous integer ids;
* run epoch-based training with uniform negative sampling, either fully
  in memory (:class:`InMemoryTrainer`) or through the Marius-style partition
  buffer (:class:`repro.ml.embeddings.partitioning.PartitionBufferTrainer`);
* evaluate link-prediction quality (mean reciprocal rank, hits@k) which backs
  fact ranking / verification / imputation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import EmbeddingError
from repro.ml.embeddings.models import EmbeddingConfig, KGEmbeddingModel, make_model
from repro.model.triples import TripleStore

#: Predicates that do not describe entity-to-entity relationships and are
#: filtered out of the training view.
METADATA_PREDICATES = {
    "name", "alias", "title", "full_title", "description", "type", "same_as",
    "popularity", "image_url", "locale",
}


@dataclass
class KGEdgeList:
    """Integer-encoded edge list plus the id vocabularies."""

    edges: np.ndarray                        # (num_edges, 3) int array
    entity_ids: list[str]
    relation_ids: list[str]
    entity_index: dict[str, int] = field(default_factory=dict)
    relation_index: dict[str, int] = field(default_factory=dict)

    @property
    def num_entities(self) -> int:
        """Number of distinct entities."""
        return len(self.entity_ids)

    @property
    def num_relations(self) -> int:
        """Number of distinct relations."""
        return len(self.relation_ids)

    @property
    def num_edges(self) -> int:
        """Number of training edges."""
        return len(self.edges)

    def split(self, test_fraction: float = 0.1, seed: int = 9) -> tuple["KGEdgeList", "KGEdgeList"]:
        """Split into train / test edge lists sharing the vocabularies."""
        rng = np.random.default_rng(seed)
        order = rng.permutation(self.num_edges)
        cut = max(1, int(self.num_edges * test_fraction))
        test_rows = self.edges[order[:cut]]
        train_rows = self.edges[order[cut:]]
        train = KGEdgeList(train_rows, self.entity_ids, self.relation_ids,
                           self.entity_index, self.relation_index)
        test = KGEdgeList(test_rows, self.entity_ids, self.relation_ids,
                          self.entity_index, self.relation_index)
        return train, test


def extract_edges(store: TripleStore) -> KGEdgeList:
    """Build the relationship-only edge list from a KG triple store."""
    subjects = store.subjects()
    entity_index: dict[str, int] = {}
    relation_index: dict[str, int] = {}
    entity_ids: list[str] = []
    relation_ids: list[str] = []
    rows: list[tuple[int, int, int]] = []

    def entity_id_of(identifier: str) -> int:
        index = entity_index.get(identifier)
        if index is None:
            index = len(entity_ids)
            entity_index[identifier] = index
            entity_ids.append(identifier)
        return index

    def relation_id_of(name: str) -> int:
        index = relation_index.get(name)
        if index is None:
            index = len(relation_ids)
            relation_index[name] = index
            relation_ids.append(name)
        return index

    for triple in store:
        predicate = triple.relationship_predicate or triple.predicate
        if predicate in METADATA_PREDICATES:
            continue
        obj = triple.obj
        if not isinstance(obj, str) or obj not in subjects:
            continue
        rows.append(
            (entity_id_of(triple.subject), relation_id_of(predicate), entity_id_of(obj))
        )
    if not rows:
        raise EmbeddingError("the KG contains no entity-to-entity relationship facts")
    return KGEdgeList(
        edges=np.array(rows, dtype=np.int64),
        entity_ids=entity_ids,
        relation_ids=relation_ids,
        entity_index=entity_index,
        relation_index=relation_index,
    )


def sample_negatives(
    positives: np.ndarray, num_entities: int, rng: np.random.Generator
) -> np.ndarray:
    """Corrupt the object (or subject, 50/50) of every positive triple."""
    negatives = positives.copy()
    corrupt_object = rng.random(len(positives)) < 0.5
    random_entities = rng.integers(0, num_entities, size=len(positives))
    negatives[corrupt_object, 2] = random_entities[corrupt_object]
    negatives[~corrupt_object, 0] = random_entities[~corrupt_object]
    return negatives


@dataclass
class TrainingReport:
    """Outcome of one training run."""

    model_name: str
    epochs: int
    final_loss: float
    loss_history: list[float]
    seconds: float
    peak_memory_bytes: int
    partition_swaps: int = 0
    extra: dict = field(default_factory=dict)


@dataclass
class TrainerConfig:
    """Epochs, batching, and negative-sampling knobs shared by trainers."""

    epochs: int = 10
    batch_size: int = 256
    negatives_per_positive: int = 1
    seed: int = 17


class InMemoryTrainer:
    """Baseline trainer keeping every parameter in memory."""

    def __init__(
        self,
        model_name: str = "transe",
        model_config: EmbeddingConfig | None = None,
        trainer_config: TrainerConfig | None = None,
    ) -> None:
        self.model_name = model_name
        self.model_config = model_config or EmbeddingConfig()
        self.trainer_config = trainer_config or TrainerConfig()
        self.model: KGEmbeddingModel | None = None

    def train(self, edges: KGEdgeList) -> TrainingReport:
        """Train the configured model over the full edge list."""
        model = make_model(
            self.model_name, edges.num_entities, edges.num_relations, self.model_config
        )
        rng = np.random.default_rng(self.trainer_config.seed)
        losses = []
        started = time.perf_counter()
        for _ in range(self.trainer_config.epochs):
            order = rng.permutation(edges.num_edges)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, edges.num_edges, self.trainer_config.batch_size):
                batch = edges.edges[order[start:start + self.trainer_config.batch_size]]
                negatives = sample_negatives(batch, edges.num_entities, rng)
                epoch_loss += model.train_step(batch, negatives)
                batches += 1
            model.normalize()
            losses.append(epoch_loss / max(batches, 1))
        elapsed = time.perf_counter() - started
        self.model = model
        peak_memory = (
            model.entity_embeddings.nbytes + model.relation_embeddings.nbytes
        )
        return TrainingReport(
            model_name=self.model_name,
            epochs=self.trainer_config.epochs,
            final_loss=losses[-1] if losses else 0.0,
            loss_history=losses,
            seconds=elapsed,
            peak_memory_bytes=peak_memory,
        )


def evaluate_link_prediction(
    model: KGEmbeddingModel, test_edges: np.ndarray, hits_at: tuple[int, ...] = (1, 10)
) -> dict[str, float]:
    """Mean reciprocal rank and hits@k of object prediction on test edges."""
    if len(test_edges) == 0:
        return {"mrr": 0.0, **{f"hits@{k}": 0.0 for k in hits_at}}
    reciprocal_ranks = []
    hits = {k: 0 for k in hits_at}
    for subject, relation, obj in test_edges:
        scores = model.score_all_objects(int(subject), int(relation))
        rank = int(np.sum(scores > scores[int(obj)])) + 1
        reciprocal_ranks.append(1.0 / rank)
        for k in hits_at:
            if rank <= k:
                hits[k] += 1
    total = len(test_edges)
    metrics = {"mrr": float(np.mean(reciprocal_ranks))}
    for k in hits_at:
        metrics[f"hits@{k}"] = hits[k] / total
    return metrics
