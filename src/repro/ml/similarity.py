"""Deterministic similarity functions for matching models (Section 5.1).

Saga exposes a library of similarity functions over different data types that
matching models use as features.  This module provides the deterministic
members of that library: edit distances, token/set overlaps, q-gram measures,
phonetic codes, and typed helpers for numbers and dates.  Learned (neural)
string similarity lives in :mod:`repro.ml.encoders`.

All functions return a similarity in ``[0, 1]`` where ``1`` means identical,
and treat ``None`` / empty inputs as maximally dissimilar (``0``) so they can
be used directly as features without special-casing missing values.
"""

from __future__ import annotations

import math
import re
from typing import Iterable

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")


def normalize_string(text: object) -> str:
    """Lower-case and collapse whitespace; ``None`` becomes the empty string."""
    if text is None:
        return ""
    return " ".join(str(text).lower().split())


def tokens(text: object) -> list[str]:
    """Split *text* into lower-case alphanumeric tokens."""
    return _TOKEN_PATTERN.findall(normalize_string(text))


def qgrams(text: object, q: int = 3) -> list[str]:
    """Return the padded character q-grams of *text*.

    >>> qgrams("abc", q=2)
    ['#a', 'ab', 'bc', 'c#']
    """
    normalized = normalize_string(text)
    if not normalized:
        return []
    padded = "#" * (q - 1) + normalized + "#" * (q - 1)
    return [padded[i:i + q] for i in range(len(padded) - q + 1)]


# --------------------------------------------------------------------- #
# edit-based measures
# --------------------------------------------------------------------- #
def levenshtein_distance(first: str, second: str) -> int:
    """Classic dynamic-programming Levenshtein distance."""
    if first == second:
        return 0
    if not first:
        return len(second)
    if not second:
        return len(first)
    previous = list(range(len(second) + 1))
    for i, char_a in enumerate(first, start=1):
        current = [i]
        for j, char_b in enumerate(second, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def levenshtein_similarity(first: object, second: object) -> float:
    """Normalized Levenshtein similarity in ``[0, 1]``."""
    a, b = normalize_string(first), normalize_string(second)
    if not a or not b:
        return 0.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein_distance(a, b) / longest


def hamming_similarity(first: object, second: object) -> float:
    """Hamming similarity for equal-length strings, else prefix comparison."""
    a, b = normalize_string(first), normalize_string(second)
    if not a or not b:
        return 0.0
    longest = max(len(a), len(b))
    matches = sum(1 for x, y in zip(a, b) if x == y)
    return matches / longest


def jaro_similarity(first: object, second: object) -> float:
    """Jaro similarity, a name-matching classic."""
    return _jaro_normalized(normalize_string(first), normalize_string(second))


def _jaro_normalized(a: str, b: str) -> float:
    """Jaro similarity over strings that are already normalized."""
    if not a or not b:
        return 0.0
    if a == b:
        return 1.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)
    a_matches = [False] * len(a)
    b_matches = [False] * len(b)
    matches = 0
    for i, char_a in enumerate(a):
        low = max(0, i - window)
        high = min(len(b), i + window + 1)
        for j in range(low, high):
            if b_matches[j] or b[j] != char_a:
                continue
            a_matches[i] = True
            b_matches[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, matched in enumerate(a_matches):
        if not matched:
            continue
        while not b_matches[j]:
            j += 1
        if a[i] != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (
        matches / len(a) + matches / len(b) + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(first: object, second: object, prefix_weight: float = 0.1) -> float:
    """Jaro-Winkler similarity boosting shared prefixes (up to 4 characters)."""
    return jaro_winkler_normalized(
        normalize_string(first), normalize_string(second), prefix_weight
    )


def jaro_winkler_normalized(a: str, b: str, prefix_weight: float = 0.1) -> float:
    """Jaro-Winkler over already-normalized strings (hot-path variant).

    Index-backed scans (object resolution's name index) normalize each string
    once at indexing time; re-normalizing both sides on every comparison
    dominated the profile, so they call this variant directly.  Identical
    result to :func:`jaro_winkler_similarity` on normalized input.
    """
    jaro = _jaro_normalized(a, b)
    prefix = 0
    for char_a, char_b in zip(a[:4], b[:4]):
        if char_a != char_b:
            break
        prefix += 1
    return min(1.0, jaro + prefix * prefix_weight * (1.0 - jaro))


# --------------------------------------------------------------------- #
# token / set measures
# --------------------------------------------------------------------- #
def jaccard_similarity(first: object, second: object) -> float:
    """Jaccard overlap of the token sets of the two strings."""
    set_a, set_b = set(tokens(first)), set(tokens(second))
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / len(set_a | set_b)


def overlap_coefficient(first: object, second: object) -> float:
    """Token overlap normalized by the smaller set (containment)."""
    set_a, set_b = set(tokens(first)), set(tokens(second))
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / min(len(set_a), len(set_b))


def qgram_similarity(first: object, second: object, q: int = 3) -> float:
    """Dice coefficient over character q-gram multisets."""
    grams_a, grams_b = qgrams(first, q), qgrams(second, q)
    if not grams_a or not grams_b:
        return 0.0
    counts_a: dict[str, int] = {}
    for gram in grams_a:
        counts_a[gram] = counts_a.get(gram, 0) + 1
    shared = 0
    for gram in grams_b:
        remaining = counts_a.get(gram, 0)
        if remaining:
            shared += 1
            counts_a[gram] = remaining - 1
    return 2.0 * shared / (len(grams_a) + len(grams_b))


def monge_elkan_similarity(first: object, second: object) -> float:
    """Average best token-level Jaro-Winkler match (handles word reordering)."""
    tokens_a, tokens_b = tokens(first), tokens(second)
    if not tokens_a or not tokens_b:
        return 0.0
    total = 0.0
    for token_a in tokens_a:
        total += max(jaro_winkler_similarity(token_a, token_b) for token_b in tokens_b)
    return total / len(tokens_a)


def set_similarity(first: Iterable[object], second: Iterable[object]) -> float:
    """Jaccard similarity between two value collections (e.g. genre lists)."""
    set_a = {normalize_string(v) for v in first if v is not None}
    set_b = {normalize_string(v) for v in second if v is not None}
    set_a.discard("")
    set_b.discard("")
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / len(set_a | set_b)


# --------------------------------------------------------------------- #
# typed helpers
# --------------------------------------------------------------------- #
def numeric_similarity(first: object, second: object, tolerance: float = 0.1) -> float:
    """Similarity of two numbers based on relative difference."""
    try:
        a = float(first)  # type: ignore[arg-type]
        b = float(second)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return 0.0
    if a == b:
        return 1.0
    scale = max(abs(a), abs(b), 1e-12)
    relative = abs(a - b) / scale
    return max(0.0, 1.0 - relative / max(tolerance, 1e-12)) if relative < tolerance else 0.0


def year_similarity(first: object, second: object, horizon: int = 5) -> float:
    """Similarity of two dates/years decaying linearly over *horizon* years."""
    year_a, year_b = _extract_year(first), _extract_year(second)
    if year_a is None or year_b is None:
        return 0.0
    gap = abs(year_a - year_b)
    return max(0.0, 1.0 - gap / horizon)


def exact_similarity(first: object, second: object) -> float:
    """1.0 when the normalized strings match exactly, else 0.0."""
    a, b = normalize_string(first), normalize_string(second)
    if not a or not b:
        return 0.0
    return 1.0 if a == b else 0.0


def _extract_year(value: object) -> int | None:
    if value is None:
        return None
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        year = int(value)
        return year if 1000 <= year <= 3000 else None
    match = re.search(r"(1[0-9]{3}|2[0-9]{3})", str(value))
    return int(match.group(1)) if match else None


# --------------------------------------------------------------------- #
# phonetic code
# --------------------------------------------------------------------- #
_SOUNDEX_CODES = {
    **dict.fromkeys("bfpv", "1"),
    **dict.fromkeys("cgjkqsxz", "2"),
    **dict.fromkeys("dt", "3"),
    **dict.fromkeys("l", "4"),
    **dict.fromkeys("mn", "5"),
    **dict.fromkeys("r", "6"),
}


def soundex(text: object) -> str:
    """American Soundex code of the first token of *text*."""
    word_tokens = tokens(text)
    if not word_tokens:
        return ""
    word = word_tokens[0]
    first_letter = word[0].upper()
    encoded = []
    previous = _SOUNDEX_CODES.get(word[0], "")
    for char in word[1:]:
        code = _SOUNDEX_CODES.get(char, "")
        if code and code != previous:
            encoded.append(code)
        if char not in "hw":
            previous = code
    return (first_letter + "".join(encoded) + "000")[:4]


def soundex_similarity(first: object, second: object) -> float:
    """1.0 when the Soundex codes of the first tokens match."""
    code_a, code_b = soundex(first), soundex(second)
    if not code_a or not code_b:
        return 0.0
    return 1.0 if code_a == code_b else 0.0


# --------------------------------------------------------------------- #
# tf-idf style cosine over q-grams (cheap vector-space similarity)
# --------------------------------------------------------------------- #
def cosine_qgram_similarity(first: object, second: object, q: int = 3) -> float:
    """Cosine similarity between q-gram count vectors of the two strings."""
    grams_a, grams_b = qgrams(first, q), qgrams(second, q)
    if not grams_a or not grams_b:
        return 0.0
    counts_a: dict[str, int] = {}
    counts_b: dict[str, int] = {}
    for gram in grams_a:
        counts_a[gram] = counts_a.get(gram, 0) + 1
    for gram in grams_b:
        counts_b[gram] = counts_b.get(gram, 0) + 1
    dot = sum(counts_a[g] * counts_b.get(g, 0) for g in counts_a)
    norm_a = math.sqrt(sum(c * c for c in counts_a.values()))
    norm_b = math.sqrt(sum(c * c for c in counts_b.values()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return min(1.0, dot / (norm_a * norm_b))


SIMILARITY_FUNCTIONS = {
    "levenshtein": levenshtein_similarity,
    "hamming": hamming_similarity,
    "jaro": jaro_similarity,
    "jaro_winkler": jaro_winkler_similarity,
    "jaccard": jaccard_similarity,
    "overlap": overlap_coefficient,
    "qgram": qgram_similarity,
    "monge_elkan": monge_elkan_similarity,
    "cosine_qgram": cosine_qgram_similarity,
    "numeric": numeric_similarity,
    "year": year_similarity,
    "exact": exact_similarity,
    "soundex": soundex_similarity,
}
"""Registry used by matching-model feature configuration."""


def similarity_profile(first: object, second: object) -> dict[str, float]:
    """Compute every registered string similarity for a pair of values.

    Convenience helper used to featurize entity pairs quickly in tests and
    examples; production matching models select a subset per entity type.
    """
    profile = {}
    for name, function in SIMILARITY_FUNCTIONS.items():
        if name in ("numeric", "year"):
            continue
        profile[name] = function(first, second)
    return profile
