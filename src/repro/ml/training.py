"""Distant supervision and data augmentation for learned similarities (§5.1).

The paper bootstraps training data for the neural string encoders from the KG
itself: aliases and names of the same entity yield positive pairs, simple typo
augmentation adds further positives, and names of *unlinked* entities provide
negatives.  This module implements that procedure so that the encoders can be
trained directly against a constructed KG (or a synthetic world in tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TrainingError
from repro.ml.encoders import EncoderConfig, StringEncoder
from repro.ml.similarity import normalize_string

_KEYBOARD_NEIGHBORS = {
    "a": "qws", "b": "vgn", "c": "xdv", "d": "sfe", "e": "wrd", "f": "dgr",
    "g": "fht", "h": "gjy", "i": "uok", "j": "hku", "k": "jli", "l": "ko",
    "m": "n", "n": "bm", "o": "ipl", "p": "o", "q": "wa", "r": "etf",
    "s": "adw", "t": "ryg", "u": "yij", "v": "cbf", "w": "qes", "x": "zcs",
    "y": "tuh", "z": "xa",
}


def typo_variants(text: str, rng: np.random.Generator, count: int = 2) -> list[str]:
    """Generate *count* typo'd variants of *text* (swap, drop, replace, double)."""
    normalized = normalize_string(text)
    if len(normalized) < 3:
        return []
    variants = []
    for _ in range(count):
        chars = list(normalized)
        position = int(rng.integers(0, len(chars)))
        operation = rng.choice(["swap", "drop", "replace", "double"])
        if operation == "swap" and position < len(chars) - 1:
            chars[position], chars[position + 1] = chars[position + 1], chars[position]
        elif operation == "drop" and len(chars) > 3:
            del chars[position]
        elif operation == "replace":
            neighbors = _KEYBOARD_NEIGHBORS.get(chars[position], "")
            if neighbors:
                chars[position] = neighbors[int(rng.integers(0, len(neighbors)))]
        else:
            chars.insert(position, chars[position])
        variant = "".join(chars)
        if variant != normalized:
            variants.append(variant)
    return variants


@dataclass
class DistantSupervisionConfig:
    """Controls how training triplets are mined from entity alias groups."""

    typo_positives_per_name: int = 1
    max_triplets: int = 20000
    seed: int = 29


def alias_groups_to_triplets(
    alias_groups: list[list[str]],
    config: DistantSupervisionConfig | None = None,
) -> list[tuple[str, str, str]]:
    """Mine (anchor, positive, negative) triplets from per-entity alias groups.

    ``alias_groups`` holds, for each entity, the list of names/aliases that the
    KG knows for it.  Pairs inside a group are positives; names sampled from
    *other* groups are negatives; typo variants add extra positives.
    """
    config = config or DistantSupervisionConfig()
    rng = np.random.default_rng(config.seed)
    groups = [
        [normalize_string(name) for name in group if normalize_string(name)]
        for group in alias_groups
    ]
    groups = [group for group in groups if group]
    if len(groups) < 2:
        raise TrainingError(
            "distant supervision needs at least two entities with names "
            f"(got {len(groups)})"
        )

    triplets: list[tuple[str, str, str]] = []
    group_count = len(groups)
    for group_index, group in enumerate(groups):
        positives: list[tuple[str, str]] = []
        for i, anchor in enumerate(group):
            for positive in group[i + 1:]:
                positives.append((anchor, positive))
            for variant in typo_variants(anchor, rng, config.typo_positives_per_name):
                positives.append((anchor, variant))
        for anchor, positive in positives:
            negative_group = int(rng.integers(0, group_count - 1))
            if negative_group >= group_index:
                negative_group += 1
            negative_names = groups[negative_group]
            negative = negative_names[int(rng.integers(0, len(negative_names)))]
            triplets.append((anchor, positive, negative))
            if len(triplets) >= config.max_triplets:
                return triplets
    if not triplets:
        raise TrainingError("no training triplets could be generated")
    return triplets


def train_string_encoder(
    alias_groups: list[list[str]],
    synonyms: dict[str, str] | None = None,
    encoder_config: EncoderConfig | None = None,
    supervision_config: DistantSupervisionConfig | None = None,
) -> StringEncoder:
    """End-to-end helper: mine triplets and fit a :class:`StringEncoder`."""
    triplets = alias_groups_to_triplets(alias_groups, supervision_config)
    encoder = StringEncoder(encoder_config, synonyms=synonyms)
    encoder.train(triplets)
    return encoder


def evaluate_encoder_recall(
    encoder: StringEncoder,
    positive_pairs: list[tuple[str, str]],
    negative_pairs: list[tuple[str, str]],
    threshold: float = 0.5,
) -> dict[str, float]:
    """Evaluate a similarity function as a binary match classifier.

    Returns precision, recall, and F1 at the given similarity *threshold* —
    the metric used for the >20-point recall-improvement claim in §5.1.
    """
    true_positives = sum(
        1 for a, b in positive_pairs if encoder.similarity(a, b) >= threshold
    )
    false_negatives = len(positive_pairs) - true_positives
    false_positives = sum(
        1 for a, b in negative_pairs if encoder.similarity(a, b) >= threshold
    )
    precision = (
        true_positives / (true_positives + false_positives)
        if (true_positives + false_positives)
        else 0.0
    )
    recall = (
        true_positives / (true_positives + false_negatives)
        if (true_positives + false_negatives)
        else 0.0
    )
    f1 = 2 * precision * recall / (precision + recall) if (precision + recall) else 0.0
    return {"precision": precision, "recall": recall, "f1": f1}
