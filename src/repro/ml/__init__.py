"""Graph machine learning: similarities, encoders, NERD, and KG embeddings."""

from repro.ml.encoders import EncoderConfig, EncoderRegistry, StringEncoder
from repro.ml.similarity import SIMILARITY_FUNCTIONS, similarity_profile
from repro.ml.training import (
    DistantSupervisionConfig,
    alias_groups_to_triplets,
    evaluate_encoder_recall,
    train_string_encoder,
    typo_variants,
)

__all__ = [
    "SIMILARITY_FUNCTIONS",
    "DistantSupervisionConfig",
    "EncoderConfig",
    "EncoderRegistry",
    "StringEncoder",
    "alias_groups_to_triplets",
    "evaluate_encoder_recall",
    "similarity_profile",
    "train_string_encoder",
    "typo_variants",
]
