"""The Live Knowledge Graph: streaming construction, KGQ serving, curation."""

from repro.live.construction import (
    EntityResolutionClient,
    LiveConstructionStats,
    LiveGraphConstruction,
)
from repro.live.context import ContextGraph, ContextTurn
from repro.live.curation import (
    CurationDecision,
    CurationPipeline,
    FindingKind,
    QuarantinedFact,
    VandalismDetector,
)
from repro.live.engine import IntentAnswer, LiveGraphEngine
from repro.live.executor import QueryCache, QueryExecutor, QueryResult, QueryResultRow
from repro.live.index import (
    GraphKVStore,
    InvertedGraphIndex,
    LiveEntityDocument,
    LiveIndex,
)
from repro.live.intents import Intent, IntentHandler, IntentRoute, default_intent_handler
from repro.live.kgq import (
    CallQuery,
    Condition,
    Query,
    RpqAlt,
    RpqConcat,
    RpqExpr,
    RpqLabel,
    RpqPlus,
    RpqStar,
    VirtualOperatorRegistry,
    default_virtual_operators,
    parse,
)
from repro.live.planner import PhysicalPlan, QueryPlanner
from repro.live.rpq import (
    Automaton,
    IntervalIndex,
    RpqEvaluator,
    Witness,
    compile_automaton,
    naive_rpq,
)

__all__ = [
    "Automaton",
    "CallQuery",
    "Condition",
    "ContextGraph",
    "ContextTurn",
    "CurationDecision",
    "CurationPipeline",
    "EntityResolutionClient",
    "FindingKind",
    "GraphKVStore",
    "Intent",
    "IntentAnswer",
    "IntentHandler",
    "IntentRoute",
    "IntervalIndex",
    "InvertedGraphIndex",
    "LiveConstructionStats",
    "LiveEntityDocument",
    "LiveGraphConstruction",
    "LiveGraphEngine",
    "LiveIndex",
    "PhysicalPlan",
    "QuarantinedFact",
    "Query",
    "QueryCache",
    "QueryExecutor",
    "QueryPlanner",
    "QueryResult",
    "QueryResultRow",
    "RpqAlt",
    "RpqConcat",
    "RpqEvaluator",
    "RpqExpr",
    "RpqLabel",
    "RpqPlus",
    "RpqStar",
    "VandalismDetector",
    "VirtualOperatorRegistry",
    "Witness",
    "compile_automaton",
    "default_intent_handler",
    "default_virtual_operators",
    "naive_rpq",
    "parse",
]
