"""The Live Knowledge Graph: streaming construction, KGQ serving, curation."""

from repro.live.construction import (
    EntityResolutionClient,
    LiveConstructionStats,
    LiveGraphConstruction,
)
from repro.live.context import ContextGraph, ContextTurn
from repro.live.curation import (
    CurationDecision,
    CurationPipeline,
    FindingKind,
    QuarantinedFact,
    VandalismDetector,
)
from repro.live.engine import IntentAnswer, LiveGraphEngine
from repro.live.executor import QueryCache, QueryExecutor, QueryResult, QueryResultRow
from repro.live.index import (
    GraphKVStore,
    InvertedGraphIndex,
    LiveEntityDocument,
    LiveIndex,
)
from repro.live.intents import Intent, IntentHandler, IntentRoute, default_intent_handler
from repro.live.kgq import (
    CallQuery,
    Condition,
    Query,
    VirtualOperatorRegistry,
    default_virtual_operators,
    parse,
)
from repro.live.planner import PhysicalPlan, QueryPlanner

__all__ = [
    "CallQuery",
    "Condition",
    "ContextGraph",
    "ContextTurn",
    "CurationDecision",
    "CurationPipeline",
    "EntityResolutionClient",
    "FindingKind",
    "GraphKVStore",
    "Intent",
    "IntentAnswer",
    "IntentHandler",
    "IntentRoute",
    "InvertedGraphIndex",
    "LiveConstructionStats",
    "LiveEntityDocument",
    "LiveGraphConstruction",
    "LiveGraphEngine",
    "LiveIndex",
    "PhysicalPlan",
    "QuarantinedFact",
    "Query",
    "QueryCache",
    "QueryExecutor",
    "QueryPlanner",
    "QueryResult",
    "QueryResultRow",
    "VandalismDetector",
    "VirtualOperatorRegistry",
    "default_intent_handler",
    "default_virtual_operators",
    "parse",
]
