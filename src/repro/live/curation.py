"""Live graph curation: detect, quarantine, and hot-fix bad facts (§4.3).

Source quality varies: some feeds occasionally contain errors, and community
sources are subject to vandalism.  The curation pipeline detects suspicious
facts, quarantines them for human review, and turns curator decisions into a
*streaming data source*: accepted edits are hot-fixed in the live index right
away and also forwarded to stable KG construction so corrections persist.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Iterable

from repro.datagen.streams import LiveEvent
from repro.errors import CurationError
from repro.live.index import LiveEntityDocument
from repro.model.entity import SourceEntity


class FindingKind(str, Enum):
    """Why a fact was quarantined."""

    NUMERIC_OUTLIER = "numeric_outlier"
    SUSPICIOUS_TEXT = "suspicious_text"
    SCHEMA_VIOLATION = "schema_violation"
    MANUAL_REPORT = "manual_report"


@dataclass
class QuarantinedFact:
    """A fact awaiting human review."""

    entity_id: str
    predicate: str
    value: object
    kind: FindingKind
    detail: str = ""
    resolved: bool = False


@dataclass
class CurationDecision:
    """A curator's verdict on a quarantined fact."""

    entity_id: str
    predicate: str
    action: str                      # "block" | "edit" | "approve"
    replacement: object | None = None
    curator: str = "curation_team"


_VANDALISM_PATTERN = re.compile(
    r"(?:!!!|\?\?\?|lol|fake|hoax|asdf|xxxx|spam)", re.IGNORECASE
)

DetectorFn = Callable[[LiveEntityDocument], list[QuarantinedFact]]


class VandalismDetector:
    """Rule-based detection of likely errors and vandalism in live documents."""

    def __init__(
        self,
        numeric_bounds: dict[str, tuple[float, float]] | None = None,
        extra_detectors: Iterable[DetectorFn] = (),
    ) -> None:
        self.numeric_bounds = numeric_bounds or {
            "home_score": (0, 300),
            "away_score": (0, 300),
            "stock_price": (0.0, 1_000_000.0),
            "population": (0, 2_000_000_000),
            "duration_seconds": (1, 36_000),
        }
        self.extra_detectors = list(extra_detectors)

    def inspect(self, document: LiveEntityDocument) -> list[QuarantinedFact]:
        """Return quarantine findings for one live document."""
        findings: list[QuarantinedFact] = []
        for predicate, values in document.facts.items():
            for value in values:
                findings.extend(self._inspect_value(document.entity_id, predicate, value))
        for detector in self.extra_detectors:
            findings.extend(detector(document))
        return findings

    def _inspect_value(
        self, entity_id: str, predicate: str, value: object
    ) -> list[QuarantinedFact]:
        findings = []
        bounds = self.numeric_bounds.get(predicate)
        if bounds is not None:
            try:
                number = float(value)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                findings.append(
                    QuarantinedFact(
                        entity_id, predicate, value, FindingKind.SCHEMA_VIOLATION,
                        detail=f"{predicate} should be numeric",
                    )
                )
            else:
                low, high = bounds
                if not low <= number <= high:
                    findings.append(
                        QuarantinedFact(
                            entity_id, predicate, value, FindingKind.NUMERIC_OUTLIER,
                            detail=f"{number} outside [{low}, {high}]",
                        )
                    )
        if isinstance(value, str) and _VANDALISM_PATTERN.search(value):
            findings.append(
                QuarantinedFact(
                    entity_id, predicate, value, FindingKind.SUSPICIOUS_TEXT,
                    detail="matched vandalism pattern",
                )
            )
        return findings


class CurationPipeline:
    """Quarantine queue plus the curation streaming source."""

    def __init__(self, detector: VandalismDetector | None = None) -> None:
        self.detector = detector or VandalismDetector()
        self.quarantine: list[QuarantinedFact] = []
        self.decisions: list[CurationDecision] = []
        self._clock = 0

    # -------------------------------------------------------------- #
    # detection
    # -------------------------------------------------------------- #
    def screen(self, document: LiveEntityDocument) -> list[QuarantinedFact]:
        """Screen one document, quarantining anything suspicious."""
        findings = self.detector.inspect(document)
        self.quarantine.extend(findings)
        return findings

    def report(self, entity_id: str, predicate: str, value: object, detail: str = "") -> QuarantinedFact:
        """Manually report a fact (user feedback path)."""
        finding = QuarantinedFact(
            entity_id, predicate, value, FindingKind.MANUAL_REPORT, detail=detail
        )
        self.quarantine.append(finding)
        return finding

    def pending(self) -> list[QuarantinedFact]:
        """Quarantined facts awaiting a decision."""
        return [finding for finding in self.quarantine if not finding.resolved]

    # -------------------------------------------------------------- #
    # curator decisions
    # -------------------------------------------------------------- #
    def decide(self, decision: CurationDecision) -> list[LiveEvent]:
        """Apply a curator decision; returns the hot-fix events it emits.

        ``block`` removes the offending fact from serving, ``edit`` replaces
        its value, ``approve`` releases the quarantine without changes.  The
        emitted events form the curation streaming source consumed by both the
        live graph (hot fix) and stable construction.
        """
        if decision.action not in ("block", "edit", "approve"):
            raise CurationError(f"unknown curation action {decision.action!r}")
        matched = False
        for finding in self.quarantine:
            if (
                finding.entity_id == decision.entity_id
                and finding.predicate == decision.predicate
                and not finding.resolved
            ):
                finding.resolved = True
                matched = True
        if not matched and decision.action != "edit":
            raise CurationError(
                f"no quarantined fact for {decision.entity_id}/{decision.predicate}"
            )
        self.decisions.append(decision)
        if decision.action == "approve":
            return []
        self._clock += 1
        payload: dict[str, object] = {"name": decision.entity_id}
        if decision.action == "edit":
            payload[decision.predicate] = decision.replacement
        return [
            LiveEvent(
                source_id="curation",
                event_id=decision.entity_id,
                entity_type="curation" if decision.action == "block" else "",
                payload=payload,
                timestamp=self._clock,
            )
        ]

    # -------------------------------------------------------------- #
    # stable-construction feed
    # -------------------------------------------------------------- #
    def as_source_entities(self) -> list[SourceEntity]:
        """Render accepted edits as a curation source for stable construction."""
        entities = []
        for decision in self.decisions:
            if decision.action != "edit":
                continue
            entities.append(
                SourceEntity(
                    entity_id=f"curation:{decision.entity_id}",
                    properties={decision.predicate: decision.replacement},
                    source_id="curation",
                    trust=0.99,
                )
            )
        return entities
