"""The Live Graph Query Engine facade (Section 4, Figure 9).

Ties together live construction, the sharded indexes, the KGQ compiler and
executor, intent handling, multi-turn context, and the curation pipeline into
one object that examples, tests, and benchmarks drive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.datagen.streams import LiveEvent
from repro.errors import IntentError, LiveGraphError
from repro.live.construction import EntityResolutionClient, LiveGraphConstruction
from repro.live.context import ContextGraph
from repro.live.curation import CurationDecision, CurationPipeline
from repro.live.executor import QueryExecutor, QueryResult
from repro.live.index import LiveEntityDocument, LiveIndex
from repro.live.intents import Intent, IntentHandler, default_intent_handler
from repro.live.kgq import (
    CallQuery,
    Query,
    VirtualOperatorRegistry,
    default_virtual_operators,
    parse,
)
from repro.live.planner import PhysicalPlan, QueryPlanner
from repro.model.triples import TripleStore


@dataclass
class IntentAnswer:
    """Answer of an intent execution, including the raw query result."""

    intent: Intent
    answer: object | None
    result: QueryResult
    route_column: str = ""


class LiveGraphEngine:
    """Low-latency serving over the union of stable and streaming knowledge."""

    def __init__(
        self,
        resolution_service=None,
        num_shards: int = 4,
        virtual_operators: VirtualOperatorRegistry | None = None,
        intent_handler: IntentHandler | None = None,
    ) -> None:
        self.index = LiveIndex(num_shards)
        resolution_client = (
            EntityResolutionClient(resolution_service) if resolution_service is not None else None
        )
        self.construction = LiveGraphConstruction(self.index, resolution_client)
        self.virtual_operators = virtual_operators or default_virtual_operators()
        self.planner = QueryPlanner(self.virtual_operators)
        self.executor = QueryExecutor(self.index)
        self.intents = intent_handler or default_intent_handler(self.index)
        self.context = ContextGraph()
        self.curation = CurationPipeline()
        self._feed_documents: dict[str, set[str]] = {}   # feed -> served doc ids
        self._feed_revisions: dict[str, int] = {}        # feed -> view state revision
        self.view_feed_incremental_loads = 0             # journal-delta catch-ups
        self.view_feed_full_loads = 0                    # full artifact rewrites

    # -------------------------------------------------------------- #
    # construction
    # -------------------------------------------------------------- #
    def load_stable_view(
        self,
        store: TripleStore,
        entity_types: Sequence[str] = (),
        version: int | None = None,
    ) -> int:
        """Load a stable-KG view into the live index.

        *version* is the Graph Engine log position (LSN) the store reflects;
        when given it is recorded as the stable feed's watermark (keyed per
        ``entity_types`` filter) so later syncs can skip reloading an
        unchanged upstream.
        """
        loaded = self.construction.load_stable_view(store, entity_types)
        if version is not None:
            self.index.set_watermark(self._stable_feed(entity_types), version)
        self.executor.invalidate_cache()
        return loaded

    def sync_stable_view(self, graph_engine, entity_types: Sequence[str] = ()) -> int:
        """Refresh the stable view from a Graph Engine only when it advanced.

        Compares the engine's minimum store version (the LSN every store has
        replayed) against the watermark of this ``entity_types`` filter's
        feed; returns 0 without touching the index when the serving copy is
        already fresh.  A sync with a *different* type filter is its own feed
        and is never skipped on another filter's account.
        """
        version = graph_engine.minimum_version()
        if version and self.index.is_fresh(self._stable_feed(entity_types), version):
            return 0
        return self.load_stable_view(graph_engine.triples, entity_types, version=version)

    @staticmethod
    def _stable_feed(entity_types: Sequence[str]) -> str:
        if not entity_types:
            return "stable"
        return "stable:" + ",".join(sorted(entity_types))

    def load_view_artifact(
        self, graph_engine, view_name: str, entity_type: str = "view_row"
    ) -> int:
        """Serve a materialized Graph Engine view artifact from the live index.

        The artifact must be row-shaped (a sequence of dicts with a
        ``subject`` key, like the standard ``entity_features`` view).  Each
        row becomes a live document keyed ``{view_name}:{subject}``.  The
        view's ``built_at_lsn`` watermark gates the load: when the serving
        copy already reflects that log position, nothing is reloaded.  When
        the view's delta journal can answer "what changed since the version
        this feed serves", only the journaled rows are rewritten instead of
        re-diffing the full artifact; a journal gap (the view was rebuilt
        from scratch, or the feed fell behind compaction) falls back to the
        full rewrite.  Reading the artifact raises
        :class:`~repro.errors.ViewError` if the view (or, via cascade
        invalidation, one of its dependencies) was dropped — the live layer
        can never serve stale dropped-view results.
        """
        rows = graph_engine.view_artifact(view_name)
        manager = graph_engine.view_manager
        version = manager.built_at_lsn(view_name)
        revision = manager.state_revision(view_name)
        feed = f"view:{view_name}"
        # Skip only when both the log position AND the state revision are
        # unchanged: a re-registered view rebuilt at the same LSN is new data.
        if (
            version
            and self.index.is_fresh(feed, version)
            and self._feed_revisions.get(feed) == revision
        ):
            return 0
        if not isinstance(rows, (list, tuple)):
            raise LiveGraphError(
                f"view artifact {view_name!r} is not row-shaped; cannot serve it live"
            )
        served_version = self.index.watermark(feed)
        delta = None
        if served_version and self._feed_revisions.get(feed) == revision:
            delta = manager.view_deltas_since(view_name, served_version)
        if delta is not None:
            return self._apply_view_delta(
                graph_engine, view_name, feed, rows, delta, version, entity_type
            )
        # Validate every row before touching the index: a malformed artifact
        # must not leave a half-rewritten feed behind.
        for row in rows:
            if not isinstance(row, dict) or "subject" not in row:
                raise LiveGraphError(
                    f"view artifact {view_name!r} rows need a 'subject' key to be served"
                )
        loaded = 0
        fresh_ids: set[str] = set()
        for row in rows:
            document = self._view_row_document(view_name, feed, row, version, entity_type)
            self.index.replace(document)
            fresh_ids.add(document.entity_id)
            loaded += 1
        # Rows that vanished from the artifact (e.g. deleted entities) must
        # stop being served.
        self.index.delete_many(self._feed_documents.get(feed, set()) - fresh_ids)
        self._feed_documents[feed] = fresh_ids
        self._feed_revisions[feed] = revision
        self.index.set_watermark(feed, version)
        self.executor.invalidate_cache()
        self.view_feed_full_loads += 1
        return loaded

    def _apply_view_delta(
        self, graph_engine, view_name: str, feed: str, rows, delta, version: int,
        entity_type: str,
    ) -> int:
        """Catch a view feed up by rewriting only the journaled rows."""
        # Validate every row before touching the index — same contract as the
        # full-load path: a malformed artifact (e.g. a buggy apply_delta
        # corrupting one row) must fail loudly, not silently unserve entities.
        by_subject = {}
        for row in rows:
            if not isinstance(row, dict) or "subject" not in row:
                raise LiveGraphError(
                    f"view artifact {view_name!r} rows need a 'subject' key to be served"
                )
            by_subject[row["subject"]] = row
        served = self._feed_documents.setdefault(feed, set())
        loaded = 0
        touched = False
        for subject in sorted(delta.changed):
            doc_id = f"{view_name}:{subject}"
            row = by_subject.get(subject)
            if row is None:
                # The row left the artifact without a journaled delete (e.g.
                # an incremental builder pruning beyond its scope): stop
                # serving it rather than serve a stale copy.
                touched |= self.index.delete(doc_id)
                served.discard(doc_id)
                continue
            document = self._view_row_document(view_name, feed, row, version, entity_type)
            self.index.replace(document)
            served.add(doc_id)
            loaded += 1
            touched = True
        for subject in sorted(delta.deleted):
            doc_id = f"{view_name}:{subject}"
            touched |= self.index.delete(doc_id)
            served.discard(doc_id)
        self.index.set_watermark(feed, version)
        if touched:
            self.executor.invalidate_cache()
        self.view_feed_incremental_loads += 1
        return loaded

    @staticmethod
    def _view_row_document(
        view_name: str, feed: str, row: dict, version: int, entity_type: str
    ) -> LiveEntityDocument:
        types = row.get("types") or []
        facts = {
            key: list(value) if isinstance(value, (list, tuple)) else [value]
            for key, value in row.items()
            if key not in ("subject", "name", "types") and value not in (None, "")
        }
        return LiveEntityDocument(
            entity_id=f"{view_name}:{row['subject']}",
            entity_type=str(types[0]) if types else entity_type,
            name=str(row.get("name", "")),
            facts=facts,
            source_id=feed,
            timestamp=version,
            is_live=False,
        )

    def ingest_events(self, events: Iterable[LiveEvent], screen: bool = True) -> int:
        """Ingest streaming events, optionally screening them for curation."""
        count = 0
        for event in events:
            document = self.construction.ingest_event(event)
            if screen:
                self.curation.screen(document)
            count += 1
        if count:
            self.executor.invalidate_cache()
        return count

    def apply_curation_decision(self, decision: CurationDecision) -> int:
        """Apply a curator decision as a hot fix to the live index."""
        events = self.curation.decide(decision)
        applied = 0
        for event in events:
            if decision.action == "block":
                if self.construction.apply_curation(event.event_id, {}, block=True):
                    applied += 1
            else:
                edits = {k: v for k, v in event.payload.items() if k != "name"}
                if self.construction.apply_curation(event.event_id, edits):
                    applied += 1
        if applied:
            self.executor.invalidate_cache()
        return applied

    # -------------------------------------------------------------- #
    # querying
    # -------------------------------------------------------------- #
    def compile(self, query_text: str) -> PhysicalPlan:
        """Parse and plan a KGQ query string."""
        return self.planner.plan(parse(query_text))

    def query(self, query: str | Query | CallQuery, use_cache: bool = True) -> QueryResult:
        """Execute a KGQ query (text or pre-parsed) against the live index."""
        if isinstance(query, str):
            plan = self.compile(query)
        else:
            plan = self.planner.plan(query)
        return self.executor.execute(plan, use_cache=use_cache)

    def explain(self, query_text: str) -> list[str]:
        """Return the physical plan of a query as EXPLAIN-style lines."""
        return self.compile(query_text).explain()

    # -------------------------------------------------------------- #
    # intents and multi-turn context
    # -------------------------------------------------------------- #
    def answer_intent(self, intent: Intent, record_context: bool = True) -> IntentAnswer:
        """Route an intent, execute its query, and record the turn in context."""
        resolved = self.context.resolve_intent(intent)
        query, route = self.intents.route(resolved)
        result = self.query(query)
        answer = result.first_value(route.answer_column) if route.answer_column else (
            result.rows[0].values if result.rows else None
        )
        if record_context:
            answer_text = answer if isinstance(answer, str) else None
            self.context.record(resolved, answer_entity=None, answer_text=answer_text)
        return IntentAnswer(intent=resolved, answer=answer, result=result,
                            route_column=route.answer_column)

    def answer_follow_up(self, utterance: str) -> IntentAnswer:
        """Answer a "How about X?" follow-up using the conversation context."""
        intent = self.context.resolve_follow_up(utterance)
        if intent is None:
            raise IntentError(f"cannot interpret follow-up {utterance!r} without context")
        return self.answer_intent(intent)

    # -------------------------------------------------------------- #
    # operations
    # -------------------------------------------------------------- #
    def latency_p95_ms(self) -> float:
        """95th-percentile query latency in milliseconds."""
        return self.executor.latency_percentile(95.0)

    def stats(self) -> dict[str, object]:
        """Operational statistics of the live engine."""
        return {
            "documents": len(self.index),
            "shard_sizes": self.index.kv.shard_sizes(),
            "events_processed": self.construction.stats.events_processed,
            "references_resolved": self.construction.stats.references_resolved,
            "references_unresolved": self.construction.stats.references_unresolved,
            "queries": len(self.executor.latencies_ms),
            "cache_hits": self.executor.cache.hits,
            "p95_latency_ms": self.latency_p95_ms(),
            "quarantined_facts": len(self.curation.pending()),
            "feed_watermarks": dict(self.index.watermarks),
            "view_feed_incremental_loads": self.view_feed_incremental_loads,
            "view_feed_full_loads": self.view_feed_full_loads,
        }
