"""The Live Graph Query Engine facade (Section 4, Figure 9).

Ties together live construction, the sharded indexes, the KGQ compiler and
executor, intent handling, multi-turn context, and the curation pipeline into
one object that examples, tests, and benchmarks drive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.datagen.streams import LiveEvent
from repro.errors import IntentError
from repro.live.construction import EntityResolutionClient, LiveGraphConstruction
from repro.live.context import ContextGraph
from repro.live.curation import CurationDecision, CurationPipeline
from repro.live.executor import QueryExecutor, QueryResult
from repro.live.index import LiveIndex
from repro.live.intents import Intent, IntentHandler, default_intent_handler
from repro.live.kgq import (
    CallQuery,
    Query,
    VirtualOperatorRegistry,
    default_virtual_operators,
    parse,
)
from repro.live.planner import PhysicalPlan, QueryPlanner
from repro.model.triples import TripleStore


@dataclass
class IntentAnswer:
    """Answer of an intent execution, including the raw query result."""

    intent: Intent
    answer: object | None
    result: QueryResult
    route_column: str = ""


class LiveGraphEngine:
    """Low-latency serving over the union of stable and streaming knowledge."""

    def __init__(
        self,
        resolution_service=None,
        num_shards: int = 4,
        virtual_operators: VirtualOperatorRegistry | None = None,
        intent_handler: IntentHandler | None = None,
    ) -> None:
        self.index = LiveIndex(num_shards)
        resolution_client = (
            EntityResolutionClient(resolution_service) if resolution_service is not None else None
        )
        self.construction = LiveGraphConstruction(self.index, resolution_client)
        self.virtual_operators = virtual_operators or default_virtual_operators()
        self.planner = QueryPlanner(self.virtual_operators)
        self.executor = QueryExecutor(self.index)
        self.intents = intent_handler or default_intent_handler(self.index)
        self.context = ContextGraph()
        self.curation = CurationPipeline()

    # -------------------------------------------------------------- #
    # construction
    # -------------------------------------------------------------- #
    def load_stable_view(self, store: TripleStore, entity_types: Sequence[str] = ()) -> int:
        """Load a stable-KG view into the live index."""
        loaded = self.construction.load_stable_view(store, entity_types)
        self.executor.invalidate_cache()
        return loaded

    def ingest_events(self, events: Iterable[LiveEvent], screen: bool = True) -> int:
        """Ingest streaming events, optionally screening them for curation."""
        count = 0
        for event in events:
            document = self.construction.ingest_event(event)
            if screen:
                self.curation.screen(document)
            count += 1
        if count:
            self.executor.invalidate_cache()
        return count

    def apply_curation_decision(self, decision: CurationDecision) -> int:
        """Apply a curator decision as a hot fix to the live index."""
        events = self.curation.decide(decision)
        applied = 0
        for event in events:
            if decision.action == "block":
                if self.construction.apply_curation(event.event_id, {}, block=True):
                    applied += 1
            else:
                edits = {k: v for k, v in event.payload.items() if k != "name"}
                if self.construction.apply_curation(event.event_id, edits):
                    applied += 1
        if applied:
            self.executor.invalidate_cache()
        return applied

    # -------------------------------------------------------------- #
    # querying
    # -------------------------------------------------------------- #
    def compile(self, query_text: str) -> PhysicalPlan:
        """Parse and plan a KGQ query string."""
        return self.planner.plan(parse(query_text))

    def query(self, query: str | Query | CallQuery, use_cache: bool = True) -> QueryResult:
        """Execute a KGQ query (text or pre-parsed) against the live index."""
        if isinstance(query, str):
            plan = self.compile(query)
        else:
            plan = self.planner.plan(query)
        return self.executor.execute(plan, use_cache=use_cache)

    def explain(self, query_text: str) -> list[str]:
        """Return the physical plan of a query as EXPLAIN-style lines."""
        return self.compile(query_text).explain()

    # -------------------------------------------------------------- #
    # intents and multi-turn context
    # -------------------------------------------------------------- #
    def answer_intent(self, intent: Intent, record_context: bool = True) -> IntentAnswer:
        """Route an intent, execute its query, and record the turn in context."""
        resolved = self.context.resolve_intent(intent)
        query, route = self.intents.route(resolved)
        result = self.query(query)
        answer = result.first_value(route.answer_column) if route.answer_column else (
            result.rows[0].values if result.rows else None
        )
        if record_context:
            answer_text = answer if isinstance(answer, str) else None
            self.context.record(resolved, answer_entity=None, answer_text=answer_text)
        return IntentAnswer(intent=resolved, answer=answer, result=result,
                            route_column=route.answer_column)

    def answer_follow_up(self, utterance: str) -> IntentAnswer:
        """Answer a "How about X?" follow-up using the conversation context."""
        intent = self.context.resolve_follow_up(utterance)
        if intent is None:
            raise IntentError(f"cannot interpret follow-up {utterance!r} without context")
        return self.answer_intent(intent)

    # -------------------------------------------------------------- #
    # operations
    # -------------------------------------------------------------- #
    def latency_p95_ms(self) -> float:
        """95th-percentile query latency in milliseconds."""
        return self.executor.latency_percentile(95.0)

    def stats(self) -> dict[str, object]:
        """Operational statistics of the live engine."""
        return {
            "documents": len(self.index),
            "shard_sizes": self.index.kv.shard_sizes(),
            "events_processed": self.construction.stats.events_processed,
            "references_resolved": self.construction.stats.references_resolved,
            "references_unresolved": self.construction.stats.references_unresolved,
            "queries": len(self.executor.latencies_ms),
            "cache_hits": self.executor.cache.hits,
            "p95_latency_ms": self.latency_p95_ms(),
            "quarantined_facts": len(self.curation.pending()),
        }
