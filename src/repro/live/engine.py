"""The Live Graph Query Engine facade (Section 4, Figure 9).

Ties together live construction, the sharded indexes, the KGQ compiler and
executor, intent handling, multi-turn context, and the curation pipeline into
one object that examples, tests, and benchmarks drive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.datagen.streams import LiveEvent
from repro.errors import IntentError, JournalGapError, LiveGraphError
from repro.live.construction import EntityResolutionClient, LiveGraphConstruction
from repro.live.context import ContextGraph
from repro.live.curation import CurationDecision, CurationPipeline
from repro.live.executor import QueryExecutor, QueryResult
from repro.live.index import LiveEntityDocument, LiveIndex, view_row_documents
from repro.live.intents import Intent, IntentHandler, default_intent_handler
from repro.live.kgq import (
    CallQuery,
    Query,
    VirtualOperatorRegistry,
    default_virtual_operators,
    parse,
)
from repro.live.planner import PhysicalPlan, QueryPlanner
from repro.model.triples import TripleStore


@dataclass
class IntentAnswer:
    """Answer of an intent execution, including the raw query result."""

    intent: Intent
    answer: object | None
    result: QueryResult
    route_column: str = ""


class LiveGraphEngine:
    """Low-latency serving over the union of stable and streaming knowledge."""

    def __init__(
        self,
        resolution_service=None,
        num_shards: int = 4,
        virtual_operators: VirtualOperatorRegistry | None = None,
        intent_handler: IntentHandler | None = None,
    ) -> None:
        self.index = LiveIndex(num_shards)
        resolution_client = (
            EntityResolutionClient(resolution_service) if resolution_service is not None else None
        )
        self.construction = LiveGraphConstruction(self.index, resolution_client)
        self.virtual_operators = virtual_operators or default_virtual_operators()
        # Cost-based seeding: the planner reads live postings sizes so the
        # cheapest pushable condition seeds execution.
        self.planner = QueryPlanner(
            self.virtual_operators, selectivity=self.index.seed_selectivity
        )
        self.executor = QueryExecutor(self.index)
        self.intents = intent_handler or default_intent_handler(self.index)
        self.context = ContextGraph()
        self.curation = CurationPipeline()
        self._feed_revisions: dict[str, int] = {}        # feed -> view state revision
        self._router = None                              # optional replica read router
        self._query_router = None                        # optional scatter-gather router
        self.view_feed_incremental_loads = 0             # journal-delta catch-ups
        self.view_feed_full_loads = 0                    # full artifact rewrites
        self.view_feed_journal_gaps = 0                  # gap-signalled resyncs
        self.routed_queries = 0                          # KGQs executed fleet-side

    # -------------------------------------------------------------- #
    # construction
    # -------------------------------------------------------------- #
    def load_stable_view(
        self,
        store: TripleStore,
        entity_types: Sequence[str] = (),
        version: int | None = None,
    ) -> int:
        """Load a stable-KG view into the live index.

        *version* is the Graph Engine log position (LSN) the store reflects;
        when given it is recorded as the stable feed's watermark (keyed per
        ``entity_types`` filter) so later syncs can skip reloading an
        unchanged upstream.
        """
        loaded = self.construction.load_stable_view(store, entity_types)
        if version is not None:
            self.index.set_watermark(self._stable_feed(entity_types), version)
        self.executor.invalidate_cache()
        return loaded

    def sync_stable_view(self, graph_engine, entity_types: Sequence[str] = ()) -> int:
        """Refresh the stable view from a Graph Engine only when it advanced.

        Compares the engine's minimum store version (the LSN every store has
        replayed) against the watermark of this ``entity_types`` filter's
        feed; returns 0 without touching the index when the serving copy is
        already fresh.  A sync with a *different* type filter is its own feed
        and is never skipped on another filter's account.
        """
        version = graph_engine.minimum_version()
        if version and self.index.is_fresh(self._stable_feed(entity_types), version):
            return 0
        return self.load_stable_view(graph_engine.triples, entity_types, version=version)

    @staticmethod
    def _stable_feed(entity_types: Sequence[str]) -> str:
        if not entity_types:
            return "stable"
        return "stable:" + ",".join(sorted(entity_types))

    def load_view_artifact(
        self, graph_engine, view_name: str, entity_type: str = "view_row"
    ) -> int:
        """Serve a materialized Graph Engine view artifact from the live index.

        The artifact must be row-shaped (a sequence of dicts with a
        ``subject`` key, like the standard ``entity_features`` view).  Each
        row becomes a live document keyed ``{view_name}:{subject}``.  The
        view's ``built_at_lsn`` watermark gates the load: when the serving
        copy already reflects that log position, nothing is reloaded.  When
        the view's delta journal can answer "what changed since the version
        this feed serves", only the journaled rows are rewritten instead of
        re-diffing the full artifact; a journal gap (the view was rebuilt
        from scratch, or the feed fell behind compaction) is signalled by an
        explicit :class:`~repro.errors.JournalGapError`, counted in
        ``view_feed_journal_gaps``, and consumed by resyncing through the
        full rewrite.  Reading the artifact raises
        :class:`~repro.errors.ViewError` if the view (or, via cascade
        invalidation, one of its dependencies) was dropped — the live layer
        can never serve stale dropped-view results.
        """
        rows = graph_engine.view_artifact(view_name)
        manager = graph_engine.view_manager
        version = manager.built_at_lsn(view_name)
        revision = manager.state_revision(view_name)
        feed = f"view:{view_name}"
        # Skip only when both the log position AND the state revision are
        # unchanged: a re-registered view rebuilt at the same LSN is new data.
        if (
            version
            and self.index.is_fresh(feed, version)
            and self._feed_revisions.get(feed) == revision
        ):
            return 0
        if not isinstance(rows, (list, tuple)):
            raise LiveGraphError(
                f"view artifact {view_name!r} is not row-shaped; cannot serve it live"
            )
        served_version = self.index.watermark(feed)
        delta = None
        if served_version and self._feed_revisions.get(feed) == revision:
            try:
                delta = manager.view_deltas_since(view_name, served_version, strict=True)
            except JournalGapError:
                # Journal truncated or compacted past the version this feed
                # serves: an explicit staleness signal, resynced through the
                # full-reload path below instead of re-diffing blind.
                self.view_feed_journal_gaps += 1
        if delta is not None:
            return self._apply_view_delta(
                graph_engine, view_name, feed, rows, delta, version, entity_type
            )
        # Validate every row before touching the index: a malformed artifact
        # must not leave a half-rewritten feed behind.
        for row in rows:
            if not isinstance(row, dict) or "subject" not in row:
                raise LiveGraphError(
                    f"view artifact {view_name!r} rows need a 'subject' key to be served"
                )
        loaded = self.index.replace_feed(
            feed,
            view_row_documents(view_name, feed, rows, version, entity_type),
            version,
        )
        self._feed_revisions[feed] = revision
        self.executor.invalidate_cache()
        self.view_feed_full_loads += 1
        return loaded

    def _apply_view_delta(
        self, graph_engine, view_name: str, feed: str, rows, delta, version: int,
        entity_type: str,
    ) -> int:
        """Catch a view feed up by rewriting only the journaled rows."""
        # Validate every row before touching the index — same contract as the
        # full-load path: a malformed artifact (e.g. a buggy apply_delta
        # corrupting one row) must fail loudly, not silently unserve entities.
        by_subject = {}
        for row in rows:
            if not isinstance(row, dict) or "subject" not in row:
                raise LiveGraphError(
                    f"view artifact {view_name!r} rows need a 'subject' key to be served"
                )
            by_subject[row["subject"]] = row
        changed_rows = []
        deleted_ids = []
        for subject in sorted(delta.changed):
            row = by_subject.get(subject)
            if row is None:
                # The row left the artifact without a journaled delete (e.g.
                # an incremental builder pruning beyond its scope): stop
                # serving it rather than serve a stale copy.
                deleted_ids.append(f"{view_name}:{subject}")
                continue
            changed_rows.append(row)
        upserts = view_row_documents(view_name, feed, changed_rows, version, entity_type)
        deleted_ids.extend(f"{view_name}:{subject}" for subject in sorted(delta.deleted))
        loaded = self.index.apply_feed_delta(feed, upserts, deleted_ids, version)
        if upserts or deleted_ids:
            self.executor.invalidate_cache()
        self.view_feed_incremental_loads += 1
        return loaded

    def ingest_events(self, events: Iterable[LiveEvent], screen: bool = True) -> int:
        """Ingest streaming events, optionally screening them for curation."""
        count = 0
        for event in events:
            document = self.construction.ingest_event(event)
            if screen:
                self.curation.screen(document)
            count += 1
        if count:
            self.executor.invalidate_cache()
        return count

    def apply_curation_decision(self, decision: CurationDecision) -> int:
        """Apply a curator decision as a hot fix to the live index."""
        events = self.curation.decide(decision)
        applied = 0
        for event in events:
            if decision.action == "block":
                if self.construction.apply_curation(event.event_id, {}, block=True):
                    applied += 1
            else:
                edits = {k: v for k, v in event.payload.items() if k != "name"}
                if self.construction.apply_curation(event.event_id, edits):
                    applied += 1
        if applied:
            self.executor.invalidate_cache()
        return applied

    # -------------------------------------------------------------- #
    # replica-backed reads
    # -------------------------------------------------------------- #
    def attach_router(self, router) -> None:
        """Route view reads through a serving-fleet :class:`ShardRouter`.

        Once attached, :meth:`routed_view_read` serves view rows from the
        replica fleet instead of this process's own index — the local index
        keeps serving streaming documents and non-routed queries.
        """
        self._router = router

    def routed_view_read(
        self, view_name: str, subject: str, consistency=None
    ) -> LiveEntityDocument | None:
        """Read one served view row through the attached replica router.

        *consistency* is a :class:`~repro.serving.router.Consistency` level
        (``None`` means "any live replica").  Raises
        :class:`~repro.errors.LiveGraphError` when no router is attached;
        routing errors (no live replica, staleness) propagate from the
        router untranslated.
        """
        if self._router is None:
            raise LiveGraphError(
                "no read router attached; call attach_router(fleet.router) first"
            )
        if consistency is None:
            return self._router.read(view_name, subject)
        return self._router.read(view_name, subject, consistency)

    def attach_query_router(self, query_router) -> None:
        """Route whole KGQ executions through a serving-fleet QueryRouter.

        Once attached, :meth:`routed_query` scatter-gathers plan fragments
        over the replica fleet instead of executing on this process's own
        index — the local executor keeps serving non-routed queries.
        """
        self._query_router = query_router

    def routed_query(
        self, query: str | Query | CallQuery, view_name: str, consistency=None
    ) -> QueryResult:
        """Execute a KGQ over the replica fleet's copy of *view_name*.

        *consistency* is a :class:`~repro.serving.router.Consistency` level
        enforced per plan fragment (``None`` means "any live replica").
        Raises :class:`~repro.errors.LiveGraphError` when no query router is
        attached; routing errors (no live replica, staleness) propagate from
        the router untranslated.
        """
        if self._query_router is None:
            raise LiveGraphError(
                "no query router attached; call "
                "attach_query_router(fleet.query_router) first"
            )
        self.routed_queries += 1
        if consistency is None:
            return self._query_router.execute(query, view_name)
        return self._query_router.execute(query, view_name, consistency)

    # -------------------------------------------------------------- #
    # querying
    # -------------------------------------------------------------- #
    def compile(self, query_text: str) -> PhysicalPlan:
        """Parse and plan a KGQ query string."""
        return self.planner.plan(parse(query_text))

    def query(self, query: str | Query | CallQuery, use_cache: bool = True) -> QueryResult:
        """Execute a KGQ query (text or pre-parsed) against the live index."""
        if isinstance(query, str):
            plan = self.compile(query)
        else:
            plan = self.planner.plan(query)
        return self.executor.execute(plan, use_cache=use_cache)

    def explain(self, query_text: str) -> list[str]:
        """Return the physical plan of a query as EXPLAIN-style lines."""
        return self.compile(query_text).explain()

    # -------------------------------------------------------------- #
    # intents and multi-turn context
    # -------------------------------------------------------------- #
    def answer_intent(self, intent: Intent, record_context: bool = True) -> IntentAnswer:
        """Route an intent, execute its query, and record the turn in context."""
        resolved = self.context.resolve_intent(intent)
        query, route = self.intents.route(resolved)
        result = self.query(query)
        answer = result.first_value(route.answer_column) if route.answer_column else (
            result.rows[0].values if result.rows else None
        )
        if record_context:
            answer_text = answer if isinstance(answer, str) else None
            self.context.record(resolved, answer_entity=None, answer_text=answer_text)
        return IntentAnswer(intent=resolved, answer=answer, result=result,
                            route_column=route.answer_column)

    def answer_follow_up(self, utterance: str) -> IntentAnswer:
        """Answer a "How about X?" follow-up using the conversation context."""
        intent = self.context.resolve_follow_up(utterance)
        if intent is None:
            raise IntentError(f"cannot interpret follow-up {utterance!r} without context")
        return self.answer_intent(intent)

    # -------------------------------------------------------------- #
    # operations
    # -------------------------------------------------------------- #
    def latency_p95_ms(self) -> float:
        """95th-percentile query latency in milliseconds."""
        return self.executor.latency_percentile(95.0)

    def stats(self) -> dict[str, object]:
        """Operational statistics of the live engine."""
        return {
            "documents": len(self.index),
            "shard_sizes": self.index.kv.shard_sizes(),
            "events_processed": self.construction.stats.events_processed,
            "references_resolved": self.construction.stats.references_resolved,
            "references_unresolved": self.construction.stats.references_unresolved,
            "queries": len(self.executor.latencies_ms),
            "cache_hits": self.executor.cache.hits,
            "p95_latency_ms": self.latency_p95_ms(),
            "quarantined_facts": len(self.curation.pending()),
            "feed_watermarks": dict(self.index.watermarks),
            "view_feed_incremental_loads": self.view_feed_incremental_loads,
            "view_feed_full_loads": self.view_feed_full_loads,
            "view_feed_journal_gaps": self.view_feed_journal_gaps,
            "routed_reads": self._router.reads_routed if self._router else 0,
            "routed_queries": self.routed_queries,
        }
