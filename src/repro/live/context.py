"""Multi-turn query context (§4.2).

The live query engine keeps a context graph of previous intents, their
arguments, and their answers so that follow-up queries can be resolved:

* "How about Tom Hanks?" reuses the previous *intent* with a new argument;
* "Where is she from?" uses a new intent whose argument is pulled from the
  previous *answer* (or argument) in the context graph.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.live.intents import Intent

_PRONOUNS = {"she", "he", "they", "her", "him", "them", "it"}
_FOLLOW_UP_PATTERN = re.compile(r"^(how|what|and) about (?P<argument>.+?)\??$", re.IGNORECASE)


@dataclass
class ContextTurn:
    """One completed interaction stored in the context graph."""

    intent: Intent
    answer_entity: str | None = None
    answer_text: str | None = None


@dataclass
class ContextGraph:
    """Bounded history of interactions used to bind follow-up queries."""

    max_turns: int = 10
    turns: list[ContextTurn] = field(default_factory=list)

    def record(self, intent: Intent, answer_entity: str | None, answer_text: str | None) -> None:
        """Record one completed interaction."""
        self.turns.append(
            ContextTurn(intent=intent, answer_entity=answer_entity, answer_text=answer_text)
        )
        if len(self.turns) > self.max_turns:
            self.turns.pop(0)

    def last_turn(self) -> ContextTurn | None:
        """Most recent interaction, if any."""
        return self.turns[-1] if self.turns else None

    def last_intent(self) -> Intent | None:
        """Intent of the most recent interaction."""
        turn = self.last_turn()
        return turn.intent if turn else None

    def last_answer(self) -> str | None:
        """Answer text of the most recent interaction."""
        turn = self.last_turn()
        if turn is None:
            return None
        return turn.answer_text or turn.answer_entity

    def clear(self) -> None:
        """Forget the conversation history."""
        self.turns.clear()

    # -------------------------------------------------------------- #
    # reference resolution
    # -------------------------------------------------------------- #
    def resolve_intent(self, intent: Intent) -> Intent:
        """Bind missing or pronominal arguments of *intent* from context.

        An intent whose argument is empty or a pronoun takes the previous
        turn's answer as its argument (the "Where is she from?" case).
        """
        if intent.arguments and intent.arguments[0].lower() not in _PRONOUNS:
            return intent
        previous_answer = self.last_answer()
        if previous_answer is None:
            return intent
        return Intent(name=intent.name, arguments=(previous_answer,))

    def resolve_follow_up(self, utterance: str) -> Intent | None:
        """Interpret "How about X?"-style follow-ups using the previous intent."""
        match = _FOLLOW_UP_PATTERN.match(utterance.strip())
        if match is None:
            return None
        previous = self.last_intent()
        if previous is None:
            return None
        argument = match.group("argument").strip().strip("?")
        return Intent(name=previous.name, arguments=(argument,))
