"""Live Graph Construction: join streaming facts with the stable KG (§4.1).

Live sources (sports scores, stock prices, flight statuses) are uniquely
identifiable across updates and therefore skip the full linking/fusion
pipeline; what they *do* need is resolution of their ambiguous text references
to stable entities (the teams playing a game, the venue, the issuing company).
The live graph is the union of a stable-KG view with these continuously
updating streaming entities, indexed for low-latency search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.datagen.streams import LiveEvent
from repro.live.index import LiveEntityDocument, LiveIndex
from repro.model.entity import KGEntity, materialize_entities
from repro.model.triples import TripleStore


@dataclass
class LiveConstructionStats:
    """Counters for live ingestion."""

    events_processed: int = 0
    references_resolved: int = 0
    references_unresolved: int = 0
    stable_entities_loaded: int = 0
    curations_applied: int = 0


class EntityResolutionClient:
    """Resolve text mentions to stable entity ids via the ER/NERD service.

    Wraps anything exposing ``link_mention(mention, context_values=...,
    type_hints=...)`` (both :class:`repro.ml.nerd.NERDService` and the legacy
    baseline do) and caches answers, since live feeds repeat the same
    references on every update.
    """

    def __init__(self, service, confidence_threshold: float = 0.6) -> None:
        self.service = service
        self.confidence_threshold = confidence_threshold
        self._cache: dict[tuple[str, tuple[str, ...]], str | None] = {}
        self.calls = 0

    def resolve(
        self, mention: str, context_values: Sequence[str] = (), type_hints: tuple[str, ...] = ()
    ) -> str | None:
        """Return the stable entity id for *mention*, or ``None``."""
        key = (mention.lower(), tuple(type_hints))
        if key in self._cache:
            return self._cache[key]
        self.calls += 1
        result = self.service.link_mention(
            mention, context_values=tuple(context_values), type_hints=type_hints
        )
        entity_id = (
            result.entity_id
            if result.entity_id is not None and result.confidence >= self.confidence_threshold
            else None
        )
        self._cache[key] = entity_id
        return entity_id


#: Expected stable-entity types per reference field of the live feeds.
REFERENCE_TYPE_HINTS = {
    "home_team": ("sports_team",),
    "away_team": ("sports_team",),
    "venue": ("stadium", "place"),
    "issuer": ("company", "organization"),
    "departure_airport": ("city", "place"),
    "arrival_airport": ("city", "place"),
}


class LiveGraphConstruction:
    """Build and continuously update the live KG index."""

    def __init__(
        self,
        index: LiveIndex | None = None,
        resolution_client: EntityResolutionClient | None = None,
    ) -> None:
        self.index = index if index is not None else LiveIndex()
        self.resolution = resolution_client
        self.stats = LiveConstructionStats()

    # -------------------------------------------------------------- #
    # stable view loading
    # -------------------------------------------------------------- #
    def load_stable_view(self, store: TripleStore, entity_types: Sequence[str] = ()) -> int:
        """Load a view of the stable KG into the live index.

        Only the entity types the live use cases need (teams, venues, people,
        cities, companies, ...) are loaded; an empty filter loads everything.
        """
        allowed = set(entity_types)
        loaded = 0
        for entity_id, entity in materialize_entities(store).items():
            if allowed and not (set(entity.types) & allowed):
                continue
            self.index.upsert(self._stable_document(entity))
            loaded += 1
        self.stats.stable_entities_loaded += loaded
        return loaded

    def _stable_document(self, entity: KGEntity) -> LiveEntityDocument:
        facts: dict[str, list[object]] = {
            predicate: list(values) for predicate, values in entity.facts.items()
        }
        if entity.names:
            facts.setdefault("alias", []).extend(entity.names[1:])
        return LiveEntityDocument(
            entity_id=entity.entity_id,
            entity_type=entity.types[0] if entity.types else "",
            name=entity.primary_name,
            facts=facts,
            source_id="stable_kg",
            is_live=False,
        )

    # -------------------------------------------------------------- #
    # streaming ingest
    # -------------------------------------------------------------- #
    def ingest_event(self, event: LiveEvent) -> LiveEntityDocument:
        """Ingest one streaming update, resolving its stable references."""
        references: dict[str, str] = {}
        context_values = [str(v) for v in event.payload.values() if isinstance(v, str)]
        for predicate, mention in event.references.items():
            resolved = None
            if self.resolution is not None:
                resolved = self.resolution.resolve(
                    mention,
                    context_values=context_values,
                    type_hints=REFERENCE_TYPE_HINTS.get(predicate, ()),
                )
            if resolved is not None:
                references[predicate] = resolved
                self.stats.references_resolved += 1
            else:
                # Keep the raw mention so the fact is still queryable by text.
                references[predicate] = mention
                self.stats.references_unresolved += 1

        document = LiveEntityDocument(
            entity_id=event.event_id,
            entity_type=event.entity_type,
            name=str(event.payload.get("name", event.event_id)),
            facts={key: [value] for key, value in event.payload.items() if key != "name"},
            references=references,
            source_id=event.source_id,
            timestamp=event.timestamp,
            is_live=True,
        )
        self.index.upsert(document)
        self.stats.events_processed += 1
        return document

    def ingest_events(self, events: Iterable[LiveEvent]) -> int:
        """Ingest a stream of events in order; returns the number processed."""
        count = 0
        for event in events:
            self.ingest_event(event)
            count += 1
        return count

    # -------------------------------------------------------------- #
    # curation hot-fixes (§4.3)
    # -------------------------------------------------------------- #
    def apply_curation(self, entity_id: str, edits: dict[str, object], block: bool = False) -> bool:
        """Apply a human curation decision directly to the live index.

        ``block=True`` removes the entity from serving; otherwise the given
        predicate edits overwrite the entity's facts.  Curations also flow to
        stable construction as a source (handled by the curation pipeline).
        """
        if block:
            removed = self.index.delete(entity_id)
            if removed:
                self.stats.curations_applied += 1
            return removed
        document = self.index.get(entity_id)
        if document is None:
            return False
        for predicate, value in edits.items():
            document.facts[predicate] = value if isinstance(value, list) else [value]
        self.index.upsert(document)
        self.stats.curations_applied += 1
        return True
