"""KGQ physical-plan execution over the live index (§4.2).

The executor evaluates plans produced by :class:`repro.live.planner.QueryPlanner`
against the :class:`repro.live.index.LiveIndex`.  Two execution strategies
share exact semantics (rows, ordering, and ``candidates_examined``
accounting — property-proven by the seeded equivalence suite):

* **vectorized** (the default) — candidates stay *id sets* for as long as
  possible: type gates are partition-membership checks, equality filters
  resolve through inverted-index postings intersection (a probe superset
  verified per document, so normalized-string postings can never change the
  answer), and the remaining conditions/projections run over batched value
  columns with one ``get_many`` per traversal hop;
* **per-document** — the reference loop: one condition evaluation per
  candidate document.  Kept as the semantic baseline and the comparison arm
  of ``benchmarks/bench_kgq_executor.py`` (BENCH_KGQEXEC.json gates the
  vectorized path at ≥3x on scan-heavy plans).

Query latencies are recorded so benchmarks can report the p95 figure the
paper quotes for the production deployment.
"""

from __future__ import annotations

import json
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.errors import KGQPlanError, LiveGraphError
from repro.live.index import LiveEntityDocument, LiveIndex
from repro.live.planner import IndexLookup, PhysicalPlan, TypeScan
from repro.live.rpq import RpqEvaluator, Witness
from repro.ml.similarity import normalize_string


@dataclass
class QueryResultRow:
    """One result row: the matched entity plus its projected values.

    REACH answers additionally carry their provenance ``witness`` — the
    canonical edge sequence ``((src, label, dst), ...)`` proving the row is
    reachable from a seed (``None`` for non-REACH queries, ``()`` when the
    row is itself a seed and the expression accepts the empty path).
    """

    entity_id: str
    values: dict[str, object] = field(default_factory=dict)
    witness: Witness | None = None


@dataclass
class QueryResult:
    """Execution output plus timing metadata."""

    rows: list[QueryResultRow] = field(default_factory=list)
    latency_ms: float = 0.0
    from_cache: bool = False
    candidates_examined: int = 0

    def first_value(self, column: str | None = None) -> object | None:
        """Convenience: the first projected value of the first row."""
        if not self.rows:
            return None
        row = self.rows[0]
        if column is not None:
            return row.values.get(column)
        return next(iter(row.values.values()), None)


class QueryCache:
    """Tiny LRU cache keyed by rendered query text.

    Rows are defensively copied on both :meth:`put` and :meth:`get` (the
    ``values`` dict of every row), so a caller mutating a returned row can
    never poison later cache hits and a caller mutating its input rows after
    ``put`` cannot corrupt the cached entry.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise LiveGraphError("the query cache needs positive capacity")
        self.capacity = capacity
        self._entries: OrderedDict[str, list[QueryResultRow]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def _copy_rows(rows: list[QueryResultRow]) -> list[QueryResultRow]:
        # Witnesses are immutable tuples, so sharing them across copies is safe.
        return [
            QueryResultRow(entity_id=row.entity_id, values=dict(row.values), witness=row.witness)
            for row in rows
        ]

    def get(self, key: str) -> list[QueryResultRow] | None:
        """Cached rows for *key* (fresh copies), refreshing recency."""
        rows = self._entries.get(key)
        if rows is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return self._copy_rows(rows)

    def put(self, key: str, rows: list[QueryResultRow]) -> None:
        """Insert copies of *rows* for *key*, evicting the least-recently-used."""
        self._entries[key] = self._copy_rows(rows)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self) -> None:
        """Drop every cached result (called after live updates)."""
        self._entries.clear()


def merge_partial_results(
    plan: PhysicalPlan, partials: Sequence[QueryResult]
) -> QueryResult:
    """Gather-side merge of fragment results into one query result.

    Rows are unioned, deduplicated by entity id (first fragment wins — with
    disjoint partitions duplicates never occur, but a fallback re-dispatch may
    overlap), ordered by entity id to match the single-node executor's
    deterministic candidate order, and truncated to the plan's LIMIT.  The
    merged ``candidates_examined`` sums the fragments (total fleet work);
    ``latency_ms`` sums fragment latencies (the router stamps wall-clock on
    top), and ``from_cache`` is true only when every fragment was served from
    its replica's cache.
    """
    if len(partials) == 1:
        # Single-fragment fast path (point lookups, single-replica routes):
        # fragment rows are already entity-ordered and duplicate-free, so skip
        # the dict build and re-sort.
        examined = partials[0].candidates_examined
        latency = partials[0].latency_ms
        rows = list(partials[0].rows)
    else:
        by_entity: dict[str, QueryResultRow] = {}
        examined = 0
        latency = 0.0
        for partial in partials:
            examined += partial.candidates_examined
            latency += partial.latency_ms
            for row in partial.rows:
                by_entity.setdefault(row.entity_id, row)
        rows = [by_entity[entity_id] for entity_id in sorted(by_entity)]
    if plan.limit is not None:
        rows = rows[: plan.limit.limit]
    return QueryResult(
        rows=rows,
        latency_ms=latency,
        from_cache=bool(partials) and all(partial.from_cache for partial in partials),
        candidates_examined=examined,
    )


#: Separator composing a joined row's entity id from its operand row ids.
#: A left-join miss keeps the separator with an empty right half, so joined
#: ids never collide with plain row ids and stay deterministic to sort.
JOIN_ID_SEPARATOR = "⋈"


def canonical_join_key(value: object) -> str:
    """Canonical string of a join-key value: equal values, equal strings.

    The one key-equality definition every join path shares — the hash table
    of :func:`join_result_rows` and the shuffle partitioner of
    ``QueryRouter.execute_join`` must agree on which values join, or a
    re-partitioned join would split a key group across replicas and lose
    matches.  Numerics (``3``, ``3.0``, ``True``) normalize to one numeric
    form, mirroring the executor's cross-type ``_equal`` semantics; every
    other value canonicalizes through sorted-key JSON.
    """
    if isinstance(value, (bool, int, float)):
        as_float = float(value)
        if as_float.is_integer():
            return f"n:{int(as_float)}"
        return f"n:{as_float!r}"
    return "s:" + json.dumps(value, sort_keys=True, default=str, separators=(",", ":"))


def projected_join_key(row: QueryResultRow, key: str) -> object:
    """The row's join-key value, which must be among its projected columns.

    Join sides must ``RETURN`` their join key — a row that did not project
    it cannot be partitioned or matched, and silently joining a missing key
    as ``None`` would fabricate matches, so this raises
    :class:`~repro.errors.LiveGraphError` naming the row and the column.
    """
    try:
        return row.values[key]
    except KeyError:
        raise LiveGraphError(
            f"result row {row.entity_id!r} does not project join key {key!r}; "
            "add the key column to the query's RETURN clause"
        ) from None


def join_result_rows(
    left_rows: Sequence[QueryResultRow],
    right_rows: Sequence[QueryResultRow],
    left_key: str,
    right_key: str,
    how: str = "inner",
) -> list[QueryResultRow]:
    """Hash-join two result-row sets on a projected key column.

    The single join kernel of the distributed path: the primary reference
    (:func:`join_results`), the replica-side broadcast probe
    (``ReplicaNode.join_fragment``), and the shuffle partition join
    (``ReplicaNode.join_partition``) all run exactly this function, which is
    what makes distributed joins result-identical to primary execution.

    Joined rows merge the right row's values under the left row's (the left
    side wins a column-name collision) and compose their entity id as
    ``left_id ⋈ right_id``; with ``how="left"`` an unmatched left row
    survives as ``left_id ⋈`` carrying only its own values.  Output order is
    probe order — callers canonicalize through :func:`finalize_joined_rows`.
    """
    if how not in ("inner", "left"):
        raise LiveGraphError(f"unsupported join type {how!r}")
    table: dict[str, list[QueryResultRow]] = {}
    for row in right_rows:
        table.setdefault(canonical_join_key(projected_join_key(row, right_key)), []).append(row)
    joined: list[QueryResultRow] = []
    for left_row in left_rows:
        matches = table.get(canonical_join_key(projected_join_key(left_row, left_key)))
        if matches:
            for right_row in matches:
                values = dict(right_row.values)
                values.update(left_row.values)
                joined.append(QueryResultRow(
                    entity_id=(
                        f"{left_row.entity_id}{JOIN_ID_SEPARATOR}{right_row.entity_id}"
                    ),
                    values=values,
                ))
        elif how == "left":
            joined.append(QueryResultRow(
                entity_id=f"{left_row.entity_id}{JOIN_ID_SEPARATOR}",
                values=dict(left_row.values),
            ))
    return joined


def finalize_joined_rows(
    rows: Iterable[QueryResultRow], limit: int | None = None
) -> list[QueryResultRow]:
    """Canonicalize gathered join rows: dedup by id, order, apply LIMIT.

    The joined-row counterpart of :func:`merge_partial_results`' gather step:
    duplicates (possible only when a dead-replica re-dispatch overlapped) are
    dropped first-wins, rows sort by composite entity id, and *limit* bounds
    the final result — per-side LIMITs are rejected at planning time because
    a per-partition LIMIT under-collects.
    """
    by_id: dict[str, QueryResultRow] = {}
    for row in rows:
        by_id.setdefault(row.entity_id, row)
    ordered = [by_id[entity_id] for entity_id in sorted(by_id)]
    if limit is not None:
        ordered = ordered[:limit]
    return ordered


def join_results(
    left: QueryResult,
    right: QueryResult,
    left_key: str,
    right_key: str,
    how: str = "inner",
    limit: int | None = None,
) -> QueryResult:
    """Join two query results — the primary-side reference for router joins.

    ``QueryRouter.execute_join`` over any fleet must return exactly what this
    produces from the primary's own execution of the two side queries (the
    seeded equivalence suite property-tests that under kills and restarts).
    """
    rows = finalize_joined_rows(
        join_result_rows(left.rows, right.rows, left_key, right_key, how), limit
    )
    return QueryResult(
        rows=rows,
        latency_ms=left.latency_ms + right.latency_ms,
        from_cache=left.from_cache and right.from_cache,
        candidates_examined=left.candidates_examined + right.candidates_examined,
    )


def _equality_probes(target: object) -> set[str]:
    """Normalized postings keys under which a value equal to *target* may post.

    The inverted index keys values by ``normalize_string`` only, while the
    per-document ``_equal`` admits cross-type matches (``3 == 3.0``,
    ``1 == True``, ``"3"`` vs ``3``).  The probe set covers every normalized
    rendering such a matching value can post under, so the postings union is
    a strict superset of the true match set — verification then prunes it
    with exact per-document semantics.  Returns an empty set when *target*
    is not probeable (caller falls back to the column path).
    """
    base = normalize_string(target)
    if not base:
        return set()
    probes = {base}
    if isinstance(target, bool):
        # A numeric fact equal to a bool posts under its numeric rendering.
        probes.update(("1", "1.0") if target else ("0", "0.0"))
    elif isinstance(target, (int, float)):
        as_float = float(target)
        probes.add(normalize_string(as_float))
        if as_float.is_integer():
            probes.add(normalize_string(int(as_float)))
        # A bool fact equals 1/0 numerically but posts under its repr.
        if as_float == 1.0:
            probes.add("true")
        elif as_float == 0.0:
            probes.add("false")
    return probes


class QueryExecutor:
    """Execute physical plans against the live index."""

    def __init__(
        self,
        index: LiveIndex,
        cache: QueryCache | None = None,
        vectorized: bool = True,
    ) -> None:
        self.index = index
        self.cache = cache or QueryCache()
        self.vectorized = vectorized
        self.rpq = RpqEvaluator(index.adjacency)
        self.latencies_ms: list[float] = []

    # -------------------------------------------------------------- #
    # execution
    # -------------------------------------------------------------- #
    def execute(
        self,
        plan: PhysicalPlan,
        use_cache: bool = True,
        scope: Callable[[LiveEntityDocument], bool] | None = None,
        scope_key: str = "",
        vectorized: bool | None = None,
        reach_feed: str = "",
    ) -> QueryResult:
        """Run *plan* and return its result rows with timing.

        *scope* (when given) restricts execution to the documents it accepts,
        applied right after seeding and before any condition work — this is
        how a plan fragment confines a replica to its own partition of a view
        feed.  ``candidates_examined`` counts in-scope candidates actually
        examined (a LIMIT early-break stops the count with the scan), so the
        figure shows the work this executor actually did.  *scope_key* must
        uniquely identify the scope for result caching; scoped executions with
        an empty key bypass the cache rather than poison it.  *vectorized*
        overrides the executor's default strategy for this call — both
        strategies produce identical rows, ordering, and accounting.

        *reach_feed* names the adjacency feed a REACH clause expands over:
        ``""`` is the live graph (the engine's own documents), ``"view:X"``
        the subject-space graph of a loaded view feed (the replica path).
        Ignored for plans without a REACH stage.
        """
        cache_key = plan.query.render()
        if plan.reach is not None and reach_feed:
            cache_key = f"{cache_key} |reach@{reach_feed}"
        if scope is not None:
            if not scope_key:
                use_cache = False
            cache_key = f"{cache_key} |{scope_key}"
        started = time.perf_counter()
        if use_cache:
            cached = self.cache.get(cache_key)
            if cached is not None:
                latency = (time.perf_counter() - started) * 1000.0
                self.latencies_ms.append(latency)
                return QueryResult(rows=cached, latency_ms=latency, from_cache=True)

        if plan.reach is not None:
            rows, examined = self._execute_reach(plan, scope, vectorized, reach_feed)
        elif self.vectorized if vectorized is None else vectorized:
            rows, examined = self._execute_vectorized(plan, scope)
        else:
            rows, examined = self._execute_per_document(plan, scope)
        latency = (time.perf_counter() - started) * 1000.0
        self.latencies_ms.append(latency)
        if use_cache:
            self.cache.put(cache_key, rows)
        return QueryResult(
            rows=rows, latency_ms=latency, from_cache=False, candidates_examined=examined
        )

    def invalidate_cache(self) -> None:
        """Invalidate cached results after live-index updates."""
        self.cache.invalidate()

    # -------------------------------------------------------------- #
    # document matching (shared by projection wrappers and REACH seeding)
    # -------------------------------------------------------------- #
    def match_documents(
        self,
        plan: PhysicalPlan,
        scope: Callable[[LiveEntityDocument], bool] | None = None,
        vectorized: bool | None = None,
        apply_limit: bool = True,
    ) -> tuple[list[LiveEntityDocument], int]:
        """The documents *plan*'s seed/filter pipeline matches, plus examined.

        This is execution up to (but excluding) projection — the REACH seed
        phase and replica fragment seeding use it with ``apply_limit=False``,
        because a LIMIT applies to the final answers, not the seeds.
        """
        limit = plan.limit.limit if apply_limit and plan.limit is not None else None
        if self.vectorized if vectorized is None else vectorized:
            return self._match_vectorized(plan, scope, limit)
        return self._match_per_document(plan, scope, limit)

    def project_documents(
        self, documents: list[LiveEntityDocument], plan: PhysicalPlan
    ) -> list[QueryResultRow]:
        """Project *documents* through *plan*'s RETURN clause (batched)."""
        return self._project_batch(documents, plan)

    # -------------------------------------------------------------- #
    # per-document strategy (the semantic baseline)
    # -------------------------------------------------------------- #
    def _execute_per_document(
        self,
        plan: PhysicalPlan,
        scope: Callable[[LiveEntityDocument], bool] | None,
    ) -> tuple[list[QueryResultRow], int]:
        limit = plan.limit.limit if plan.limit is not None else None
        survivors, examined = self._match_per_document(plan, scope, limit)
        return [self._project(document, plan) for document in survivors], examined

    def _match_per_document(
        self,
        plan: PhysicalPlan,
        scope: Callable[[LiveEntityDocument], bool] | None,
        limit: int | None,
    ) -> tuple[list[LiveEntityDocument], int]:
        candidates = self._seed_candidates(plan)
        if scope is not None:
            candidates = [document for document in candidates if scope(document)]
        query_type = plan.query.entity_type
        examined = 0
        survivors = []
        for document in candidates:
            examined += 1
            if document.entity_type and query_type and document.entity_type != query_type:
                continue
            if all(self._evaluate_condition(document, f.condition) for f in plan.filters):
                survivors.append(document)
                if limit is not None and len(survivors) >= limit and not plan.filters:
                    break
        if limit is not None:
            survivors = survivors[:limit]
        return survivors, examined

    # -------------------------------------------------------------- #
    # vectorized strategy (id sets + batched columns)
    # -------------------------------------------------------------- #
    def _execute_vectorized(
        self,
        plan: PhysicalPlan,
        scope: Callable[[LiveEntityDocument], bool] | None,
    ) -> tuple[list[QueryResultRow], int]:
        limit = plan.limit.limit if plan.limit is not None else None
        survivors, examined = self._match_vectorized(plan, scope, limit)
        return self._project_batch(survivors, plan), examined

    def _match_vectorized(
        self,
        plan: PhysicalPlan,
        scope: Callable[[LiveEntityDocument], bool] | None,
        limit: int | None,
    ) -> tuple[list[LiveEntityDocument], int]:
        candidate_ids, seed_type = self._seed_ids(plan)
        documents = self.index.get_many(candidate_ids)
        if scope is not None:
            candidate_ids = [
                entity_id
                for entity_id in candidate_ids
                if entity_id in documents and scope(documents[entity_id])
            ]
        elif len(documents) != len(candidate_ids):
            # An IndexLookup may post ids whose documents vanished.
            candidate_ids = [entity_id for entity_id in candidate_ids if entity_id in documents]

        # Type gate as partition membership: a candidate passes when it is
        # typed as the query asks or untyped.  Seeding from the query's own
        # type partition makes the gate a no-op.
        query_type = plan.query.entity_type
        typed_ids = untyped_ids = None
        if query_type and seed_type != query_type:
            typed_ids = self.index.kv.ids_by_type(query_type)
            untyped_ids = self.index.kv.ids_by_type("")

        if limit is not None and not plan.filters:
            # LIMIT early-break: walk ordered ids until the limit-th gate pass,
            # reproducing the per-document loop's examined count exactly.
            examined = 0
            survivor_ids: list[str] = []
            for entity_id in candidate_ids:
                examined += 1
                if typed_ids is None or entity_id in typed_ids or entity_id in untyped_ids:
                    survivor_ids.append(entity_id)
                    if len(survivor_ids) >= limit:
                        break
        else:
            examined = len(candidate_ids)
            if typed_ids is None:
                survivor_ids = candidate_ids
            else:
                survivor_ids = [
                    entity_id
                    for entity_id in candidate_ids
                    if entity_id in typed_ids or entity_id in untyped_ids
                ]
            survivor_ids = self._apply_filters_vectorized(plan, survivor_ids, documents)
            if limit is not None:
                survivor_ids = survivor_ids[:limit]
        return [documents[entity_id] for entity_id in survivor_ids], examined

    # -------------------------------------------------------------- #
    # REACH strategy (RPQ expansion over the adjacency bitmaps)
    # -------------------------------------------------------------- #
    def _execute_reach(
        self,
        plan: PhysicalPlan,
        scope: Callable[[LiveEntityDocument], bool] | None,
        vectorized: bool | None,
        reach_feed: str,
    ) -> tuple[list[QueryResultRow], int]:
        """Seed via the plan's match pipeline, expand via the RPQ evaluator.

        The MATCH/WHERE stages produce the seed set (LIMIT deferred — it
        bounds answers, not seeds); the compiled automaton expands it over
        *reach_feed*'s adjacency; answers are fetched back as documents,
        gated by the ``TO`` type (untyped documents pass, matching the type
        gate everywhere else), re-scoped, ordered by entity id, truncated,
        and projected — each row carrying its canonical witness path.
        ``candidates_examined`` adds the product-BFS expansion count (or the
        interval fast path's walk steps) to the seed phase's figure.
        """
        reach = plan.reach
        assert reach is not None
        seeds, examined = self.match_documents(
            plan, scope=scope, vectorized=vectorized, apply_limit=False
        )
        prefix = reach_feed[5:] + ":" if reach_feed.startswith("view:") else ""
        seed_nodes = []
        for document in seeds:
            entity_id = document.entity_id
            if prefix and entity_id.startswith(prefix):
                entity_id = entity_id[len(prefix):]
            seed_nodes.append(entity_id)
        answers, expanded = self.rpq.evaluate(
            reach_feed, seed_nodes, reach.automaton, reach.closure
        )
        examined += expanded
        answer_ids = [prefix + node for node in sorted(answers)]
        documents = self.index.get_many(answer_ids)
        survivors: list[LiveEntityDocument] = []
        witnesses: list[Witness] = []
        limit = plan.limit.limit if plan.limit is not None else None
        for node, entity_id in zip(sorted(answers), answer_ids):
            document = documents.get(entity_id)
            if document is None:
                continue
            if (
                reach.target_type
                and document.entity_type
                and document.entity_type != reach.target_type
            ):
                continue
            if scope is not None and not scope(document):
                continue
            survivors.append(document)
            witnesses.append(answers[node])
            if limit is not None and len(survivors) >= limit:
                break
        rows = self._project_batch(survivors, plan)
        for row, witness in zip(rows, witnesses):
            row.witness = witness
        return rows, examined

    def _seed_ids(self, plan: PhysicalPlan) -> tuple[list[str], str | None]:
        """Ordered candidate entity ids plus the seed's type (TypeScan only)."""
        seed = plan.seed
        if isinstance(seed, TypeScan):
            return sorted(self.index.kv.ids_by_type(seed.entity_type)), seed.entity_type
        if isinstance(seed, IndexLookup):
            predicate = seed.predicate_path[0]
            if predicate in ("name", "alias"):
                entity_ids = self.index.inverted.lookup_name(str(seed.value))
            else:
                entity_ids = self.index.inverted.lookup_value(predicate, seed.value)
            return sorted(entity_ids), None
        raise KGQPlanError(f"unknown seed operator {seed!r}")

    def _apply_filters_vectorized(
        self,
        plan: PhysicalPlan,
        candidate_ids: list[str],
        documents: dict[str, LiveEntityDocument],
    ) -> list[str]:
        """Intersect the candidate id list with every filter's match set.

        Single-hop equality conditions resolve through postings intersection
        (cheapest postings first, so later verification touches the fewest
        ids); everything else — ranges, CONTAINS, ``!=``, multi-hop paths —
        evaluates over batched value columns.  Candidate order is preserved
        throughout, so the survivor list matches the per-document loop.
        """
        if not plan.filters:
            return candidate_ids
        pushable = []
        columnar = []
        for filter_op in plan.filters:
            condition = filter_op.condition
            if (
                condition.operator == "="
                and len(condition.path) == 1
                and isinstance(condition.value, (str, int, float, bool))
                and _equality_probes(condition.value)
            ):
                pushable.append(condition)
            else:
                columnar.append(condition)
        pushable.sort(
            key=lambda condition: self.index.seed_selectivity(condition.path[0], condition.value)
        )
        ids = candidate_ids
        for condition in pushable:
            if not ids:
                return []
            matched = self._equality_match_ids(condition.path[0], condition.value, set(ids))
            ids = [
                entity_id
                for entity_id in ids
                if entity_id in matched
                and self._evaluate_condition(documents[entity_id], condition)
            ]
        for condition in columnar:
            if not ids:
                return []
            value_lists = self._walk_paths_batch(
                [documents[entity_id] for entity_id in ids], condition.path
            )
            ids = [
                entity_id
                for entity_id, values in zip(ids, value_lists)
                if self._match_values(values, condition.operator, condition.value)
            ]
        return ids

    def _equality_match_ids(
        self, predicate: str, target: object, candidate_ids: set[str]
    ) -> set[str]:
        """Candidates that *may* satisfy ``predicate = target``, via postings.

        Unions the postings of every equality probe, plus — because a string
        value may match by resolving to an entity whose *name* equals the
        target — the postings of every entity id so named.  The result is a
        superset of the true match set by construction; the caller verifies
        each survivor with the exact per-document condition.
        """
        inverted = self.index.inverted
        superset: set[str] = set()
        for probe in _equality_probes(target):
            superset |= inverted.value_postings(predicate, probe)
            if predicate == "name":
                superset |= inverted.exact_name_postings(probe)
            for named_id in inverted.exact_name_postings(probe):
                reference_key = normalize_string(named_id)
                superset |= inverted.value_postings(predicate, reference_key)
                if predicate == "name":
                    superset |= inverted.exact_name_postings(reference_key)
        return superset & candidate_ids

    # -------------------------------------------------------------- #
    # latency statistics
    # -------------------------------------------------------------- #
    def latency_percentile(self, percentile: float = 95.0) -> float:
        """The given latency percentile (ms) over all executed queries."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        index = min(len(ordered) - 1, int(round(percentile / 100.0 * (len(ordered) - 1))))
        return ordered[index]

    # -------------------------------------------------------------- #
    # operator implementations
    # -------------------------------------------------------------- #
    def _seed_candidates(self, plan: PhysicalPlan) -> list[LiveEntityDocument]:
        seed = plan.seed
        if isinstance(seed, TypeScan):
            return self.index.kv.by_type(seed.entity_type)
        if isinstance(seed, IndexLookup):
            predicate = seed.predicate_path[0]
            if predicate in ("name", "alias"):
                entity_ids = self.index.inverted.lookup_name(str(seed.value))
            else:
                entity_ids = self.index.inverted.lookup_value(predicate, seed.value)
            documents = [self.index.get(entity_id) for entity_id in sorted(entity_ids)]
            return [document for document in documents if document is not None]
        raise KGQPlanError(f"unknown seed operator {seed!r}")

    def _evaluate_condition(self, document: LiveEntityDocument, condition) -> bool:
        values = self._walk_path(document, condition.path)
        return self._match_values(values, condition.operator, condition.value)

    def _match_values(self, values: list[object], operator: str, target: object) -> bool:
        for value in values:
            if operator == "=" and self._equal(value, target):
                return True
            if operator == "!=" and not self._equal(value, target):
                return True
            if operator == "CONTAINS" and normalize_string(target) in normalize_string(value):
                return True
            if operator in ("<", ">"):
                try:
                    left, right = float(value), float(target)  # type: ignore[arg-type]
                except (TypeError, ValueError):
                    continue
                if operator == "<" and left < right:
                    return True
                if operator == ">" and left > right:
                    return True
        return False

    def _project(self, document: LiveEntityDocument, plan: PhysicalPlan) -> QueryResultRow:
        row = QueryResultRow(entity_id=document.entity_id)
        returns = plan.project.returns
        if not returns or any(len(path) == 0 for path in returns):
            row.values["name"] = document.name
            for predicate, values in document.facts.items():
                row.values[predicate] = values[0] if len(values) == 1 else list(values)
            for predicate, reference in document.references.items():
                row.values.setdefault(predicate, self._display(reference))
            return row
        for path in returns:
            values = self._walk_path(document, path, resolve_names=True)
            column = ".".join(path)
            if not values:
                row.values[column] = None
            elif len(values) == 1:
                row.values[column] = values[0]
            else:
                row.values[column] = values
        return row

    def _project_batch(
        self, documents: list[LiveEntityDocument], plan: PhysicalPlan
    ) -> list[QueryResultRow]:
        """Batch form of :func:`_project`: one display/walk batch per column."""
        returns = plan.project.returns
        if not returns or any(len(path) == 0 for path in returns):
            display = self._display_map(
                {reference for document in documents for reference in document.references.values()}
            )
            rows = []
            for document in documents:
                row = QueryResultRow(entity_id=document.entity_id)
                row.values["name"] = document.name
                for predicate, values in document.facts.items():
                    row.values[predicate] = values[0] if len(values) == 1 else list(values)
                for predicate, reference in document.references.items():
                    row.values.setdefault(predicate, display.get(reference, reference))
                rows.append(row)
            return rows
        rows = [QueryResultRow(entity_id=document.entity_id) for document in documents]
        for path in returns:
            column = ".".join(path)
            value_lists = self._walk_paths_batch(documents, path, resolve_names=True)
            for row, values in zip(rows, value_lists):
                if not values:
                    row.values[column] = None
                elif len(values) == 1:
                    row.values[column] = values[0]
                else:
                    row.values[column] = values
        return rows

    # -------------------------------------------------------------- #
    # path traversal
    # -------------------------------------------------------------- #
    def _walk_path(
        self, document: LiveEntityDocument, path: tuple[str, ...], resolve_names: bool = False
    ) -> list[object]:
        current: list[object] = [document]
        for depth, predicate in enumerate(path):
            next_values: list[object] = []
            for item in current:
                doc = self._as_document(item)
                if doc is None:
                    # An unresolved reference is a raw text mention; treat the
                    # text itself as its display name so queries still work.
                    if predicate == "name" and isinstance(item, str):
                        next_values.append(item)
                    continue
                if predicate == "name" and doc.name:
                    next_values.append(doc.name)
                    continue
                next_values.extend(doc.values(predicate))
            current = next_values
            if not current:
                return []
        if resolve_names:
            return [self._display(value) for value in current]
        return current

    def _walk_paths_batch(
        self,
        documents: list[LiveEntityDocument],
        path: tuple[str, ...],
        resolve_names: bool = False,
    ) -> list[list[object]]:
        """Walk *path* from every document at once: one ``get_many`` per hop.

        Returns one value list per input document, each identical to
        ``_walk_path(document, path, resolve_names)``.
        """
        frontiers: list[list[object]] = [[document] for document in documents]
        for predicate in path:
            pending = {
                item
                for frontier in frontiers
                for item in frontier
                if isinstance(item, str)
            }
            resolved = self.index.get_many(pending) if pending else {}
            for position, frontier in enumerate(frontiers):
                next_values: list[object] = []
                for item in frontier:
                    if isinstance(item, LiveEntityDocument):
                        doc = item
                    elif isinstance(item, str):
                        doc = resolved.get(item)
                        if doc is None:
                            if predicate == "name":
                                next_values.append(item)
                            continue
                    else:
                        continue
                    if predicate == "name" and doc.name:
                        next_values.append(doc.name)
                        continue
                    next_values.extend(doc.values(predicate))
                frontiers[position] = next_values
        if resolve_names:
            display = self._display_map(
                {item for frontier in frontiers for item in frontier if isinstance(item, str)}
            )
            return [
                [display.get(item, item) if isinstance(item, str) else item for item in frontier]
                for frontier in frontiers
            ]
        return frontiers

    def _display_map(self, references: Iterable[str]) -> dict[str, object]:
        """Batched `_display`: reference id -> display name where one exists."""
        pending = set(references)
        if not pending:
            return {}
        resolved = self.index.get_many(pending)
        return {
            reference: document.name if document.name else reference
            for reference, document in resolved.items()
        }

    def _as_document(self, value: object) -> LiveEntityDocument | None:
        if isinstance(value, LiveEntityDocument):
            return value
        if isinstance(value, str):
            return self.index.get(value)
        return None

    def _display(self, value: object) -> object:
        if isinstance(value, str):
            document = self.index.get(value)
            if document is not None and document.name:
                return document.name
        return value

    def _equal(self, value: object, target: object) -> bool:
        if isinstance(value, str) or isinstance(target, str):
            if normalize_string(value) == normalize_string(target):
                return True
            # An unresolved reference may still match by name.
            document = self._as_document(value) if isinstance(value, str) else None
            if document is not None:
                return normalize_string(document.name) == normalize_string(target)
            return False
        return value == target
