"""KGQ physical-plan execution over the live index (§4.2).

The executor evaluates plans produced by :class:`repro.live.planner.QueryPlanner`
against the :class:`repro.live.index.LiveIndex`: index seeds, traversal-based
filters, projection over multi-hop paths, limits, and a small result cache.
Query latencies are recorded so benchmarks can report the p95 figure the paper
quotes for the production deployment.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import KGQPlanError
from repro.live.index import LiveEntityDocument, LiveIndex
from repro.live.planner import IndexLookup, PhysicalPlan, TypeScan
from repro.ml.similarity import normalize_string


@dataclass
class QueryResultRow:
    """One result row: the matched entity plus its projected values."""

    entity_id: str
    values: dict[str, object] = field(default_factory=dict)


@dataclass
class QueryResult:
    """Execution output plus timing metadata."""

    rows: list[QueryResultRow] = field(default_factory=list)
    latency_ms: float = 0.0
    from_cache: bool = False
    candidates_examined: int = 0

    def first_value(self, column: str | None = None) -> object | None:
        """Convenience: the first projected value of the first row."""
        if not self.rows:
            return None
        row = self.rows[0]
        if column is not None:
            return row.values.get(column)
        return next(iter(row.values.values()), None)


class QueryCache:
    """Tiny LRU cache keyed by rendered query text."""

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[str, list[QueryResultRow]] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> list[QueryResultRow] | None:
        """Cached rows for *key*, refreshing recency."""
        rows = self._entries.get(key)
        if rows is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return rows

    def put(self, key: str, rows: list[QueryResultRow]) -> None:
        """Insert rows for *key*, evicting the least-recently-used entry."""
        self._entries[key] = rows
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate(self) -> None:
        """Drop every cached result (called after live updates)."""
        self._entries.clear()


def merge_partial_results(
    plan: PhysicalPlan, partials: Sequence[QueryResult]
) -> QueryResult:
    """Gather-side merge of fragment results into one query result.

    Rows are unioned, deduplicated by entity id (first fragment wins — with
    disjoint partitions duplicates never occur, but a fallback re-dispatch may
    overlap), ordered by entity id to match the single-node executor's
    deterministic candidate order, and truncated to the plan's LIMIT.  The
    merged ``candidates_examined`` sums the fragments (total fleet work);
    ``latency_ms`` sums fragment latencies (the router stamps wall-clock on
    top), and ``from_cache`` is true only when every fragment was served from
    its replica's cache.
    """
    if len(partials) == 1:
        # Single-fragment fast path (point lookups, single-replica routes):
        # fragment rows are already entity-ordered and duplicate-free, so skip
        # the dict build and re-sort.
        examined = partials[0].candidates_examined
        latency = partials[0].latency_ms
        rows = list(partials[0].rows)
    else:
        by_entity: dict[str, QueryResultRow] = {}
        examined = 0
        latency = 0.0
        for partial in partials:
            examined += partial.candidates_examined
            latency += partial.latency_ms
            for row in partial.rows:
                by_entity.setdefault(row.entity_id, row)
        rows = [by_entity[entity_id] for entity_id in sorted(by_entity)]
    if plan.limit is not None:
        rows = rows[: plan.limit.limit]
    return QueryResult(
        rows=rows,
        latency_ms=latency,
        from_cache=bool(partials) and all(partial.from_cache for partial in partials),
        candidates_examined=examined,
    )


class QueryExecutor:
    """Execute physical plans against the live index."""

    def __init__(self, index: LiveIndex, cache: QueryCache | None = None) -> None:
        self.index = index
        self.cache = cache or QueryCache()
        self.latencies_ms: list[float] = []

    # -------------------------------------------------------------- #
    # execution
    # -------------------------------------------------------------- #
    def execute(
        self,
        plan: PhysicalPlan,
        use_cache: bool = True,
        scope: Callable[[LiveEntityDocument], bool] | None = None,
        scope_key: str = "",
    ) -> QueryResult:
        """Run *plan* and return its result rows with timing.

        *scope* (when given) restricts execution to the documents it accepts,
        applied right after seeding and before any condition work — this is
        how a plan fragment confines a replica to its own partition of a view
        feed.  ``candidates_examined`` counts in-scope candidates only, so the
        figure shows the work this executor actually did.  *scope_key* must
        uniquely identify the scope for result caching; scoped executions with
        an empty key bypass the cache rather than poison it.
        """
        cache_key = plan.query.render()
        if scope is not None:
            if not scope_key:
                use_cache = False
            cache_key = f"{cache_key} |{scope_key}"
        started = time.perf_counter()
        if use_cache:
            cached = self.cache.get(cache_key)
            if cached is not None:
                latency = (time.perf_counter() - started) * 1000.0
                self.latencies_ms.append(latency)
                return QueryResult(rows=list(cached), latency_ms=latency, from_cache=True)

        candidates = self._seed_candidates(plan)
        if scope is not None:
            candidates = [document for document in candidates if scope(document)]
        examined = len(candidates)
        survivors = []
        for document in candidates:
            if document.entity_type and plan.query.entity_type and (
                document.entity_type != plan.query.entity_type
            ):
                continue
            if all(self._evaluate_condition(document, f.condition) for f in plan.filters):
                survivors.append(document)
                if plan.limit is not None and len(survivors) >= plan.limit.limit and not plan.filters:
                    break

        if plan.limit is not None:
            survivors = survivors[: plan.limit.limit]
        rows = [self._project(document, plan) for document in survivors]
        latency = (time.perf_counter() - started) * 1000.0
        self.latencies_ms.append(latency)
        if use_cache:
            self.cache.put(cache_key, rows)
        return QueryResult(
            rows=rows, latency_ms=latency, from_cache=False, candidates_examined=examined
        )

    def invalidate_cache(self) -> None:
        """Invalidate cached results after live-index updates."""
        self.cache.invalidate()

    # -------------------------------------------------------------- #
    # latency statistics
    # -------------------------------------------------------------- #
    def latency_percentile(self, percentile: float = 95.0) -> float:
        """The given latency percentile (ms) over all executed queries."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        index = min(len(ordered) - 1, int(round(percentile / 100.0 * (len(ordered) - 1))))
        return ordered[index]

    # -------------------------------------------------------------- #
    # operator implementations
    # -------------------------------------------------------------- #
    def _seed_candidates(self, plan: PhysicalPlan) -> list[LiveEntityDocument]:
        seed = plan.seed
        if isinstance(seed, TypeScan):
            return self.index.kv.by_type(seed.entity_type)
        if isinstance(seed, IndexLookup):
            predicate = seed.predicate_path[0]
            if predicate in ("name", "alias"):
                entity_ids = self.index.inverted.lookup_name(str(seed.value))
            else:
                entity_ids = self.index.inverted.lookup_value(predicate, seed.value)
            documents = [self.index.get(entity_id) for entity_id in sorted(entity_ids)]
            return [document for document in documents if document is not None]
        raise KGQPlanError(f"unknown seed operator {seed!r}")

    def _evaluate_condition(self, document: LiveEntityDocument, condition) -> bool:
        values = self._walk_path(document, condition.path)
        operator = condition.operator
        target = condition.value
        for value in values:
            if operator == "=" and self._equal(value, target):
                return True
            if operator == "!=" and not self._equal(value, target):
                return True
            if operator == "CONTAINS" and normalize_string(target) in normalize_string(value):
                return True
            if operator in ("<", ">"):
                try:
                    left, right = float(value), float(target)  # type: ignore[arg-type]
                except (TypeError, ValueError):
                    continue
                if operator == "<" and left < right:
                    return True
                if operator == ">" and left > right:
                    return True
        return False

    def _project(self, document: LiveEntityDocument, plan: PhysicalPlan) -> QueryResultRow:
        row = QueryResultRow(entity_id=document.entity_id)
        returns = plan.project.returns
        if not returns or any(len(path) == 0 for path in returns):
            row.values["name"] = document.name
            for predicate, values in document.facts.items():
                row.values[predicate] = values[0] if len(values) == 1 else list(values)
            for predicate, reference in document.references.items():
                row.values.setdefault(predicate, self._display(reference))
            return row
        for path in returns:
            values = self._walk_path(document, path, resolve_names=True)
            column = ".".join(path)
            if not values:
                row.values[column] = None
            elif len(values) == 1:
                row.values[column] = values[0]
            else:
                row.values[column] = values
        return row

    # -------------------------------------------------------------- #
    # path traversal
    # -------------------------------------------------------------- #
    def _walk_path(
        self, document: LiveEntityDocument, path: tuple[str, ...], resolve_names: bool = False
    ) -> list[object]:
        current: list[object] = [document]
        for depth, predicate in enumerate(path):
            next_values: list[object] = []
            for item in current:
                doc = self._as_document(item)
                if doc is None:
                    # An unresolved reference is a raw text mention; treat the
                    # text itself as its display name so queries still work.
                    if predicate == "name" and isinstance(item, str):
                        next_values.append(item)
                    continue
                if predicate == "name" and doc.name:
                    next_values.append(doc.name)
                    continue
                next_values.extend(doc.values(predicate))
            current = next_values
            if not current:
                return []
        if resolve_names:
            return [self._display(value) for value in current]
        return current

    def _as_document(self, value: object) -> LiveEntityDocument | None:
        if isinstance(value, LiveEntityDocument):
            return value
        if isinstance(value, str):
            return self.index.get(value)
        return None

    def _display(self, value: object) -> object:
        if isinstance(value, str):
            document = self.index.get(value)
            if document is not None and document.name:
                return document.name
        return value

    def _equal(self, value: object, target: object) -> bool:
        if isinstance(value, str) or isinstance(target, str):
            if normalize_string(value) == normalize_string(target):
                return True
            # An unresolved reference may still match by name.
            document = self._as_document(value) if isinstance(value, str) else None
            if document is not None:
                return normalize_string(document.name) == normalize_string(target)
            return False
        return value == target
