"""KGQ: the live graph query language (Section 4.2).

KGQ is a deliberately restricted graph query language: expressive enough to
capture the semantics of natural-language questions arriving from the search
front end (entity search with traversal constraints, property retrieval over
multi-hop paths), but bounded so that every query compiles to a plan with
predictable cost.  The language also supports *virtual operators*: named,
reusable expansions registered by clients that encapsulate complex expressions.

Grammar (informally)::

    query      := match_query | call_query
    match_query:= 'MATCH' type_name
                  ('WHERE' condition ('AND' condition)*)?
                  ('REACH' rpq_expr ('TO' type_name)?)?
                  ('RETURN' return_item (',' return_item)*)?
                  ('LIMIT' integer)?
    call_query := 'CALL' name '(' argument (',' argument)* ')'
    condition  := path operator literal
    path       := identifier ('.' identifier)*
    operator   := '=' | '!=' | '<' | '>' | 'CONTAINS'
    return_item:= path | '*'
    literal    := "double-quoted string" | number | bareword
    rpq_expr   := rpq_concat ('|' rpq_concat)*
    rpq_concat := rpq_postfix ('/' rpq_postfix)*
    rpq_postfix:= rpq_atom ('*' | '+')*
    rpq_atom   := '^'? identifier | '(' rpq_expr ')'

The REACH clause is a **regular path query** (RPQ): a regex over edge labels.
The matched entities become path seeds, the expression is compiled into an
automaton (:mod:`repro.live.rpq`), and the answers are every entity reachable
over a label sequence the expression accepts — alternation ``|``,
concatenation ``/``, closure ``*``/``+``, and ``^label`` for traversing an
edge backwards.  ``TO type`` bounds the answers to one entity type (required
for type-sliced tenants).  Every answer row carries the concrete edge
sequence proving reachability (its provenance witness path).

Examples::

    MATCH country WHERE name = "Canada" RETURN head_of_state.name
    MATCH sports_game WHERE home_team.name CONTAINS "Wolves" RETURN home_score, away_score
    MATCH district WHERE name = "Old Town" REACH part_of* TO region RETURN name
    MATCH person WHERE name = "Ada" REACH mentor/(knows|^knows)+ TO person RETURN name
    CALL HeadOfState("Canada")
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import KGQSyntaxError

KEYWORDS = {"MATCH", "WHERE", "AND", "REACH", "TO", "RETURN", "LIMIT", "CALL", "CONTAINS"}
OPERATORS = {"=", "!=", "<", ">", "CONTAINS"}

_TOKEN_PATTERN = re.compile(
    r"""
    (?P<string>"[^"]*")
  | (?P<number>-?\d+(\.\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>!=|=|<|>)
  | (?P<dot>\.)
  | (?P<comma>,)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<star>\*)
  | (?P<plus>\+)
  | (?P<pipe>\|)
  | (?P<slash>/)
  | (?P<caret>\^)
  | (?P<space>\s+)
""",
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str
    value: str
    position: int


def tokenize(text: str) -> list[Token]:
    """Tokenize a KGQ query string."""
    tokens: list[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            raise KGQSyntaxError(f"unexpected character {text[position]!r} at position {position}")
        kind = match.lastgroup or ""
        value = match.group()
        if kind != "space":
            tokens.append(Token(kind=kind, value=value, position=position))
        position = match.end()
    return tokens


@dataclass(frozen=True)
class Condition:
    """One traversal constraint: ``path operator value``."""

    path: tuple[str, ...]
    operator: str
    value: object

    def render(self) -> str:
        """Render back to KGQ text."""
        value = f'"{self.value}"' if isinstance(self.value, str) else str(self.value)
        return f"{'.'.join(self.path)} {self.operator} {value}"


# ------------------------------------------------------------------ #
# regular path expressions (the REACH clause)
# ------------------------------------------------------------------ #
@dataclass(frozen=True)
class RpqLabel:
    """One edge label; ``inverse`` traverses the edge backwards (``^label``)."""

    predicate: str
    inverse: bool = False

    def render(self) -> str:
        """Render back to REACH syntax."""
        return ("^" if self.inverse else "") + self.predicate


@dataclass(frozen=True)
class RpqConcat:
    """Concatenation: the parts must match in sequence (``a/b``)."""

    parts: tuple["RpqExpr", ...]

    def render(self) -> str:
        """Render back to REACH syntax (alternation children need parens)."""
        return "/".join(
            f"({part.render()})" if isinstance(part, RpqAlt) else part.render()
            for part in self.parts
        )


@dataclass(frozen=True)
class RpqAlt:
    """Alternation: any option may match (``a|b``)."""

    options: tuple["RpqExpr", ...]

    def render(self) -> str:
        """Render back to REACH syntax."""
        return "|".join(option.render() for option in self.options)


def _render_closed(expr: "RpqExpr") -> str:
    return expr.render() if isinstance(expr, RpqLabel) else f"({expr.render()})"


@dataclass(frozen=True)
class RpqStar:
    """Kleene closure: zero or more matches of the inner expression."""

    inner: "RpqExpr"

    def render(self) -> str:
        """Render back to REACH syntax."""
        return _render_closed(self.inner) + "*"


@dataclass(frozen=True)
class RpqPlus:
    """Positive closure: one or more matches of the inner expression."""

    inner: "RpqExpr"

    def render(self) -> str:
        """Render back to REACH syntax."""
        return _render_closed(self.inner) + "+"


RpqExpr = RpqLabel | RpqConcat | RpqAlt | RpqStar | RpqPlus


@dataclass
class Query:
    """Parsed MATCH query."""

    entity_type: str
    conditions: list[Condition] = field(default_factory=list)
    returns: list[tuple[str, ...]] = field(default_factory=list)   # () means '*'
    limit: int | None = None
    reach: RpqExpr | None = None       # REACH expression (regular path query)
    reach_type: str = ""               # TO type bound ("" = unbounded)

    def render(self) -> str:
        """Render back to KGQ text (useful for caching and logging)."""
        parts = [f"MATCH {self.entity_type}"]
        if self.conditions:
            parts.append("WHERE " + " AND ".join(c.render() for c in self.conditions))
        if self.reach is not None:
            parts.append(f"REACH {self.reach.render()}")
            if self.reach_type:
                parts.append(f"TO {self.reach_type}")
        if self.returns:
            rendered = ", ".join("*" if not path else ".".join(path) for path in self.returns)
            parts.append(f"RETURN {rendered}")
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)


@dataclass(frozen=True)
class CallQuery:
    """Parsed CALL of a virtual operator."""

    operator: str
    arguments: tuple[object, ...]


class Parser:
    """Recursive-descent parser for KGQ."""

    def __init__(self, tokens: Sequence[Token]) -> None:
        self._tokens = list(tokens)
        self._index = 0

    # ---- helpers -------------------------------------------------- #
    def _peek(self) -> Token | None:
        return self._tokens[self._index] if self._index < len(self._tokens) else None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise KGQSyntaxError("unexpected end of query")
        self._index += 1
        return token

    def _expect_keyword(self, keyword: str) -> Token:
        token = self._next()
        if token.kind != "ident" or token.value.upper() != keyword:
            raise KGQSyntaxError(f"expected {keyword}, got {token.value!r}")
        return token

    def _is_keyword(self, token: Token | None, keyword: str) -> bool:
        return token is not None and token.kind == "ident" and token.value.upper() == keyword

    # ---- grammar -------------------------------------------------- #
    def parse(self) -> Query | CallQuery:
        """Parse the token stream into a query object."""
        token = self._peek()
        if token is None:
            raise KGQSyntaxError("empty query")
        if self._is_keyword(token, "CALL"):
            return self._parse_call()
        return self._parse_match()

    def _parse_call(self) -> CallQuery:
        self._expect_keyword("CALL")
        name_token = self._next()
        if name_token.kind != "ident":
            raise KGQSyntaxError(f"expected operator name, got {name_token.value!r}")
        open_token = self._next()
        if open_token.kind != "lparen":
            raise KGQSyntaxError("expected '(' after virtual operator name")
        arguments: list[object] = []
        while True:
            token = self._next()
            if token.kind == "rparen":
                break
            if token.kind == "comma":
                continue
            arguments.append(self._literal_value(token))
        self._assert_consumed()
        return CallQuery(operator=name_token.value, arguments=tuple(arguments))

    def _parse_match(self) -> Query:
        self._expect_keyword("MATCH")
        type_token = self._next()
        if type_token.kind != "ident":
            raise KGQSyntaxError(f"expected entity type, got {type_token.value!r}")
        query = Query(entity_type=type_token.value)

        token = self._peek()
        if self._is_keyword(token, "WHERE"):
            self._next()
            query.conditions.append(self._parse_condition())
            while self._is_keyword(self._peek(), "AND"):
                self._next()
                query.conditions.append(self._parse_condition())

        if self._is_keyword(self._peek(), "REACH"):
            self._next()
            query.reach = self._parse_rpq_expression()
            if self._is_keyword(self._peek(), "TO"):
                self._next()
                type_token = self._next()
                if type_token.kind != "ident":
                    raise KGQSyntaxError(
                        f"expected an entity type after TO, got {type_token.value!r}"
                    )
                query.reach_type = type_token.value

        if self._is_keyword(self._peek(), "RETURN"):
            self._next()
            query.returns.append(self._parse_return_item())
            while self._peek() is not None and self._peek().kind == "comma":
                self._next()
                query.returns.append(self._parse_return_item())

        if self._is_keyword(self._peek(), "LIMIT"):
            self._next()
            number = self._next()
            if number.kind != "number":
                raise KGQSyntaxError(f"expected a number after LIMIT, got {number.value!r}")
            query.limit = int(float(number.value))

        self._assert_consumed()
        return query

    def _parse_condition(self) -> Condition:
        path = self._parse_path()
        op_token = self._next()
        if op_token.kind == "op":
            operator = op_token.value
        elif self._is_keyword(op_token, "CONTAINS"):
            operator = "CONTAINS"
        else:
            raise KGQSyntaxError(f"expected an operator, got {op_token.value!r}")
        value_token = self._next()
        return Condition(path=path, operator=operator, value=self._literal_value(value_token))

    # ---- REACH expressions (regular path queries) ------------------ #
    def _parse_rpq_expression(self) -> RpqExpr:
        options = [self._parse_rpq_concat()]
        while self._peek() is not None and self._peek().kind == "pipe":
            self._next()
            options.append(self._parse_rpq_concat())
        return options[0] if len(options) == 1 else RpqAlt(tuple(options))

    def _parse_rpq_concat(self) -> RpqExpr:
        parts = [self._parse_rpq_postfix()]
        while self._peek() is not None and self._peek().kind == "slash":
            self._next()
            parts.append(self._parse_rpq_postfix())
        return parts[0] if len(parts) == 1 else RpqConcat(tuple(parts))

    def _parse_rpq_postfix(self) -> RpqExpr:
        expr = self._parse_rpq_atom()
        while self._peek() is not None and self._peek().kind in ("star", "plus"):
            token = self._next()
            expr = RpqStar(expr) if token.kind == "star" else RpqPlus(expr)
        return expr

    def _parse_rpq_atom(self) -> RpqExpr:
        token = self._peek()
        if token is None:
            raise KGQSyntaxError("unexpected end of REACH expression")
        if token.kind == "lparen":
            self._next()
            expr = self._parse_rpq_expression()
            closing = self._next()
            if closing.kind != "rparen":
                raise KGQSyntaxError(
                    f"expected ')' in REACH expression, got {closing.value!r}"
                )
            return expr
        inverse = False
        if token.kind == "caret":
            self._next()
            inverse = True
        label = self._next()
        if label.kind != "ident":
            raise KGQSyntaxError(f"expected an edge label in REACH, got {label.value!r}")
        return RpqLabel(predicate=label.value, inverse=inverse)

    def _parse_return_item(self) -> tuple[str, ...]:
        token = self._peek()
        if token is not None and token.kind == "star":
            self._next()
            return ()
        return self._parse_path()

    def _parse_path(self) -> tuple[str, ...]:
        token = self._next()
        if token.kind != "ident":
            raise KGQSyntaxError(f"expected a predicate, got {token.value!r}")
        segments = [token.value]
        while self._peek() is not None and self._peek().kind == "dot":
            self._next()
            segment = self._next()
            if segment.kind != "ident":
                raise KGQSyntaxError(f"expected a predicate after '.', got {segment.value!r}")
            segments.append(segment.value)
        return tuple(segments)

    def _literal_value(self, token: Token) -> object:
        if token.kind == "string":
            return token.value[1:-1]
        if token.kind == "number":
            number = float(token.value)
            return int(number) if number.is_integer() else number
        if token.kind == "ident":
            return token.value
        raise KGQSyntaxError(f"expected a literal, got {token.value!r}")

    def _assert_consumed(self) -> None:
        token = self._peek()
        if token is not None:
            raise KGQSyntaxError(f"unexpected trailing input at {token.value!r}")


def parse(text: str) -> Query | CallQuery:
    """Parse a KGQ query string."""
    return Parser(tokenize(text)).parse()


VirtualOperator = Callable[..., Query]


class VirtualOperatorRegistry:
    """Registry of reusable virtual operators (KGQ extensibility)."""

    def __init__(self) -> None:
        self._operators: dict[str, VirtualOperator] = {}

    def register(self, name: str, expansion: VirtualOperator) -> None:
        """Register *expansion* under *name* (case-insensitive)."""
        self._operators[name.lower()] = expansion

    def expand(self, call: CallQuery) -> Query:
        """Expand a CALL query into the underlying MATCH query."""
        expansion = self._operators.get(call.operator.lower())
        if expansion is None:
            raise KGQSyntaxError(f"unknown virtual operator {call.operator!r}")
        return expansion(*call.arguments)

    def names(self) -> list[str]:
        """Registered operator names."""
        return sorted(self._operators)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._operators


def default_virtual_operators() -> VirtualOperatorRegistry:
    """Virtual operators used by the QA examples and benchmarks."""
    registry = VirtualOperatorRegistry()
    registry.register(
        "HeadOfState",
        lambda country: Query(
            entity_type="country",
            conditions=[Condition(("name",), "=", country)],
            returns=[("head_of_state", "name")],
        ),
    )
    registry.register(
        "MayorOf",
        lambda city: Query(
            entity_type="city",
            conditions=[Condition(("name",), "=", city)],
            returns=[("mayor", "name")],
        ),
    )
    registry.register(
        "SpouseOf",
        lambda person: Query(
            entity_type="person",
            conditions=[Condition(("name",), "=", person)],
            returns=[("spouse", "name")],
        ),
    )
    registry.register(
        "GameScore",
        lambda team: Query(
            entity_type="sports_game",
            conditions=[Condition(("home_team", "name"), "CONTAINS", team)],
            returns=[("name",), ("home_score",), ("away_score",), ("game_status",)],
        ),
    )
    registry.register(
        "StockPrice",
        lambda ticker: Query(
            entity_type="stock",
            conditions=[Condition(("ticker",), "=", ticker)],
            returns=[("stock_price",)],
        ),
    )
    return registry
