"""Live KG indexes: sharded key-value store plus inverted graph index (§4.1).

The live KG is indexed with two structures optimized for low-latency retrieval
under high concurrency: a key-value store holding the full document of every
live (and stable-view) entity, and an inverted index from names / literal
values to entity identifiers for entity search.  Both are sharded by key hash
and can be replicated; replication here is a read-only copy mechanism used to
model scale-out and failover in tests.
"""

from __future__ import annotations

import hashlib
import json
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.engine.metadata import WatermarkMap
from repro.errors import LiveGraphError
from repro.hashing import stable_hash
from repro.live.rpq import AdjacencyIndex
from repro.ml.similarity import normalize_string, tokens

#: Shared immutable empty postings set (avoids allocating on every miss).
_EMPTY_IDS: frozenset[str] = frozenset()


@dataclass
class LiveEntityDocument:
    """The serving document of one entity in the live KG."""

    entity_id: str
    entity_type: str = ""
    name: str = ""
    facts: dict[str, list[object]] = field(default_factory=dict)
    references: dict[str, str] = field(default_factory=dict)   # predicate -> entity id
    source_id: str = ""
    timestamp: int = 0
    is_live: bool = False       # True for streaming entities, False for stable-view entities

    def value(self, predicate: str) -> object | None:
        """First value of *predicate* (falls back to references)."""
        values = self.facts.get(predicate)
        if values:
            return values[0]
        return self.references.get(predicate)

    def values(self, predicate: str) -> list[object]:
        """All values of *predicate*, including a reference if present."""
        values = list(self.facts.get(predicate, []))
        if predicate in self.references:
            values.append(self.references[predicate])
        return values

    def merge_update(self, other: "LiveEntityDocument") -> None:
        """Apply a newer document for the same entity (streaming upsert)."""
        if other.timestamp < self.timestamp:
            return
        self.name = other.name or self.name
        self.entity_type = other.entity_type or self.entity_type
        for predicate, values in other.facts.items():
            self.facts[predicate] = list(values)
        self.references.update(other.references)
        self.source_id = other.source_id or self.source_id
        self.timestamp = other.timestamp
        self.is_live = self.is_live or other.is_live


class GraphKVStore:
    """Sharded key-value store of live entity documents.

    Shard placement uses :func:`repro.hashing.stable_hash` — the same
    process-stable function the serving tier's consistent-hash ring uses —
    never Python's per-process-salted ``hash``, so the shard layout of a
    given key set is byte-identical across runs, interpreters, and
    ``PYTHONHASHSEED`` values.  That determinism is what lets shard layouts
    be asserted in tests and, once replication crosses process boundaries,
    lets two processes agree on placement without a handshake.

    Reads go through a flat document mirror (one dict lookup, no hashing);
    the shards hold the authoritative layout.  A per-type partition index
    serves :meth:`by_type` / :meth:`ids_by_type` in time proportional to the
    partition instead of scanning every shard — the entry point the
    vectorized KGQ executor seeds type scans from.
    """

    def __init__(self, num_shards: int = 4) -> None:
        if num_shards <= 0:
            raise LiveGraphError("the KV store needs at least one shard")
        self.num_shards = num_shards
        self._shards: list[dict[str, LiveEntityDocument]] = [dict() for _ in range(num_shards)]
        self._documents: dict[str, LiveEntityDocument] = {}
        # entity_type -> ids; "" holds untyped documents.
        self._by_type: dict[str, set[str]] = defaultdict(set)
        self.reads = 0
        self.writes = 0

    def _shard_of(self, key: str) -> dict[str, LiveEntityDocument]:
        return self._shards[stable_hash(key) % self.num_shards]

    def put(self, document: LiveEntityDocument) -> None:
        """Insert or merge-update a document."""
        existing = self._documents.get(document.entity_id)
        if existing is None:
            self._shard_of(document.entity_id)[document.entity_id] = document
            self._documents[document.entity_id] = document
            self._by_type[document.entity_type].add(document.entity_id)
        else:
            old_type = existing.entity_type
            existing.merge_update(document)
            if existing.entity_type != old_type:
                self._discard_type(old_type, document.entity_id)
                self._by_type[existing.entity_type].add(document.entity_id)
        self.writes += 1

    def _discard_type(self, entity_type: str, entity_id: str) -> None:
        partition = self._by_type.get(entity_type)
        if partition is not None:
            partition.discard(entity_id)
            if not partition:
                del self._by_type[entity_type]

    def get(self, entity_id: str) -> LiveEntityDocument | None:
        """Point lookup by entity id."""
        self.reads += 1
        return self._documents.get(entity_id)

    def get_many(self, entity_ids: Iterable[str]) -> dict[str, LiveEntityDocument]:
        """Batched point lookups: one read operation, missing ids omitted.

        The batch entry point of the vectorized executor — candidate id sets
        resolve to documents in a single pass over the flat mirror instead of
        one counted read (and one shard hash) per id.
        """
        self.reads += 1
        documents = self._documents
        found: dict[str, LiveEntityDocument] = {}
        for entity_id in entity_ids:
            document = documents.get(entity_id)
            if document is not None:
                found[entity_id] = document
        return found

    def delete(self, entity_id: str) -> bool:
        """Remove a document; returns ``True`` when it existed."""
        document = self._documents.pop(entity_id, None)
        if document is None:
            return False
        self._shard_of(entity_id).pop(entity_id, None)
        self._discard_type(document.entity_type, entity_id)
        return True

    def by_type(self, entity_type: str) -> list[LiveEntityDocument]:
        """All documents of one entity type, ordered by entity id.

        Served from the type partition index — cost is proportional to the
        partition, not the store.
        """
        self.reads += 1
        documents = self._documents
        return [documents[entity_id] for entity_id in sorted(self._by_type.get(entity_type, ()))]

    def ids_by_type(self, entity_type: str) -> set[str]:
        """The id partition of one entity type (read-only view — do not mutate).

        ``""`` addresses the untyped partition.  Returned without copying so
        the executor can intersect candidate sets against it; callers must
        treat it as frozen.
        """
        return self._by_type.get(entity_type, _EMPTY_IDS)  # type: ignore[return-value]

    def shard_sizes(self) -> list[int]:
        """Document count per shard (used to verify sharding balance)."""
        return [len(shard) for shard in self._shards]

    def replicate(self) -> "GraphKVStore":
        """Produce a read replica with the same contents."""
        replica = GraphKVStore(self.num_shards)
        for document in self:
            replica.put(
                LiveEntityDocument(
                    entity_id=document.entity_id,
                    entity_type=document.entity_type,
                    name=document.name,
                    facts={k: list(v) for k, v in document.facts.items()},
                    references=dict(document.references),
                    source_id=document.source_id,
                    timestamp=document.timestamp,
                    is_live=document.is_live,
                )
            )
        return replica

    def __iter__(self) -> Iterator[LiveEntityDocument]:
        for shard in self._shards:
            yield from shard.values()

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, entity_id: object) -> bool:
        return isinstance(entity_id, str) and self.get(entity_id) is not None


class InvertedGraphIndex:
    """Inverted index from tokens of names / literal values to entity ids."""

    def __init__(self) -> None:
        self._name_postings: dict[str, set[str]] = defaultdict(set)
        self._exact_names: dict[str, set[str]] = defaultdict(set)
        self._value_postings: dict[tuple[str, str], set[str]] = defaultdict(set)
        # Reverse map: entity id -> (name tokens, exact names, value keys) it
        # is posted under, so re-indexing a document touches only its own
        # postings instead of scanning the whole index.
        self._doc_keys: dict[str, tuple[set[str], set[str], set[tuple[str, str]]]] = {}
        self.lookups = 0

    def index_document(self, document: LiveEntityDocument) -> None:
        """Index (or re-index) one entity document."""
        self.remove(document.entity_id)
        name_tokens: set[str] = set()
        exact_names: set[str] = set()
        value_keys: set[tuple[str, str]] = set()
        names = [document.name, *[str(v) for v in document.facts.get("alias", [])]]
        for name in names:
            normalized = normalize_string(name)
            if not normalized:
                continue
            self._exact_names[normalized].add(document.entity_id)
            exact_names.add(normalized)
            for token in tokens(normalized):
                self._name_postings[token].add(document.entity_id)
                name_tokens.add(token)
        for predicate, values in document.facts.items():
            for value in values:
                key = (predicate, normalize_string(value))
                self._value_postings[key].add(document.entity_id)
                value_keys.add(key)
        for predicate, reference in document.references.items():
            key = (predicate, normalize_string(reference))
            self._value_postings[key].add(document.entity_id)
            value_keys.add(key)
        self._doc_keys[document.entity_id] = (name_tokens, exact_names, value_keys)

    def remove(self, entity_id: str) -> None:
        """Drop an entity from all postings it is listed under."""
        keys = self._doc_keys.pop(entity_id, None)
        if keys is None:
            return
        name_tokens, exact_names, value_keys = keys
        for token in name_tokens:
            postings = self._name_postings.get(token)
            if postings is not None:
                postings.discard(entity_id)
                if not postings:
                    del self._name_postings[token]
        for name in exact_names:
            postings = self._exact_names.get(name)
            if postings is not None:
                postings.discard(entity_id)
                if not postings:
                    del self._exact_names[name]
        for key in value_keys:
            postings = self._value_postings.get(key)
            if postings is not None:
                postings.discard(entity_id)
                if not postings:
                    del self._value_postings[key]

    def lookup_name(self, name: str) -> set[str]:
        """Entity ids whose name matches *name* exactly (normalized)."""
        self.lookups += 1
        return set(self._exact_names.get(normalize_string(name), set()))

    def search_name_tokens(self, query: str) -> set[str]:
        """Entity ids containing every token of *query* in their names."""
        self.lookups += 1
        query_tokens = tokens(query)
        if not query_tokens:
            return set()
        results: set[str] | None = None
        for token in query_tokens:
            posting = self._name_postings.get(token, set())
            results = posting if results is None else results & posting
            if not results:
                return set()
        return set(results or set())

    def lookup_value(self, predicate: str, value: object) -> set[str]:
        """Entity ids with ``predicate = value`` (normalized string match)."""
        self.lookups += 1
        return set(self._value_postings.get((predicate, normalize_string(value)), set()))

    # -------------------------------------------------------------- #
    # raw postings (vectorized executor entry points)
    # -------------------------------------------------------------- #
    def value_postings(self, predicate: str, normalized_value: str) -> set[str]:
        """The raw ``(predicate, normalized value)`` postings set, uncopied.

        Unlike :meth:`lookup_value` this takes an already-normalized value,
        does not copy, and does not count a lookup — it is the executor's
        set-intersection primitive, called once per equality probe per
        condition.  Callers must treat the result as frozen.
        """
        return self._value_postings.get((predicate, normalized_value), _EMPTY_IDS)  # type: ignore[return-value]

    def exact_name_postings(self, normalized_name: str) -> set[str]:
        """The raw exact-name postings set, uncopied (read-only view)."""
        return self._exact_names.get(normalized_name, _EMPTY_IDS)  # type: ignore[return-value]


def view_row_documents(
    view_name: str,
    feed: str,
    rows: Iterable[dict],
    version: int,
    entity_type: str = "view_row",
) -> list[LiveEntityDocument]:
    """Turn a batch of row-shaped view rows into serving documents.

    Documents are keyed ``{view_name}:{subject}`` so several views may serve
    rows about the same KG entity side by side; ``version`` (the LSN the rows
    reflect) becomes the document timestamp.  Shared by the live engine's
    view feeds and the replicated serving fleet, which must agree
    byte-for-byte on how a shipped row is served.  Batch form: one call per
    shipment group instead of one per row, so replicas apply shipments
    without per-row function dispatch.
    """
    prefix = view_name + ":"
    documents: list[LiveEntityDocument] = []
    for row in rows:
        types = row.get("types") or []
        facts = {
            key: list(value) if isinstance(value, (list, tuple)) else [value]
            for key, value in row.items()
            if key not in ("subject", "name", "types") and value not in (None, "")
        }
        documents.append(
            LiveEntityDocument(
                entity_id=prefix + str(row["subject"]),
                entity_type=str(types[0]) if types else entity_type,
                name=str(row.get("name", "")),
                facts=facts,
                source_id=feed,
                timestamp=version,
                is_live=False,
            )
        )
    return documents


def view_row_document(
    view_name: str, feed: str, row: dict, version: int, entity_type: str = "view_row"
) -> LiveEntityDocument:
    """Single-row convenience form of :func:`view_row_documents`."""
    return view_row_documents(view_name, feed, (row,), version, entity_type)[0]


def document_checksum(document: LiveEntityDocument) -> str:
    """Content digest of one serving document (anti-entropy comparison unit).

    Covers the fields that determine what a reader sees — id, type, name,
    facts, references — and deliberately excludes ``timestamp`` and
    ``source_id``: the same row shipped in different batches (snapshot vs
    delta, different LSNs) must still hash identically on every replica.

    Always recomputed from the document: anti-entropy exists to catch silent
    in-place corruption, so the digest must never be cached on the object it
    is auditing.
    """
    canonical = json.dumps(
        [
            document.entity_id,
            document.entity_type,
            document.name,
            {k: document.facts[k] for k in sorted(document.facts)},
            {k: document.references[k] for k in sorted(document.references)},
        ],
        sort_keys=True,
        default=str,
        separators=(",", ":"),
    )
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=8).hexdigest()


class LiveIndex:
    """The KV store and inverted index maintained together.

    ``watermarks`` track, per upstream feed (the stable view, each served
    view artifact), the Graph Engine log position (LSN) the loaded documents
    reflect — the same freshness currency the engine's metadata store uses —
    so refreshes can be skipped when the upstream has not advanced.  Feeds
    loaded through :meth:`replace_feed` / :meth:`apply_feed_delta` (the
    replica-backed serving path) additionally track which document ids each
    feed serves, so a replaced or dropped feed unserves vanished rows.
    """

    def __init__(self, num_shards: int = 4) -> None:
        self.kv = GraphKVStore(num_shards)
        self.inverted = InvertedGraphIndex()
        #: Per-feed, per-predicate compressed adjacency for REACH (RPQ)
        #: evaluation — maintained in lockstep with the postings, so shipped
        #: deltas invalidate it on the same code path.
        self.adjacency = AdjacencyIndex()
        self.watermarks = WatermarkMap()
        self._feed_documents: dict[str, set[str]] = {}

    def set_watermark(self, feed: str, lsn: int) -> None:
        """Record that *feed*'s documents reflect the upstream log up to *lsn*."""
        self.watermarks.advance(feed, lsn)

    def watermark(self, feed: str) -> int:
        """The upstream LSN *feed* currently serves (0 when never loaded)."""
        return self.watermarks.of(feed)

    def is_fresh(self, feed: str, required_lsn: int) -> bool:
        """Whether *feed* serves at least upstream version *required_lsn*."""
        return self.watermark(feed) >= required_lsn

    def upsert(self, document: LiveEntityDocument) -> None:
        """Insert or update a document in both structures."""
        self.kv.put(document)
        merged = self.kv.get(document.entity_id)
        if merged is not None:
            self.inverted.index_document(merged)
            self.adjacency.index_document(merged)

    def replace(self, document: LiveEntityDocument) -> None:
        """Authoritatively replace a document, discarding any prior state.

        Unlike :meth:`upsert` (which merge-updates streaming documents), a
        replace serves feeds whose rows are the whole truth — view artifacts —
        so predicates dropped from a row do not survive the reload.  KV-level
        delete suffices: the subsequent upsert re-indexes the document, which
        already clears its old postings.
        """
        self.kv.delete(document.entity_id)
        self.upsert(document)

    def delete_many(self, entity_ids: Iterable[str]) -> int:
        """Delete several documents; returns how many actually existed."""
        return sum(1 for entity_id in entity_ids if self.delete(entity_id))

    def upsert_many(self, documents: Iterable[LiveEntityDocument]) -> int:
        """Upsert several documents; returns how many were written."""
        count = 0
        for document in documents:
            self.upsert(document)
            count += 1
        return count

    # -------------------------------------------------------------- #
    # feed-tracked serving (replica-backed reads)
    # -------------------------------------------------------------- #
    def feed_documents(self, feed: str) -> set[str]:
        """Document ids currently served for *feed* (feed-tracked loads only)."""
        return set(self._feed_documents.get(feed, set()))

    def replace_feed(
        self, feed: str, documents: Iterable[LiveEntityDocument], lsn: int
    ) -> int:
        """Authoritatively replace every document of *feed* (snapshot load).

        Documents that vanished from the feed stop being served; the feed's
        watermark advances to *lsn*.  Returns the number of documents written.
        """
        fresh_ids: set[str] = set()
        written = 0
        for document in documents:
            self.replace(document)
            fresh_ids.add(document.entity_id)
            written += 1
        self.delete_many(self._feed_documents.get(feed, set()) - fresh_ids)
        self._feed_documents[feed] = fresh_ids
        self.watermarks.advance(feed, lsn)
        return written

    def apply_feed_delta(
        self,
        feed: str,
        upserts: Iterable[LiveEntityDocument],
        deleted_ids: Iterable[str],
        lsn: int,
    ) -> int:
        """Apply one incremental feed delta (journal catch-up load).

        Returns the number of documents written; deletions that were not
        being served are no-ops.
        """
        served = self._feed_documents.setdefault(feed, set())
        written = 0
        for document in upserts:
            self.replace(document)
            served.add(document.entity_id)
            written += 1
        for doc_id in deleted_ids:
            self.delete(doc_id)
            served.discard(doc_id)
        self.watermarks.advance(feed, lsn)
        return written

    def drop_feed(self, feed: str) -> int:
        """Stop serving *feed* entirely; returns how many documents left."""
        removed = self.delete_many(self._feed_documents.pop(feed, set()))
        self.watermarks.pop(feed, None)
        return removed

    def delete(self, entity_id: str) -> bool:
        """Delete a document from both structures."""
        self.inverted.remove(entity_id)
        self.adjacency.remove(entity_id)
        return self.kv.delete(entity_id)

    def get(self, entity_id: str) -> LiveEntityDocument | None:
        """Point lookup by entity id."""
        return self.kv.get(entity_id)

    def get_many(self, entity_ids: Iterable[str]) -> dict[str, LiveEntityDocument]:
        """Batched point lookups (one counted read; missing ids omitted)."""
        return self.kv.get_many(entity_ids)

    def seed_selectivity(self, predicate: str, value: object) -> int:
        """Estimated candidate count of seeding from ``predicate = value``.

        Exact postings sizes, read without copying — the planner uses this to
        seed from the cheapest pushable condition.  Name-shaped predicates
        read the exact-name postings (what :class:`QueryExecutor`'s
        ``IndexLookup`` resolves through); everything else reads the value
        postings.
        """
        normalized = normalize_string(value)
        if predicate in ("name", "alias"):
            return len(self.inverted.exact_name_postings(normalized))
        return len(self.inverted.value_postings(predicate, normalized))

    def __len__(self) -> int:
        return len(self.kv)
