"""KGQ query compilation: logical query → physical execution plan (§4.2).

The planner applies the two execution optimizations the paper calls out:

* **operator push-down** — equality conditions on names or single-hop literal
  predicates are pushed into the inverted graph index, so execution starts
  from a small candidate set instead of a type scan;
* **bounded traversal** — multi-hop paths compile into explicit traversal
  operators over the KV store, so plan cost is proportional to the candidate
  set times the path length (KGQ's restricted expressiveness guarantees this).

For distributed execution a compiled plan can additionally be split into
**plan fragments**: the same operator list scoped to one partition of the
subject hash space, executed replica-side against a view shard and merged by
the scatter-gather router (see :mod:`repro.serving.query_router`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import KGQPlanError
from repro.live.kgq import CallQuery, Condition, Query, RpqExpr, VirtualOperatorRegistry
from repro.live.rpq import Automaton, compile_automaton, single_label_closure


@dataclass(frozen=True)
class IndexLookup:
    """Seed the candidate set from the inverted index (pushed-down condition)."""

    predicate_path: tuple[str, ...]
    operator: str
    value: object

    def describe(self) -> str:
        """Human-readable operator description (used in EXPLAIN output)."""
        return f"IndexLookup({'.'.join(self.predicate_path)} {self.operator} {self.value!r})"


@dataclass(frozen=True)
class TypeScan:
    """Seed the candidate set with every live document of the query's type."""

    entity_type: str

    def describe(self) -> str:
        """Human-readable operator description."""
        return f"TypeScan({self.entity_type})"


@dataclass(frozen=True)
class FilterOp:
    """Evaluate one traversal condition against each candidate document."""

    condition: Condition

    def describe(self) -> str:
        """Human-readable operator description."""
        return f"Filter({self.condition.render()})"


@dataclass(frozen=True)
class ProjectOp:
    """Project the requested return paths from each surviving document."""

    returns: tuple[tuple[str, ...], ...]

    def describe(self) -> str:
        """Human-readable operator description."""
        rendered = ", ".join("*" if not path else ".".join(path) for path in self.returns) or "*"
        return f"Project({rendered})"


@dataclass(frozen=True)
class LimitOp:
    """Stop after the first *n* results."""

    limit: int

    def describe(self) -> str:
        """Human-readable operator description."""
        return f"Limit({self.limit})"


@dataclass(frozen=True)
class ReachOp:
    """Expand the surviving candidates along a compiled RPQ automaton.

    The REACH expression is compiled once, at plan time, into an epsilon-free
    :class:`~repro.live.rpq.Automaton`; evaluation is then a product
    construction over the adjacency bitmaps (see :class:`~repro.live.rpq.
    RpqEvaluator`).  ``closure`` marks single-label closures (``part_of*``)
    eligible for the interval-encoding fast path.  ``target_type`` restricts
    the answers to one entity type (the ``TO`` clause) — empty means any.
    """

    expression: RpqExpr
    target_type: str
    automaton: Automaton
    closure: tuple[str, bool, bool] | None = None

    def describe(self) -> str:
        """Human-readable operator description."""
        target = f" TO {self.target_type}" if self.target_type else ""
        fast = ", interval-eligible" if self.closure is not None else ""
        return (
            f"Reach({self.expression.render()}{target}, "
            f"states={self.automaton.num_states}{fast})"
        )


@dataclass
class PhysicalPlan:
    """Ordered operator list produced by the planner."""

    query: Query
    seed: IndexLookup | TypeScan = None  # type: ignore[assignment]
    filters: list[FilterOp] = field(default_factory=list)
    project: ProjectOp = ProjectOp(())
    limit: LimitOp | None = None
    reach: ReachOp | None = None

    def explain(self) -> list[str]:
        """EXPLAIN-style rendering of the plan."""
        steps = [self.seed.describe()]
        steps.extend(op.describe() for op in self.filters)
        if self.reach is not None:
            steps.append(self.reach.describe())
        steps.append(self.project.describe())
        if self.limit is not None:
            steps.append(self.limit.describe())
        return steps


@dataclass(frozen=True)
class PlanFragment:
    """One partition-scoped slice of a physical plan (distributed execution).

    ``ranges`` bounds the subject hash space this fragment covers, as
    ``(low, high]`` intervals over the stable 64-bit subject hash; the plan's
    operators are shared by every fragment (the query is compiled once).
    ``owner`` names the replica the fragment was assigned to — informational
    for the fragment itself, load-bearing for the router's bookkeeping.
    """

    plan: PhysicalPlan
    view_name: str
    ranges: tuple[tuple[int, int], ...]
    owner: str = ""

    def covers(self, subject_hash: int) -> bool:
        """Whether this fragment's partition contains *subject_hash*."""
        return any(low < subject_hash <= high for low, high in self.ranges)

    def intersect(self, ranges: tuple[tuple[int, int], ...]) -> "PlanFragment":
        """This fragment restricted to the overlap with *ranges*.

        Used when a partition is re-dispatched after its owner died: the
        replacement fragment must cover only the dead owner's share of the
        hash space, never re-execute partitions already gathered.  The result
        may have empty ``ranges`` (no overlap) — callers drop those.
        """
        overlap: list[tuple[int, int]] = []
        for mine_low, mine_high in self.ranges:
            for other_low, other_high in ranges:
                low, high = max(mine_low, other_low), min(mine_high, other_high)
                if low < high:
                    overlap.append((low, high))
        return PlanFragment(
            plan=self.plan,
            view_name=self.view_name,
            ranges=tuple(sorted(overlap)),
            owner=self.owner,
        )

    def cache_key(self) -> str:
        """Stable per-partition key, composed into the executor cache key."""
        digest = hashlib.blake2b(digest_size=8)
        for low, high in self.ranges:
            digest.update(f"{low}:{high};".encode("ascii"))
        return f"{self.view_name}@{digest.hexdigest()}"

    def describe(self) -> str:
        """Human-readable fragment description (used in EXPLAIN output)."""
        return (
            f"Fragment(view={self.view_name}, owner={self.owner or '?'}, "
            f"ranges={len(self.ranges)})"
        )


def plan_scope(plan: PhysicalPlan) -> frozenset[str]:
    """The entity types a plan's candidate set can draw from.

    KGQ's restricted expressiveness makes the scope decidable at plan time:
    every candidate comes from the MATCH type's partition (a TypeScan seeds
    from it directly; an IndexLookup seed is still gated by the type filter
    during execution), so the scope is exactly the query's entity type.
    Multi-tenant serving uses this to enforce a tenant's KG slice *before*
    any replica sees a fragment — see
    :class:`repro.serving.frontdoor.TenantRegistry`.

    A REACH clause widens the scope: answers carry the ``TO`` type when one
    was given, and the sentinel ``"*"`` otherwise — an unbounded REACH can
    surface any entity type, so a type-sliced tenant must name a ``TO`` type
    inside their slice.
    """
    entity_type = plan.query.entity_type
    scope = {entity_type} if entity_type else set()
    if plan.reach is not None:
        scope.add(plan.reach.target_type or "*")
    return frozenset(scope)


def ensure_plan_within_types(
    plan: PhysicalPlan, allowed_types: frozenset[str] | None
) -> None:
    """Raise :class:`~repro.errors.KGQPlanError` when *plan* leaves *allowed_types*.

    ``None`` means the caller's slice is the whole KG (no restriction); an
    empty set forbids every typed query.  Used by tenant-scoped planning so
    the refusal happens at plan time, with the offending type named.
    """
    if allowed_types is None:
        return
    outside = plan_scope(plan) - allowed_types
    if outside:
        if "*" in outside:
            raise KGQPlanError(
                "a REACH without a TO type can surface any entity type; "
                "type-sliced callers must bound it with TO "
                f"(allowed: {sorted(allowed_types)})"
            )
        raise KGQPlanError(
            f"plan touches entity types outside the allowed slice: "
            f"{sorted(outside)} (allowed: {sorted(allowed_types)})"
        )


def extract_fragments(
    plan: PhysicalPlan,
    view_name: str,
    partitions: dict[str, list[tuple[int, int]]],
) -> list[PlanFragment]:
    """Split one compiled plan into per-partition fragments.

    *partitions* maps an owner (replica name) to the hash ranges it covers;
    owners with no ranges are skipped.  The fragments share the plan object —
    fragment extraction never re-plans.
    """
    return [
        PlanFragment(plan=plan, view_name=view_name, ranges=tuple(ranges), owner=owner)
        for owner, ranges in sorted(partitions.items())
        if ranges
    ]


class QueryPlanner:
    """Compile parsed KGQ queries into physical plans."""

    #: Conditions on these single-hop predicates can seed from the name index.
    NAME_PREDICATES = ("name", "alias")

    def __init__(
        self,
        virtual_operators: VirtualOperatorRegistry | None = None,
        selectivity: "Callable[[str, object], int] | None" = None,
    ) -> None:
        self.virtual_operators = virtual_operators or VirtualOperatorRegistry()
        #: Optional ``(predicate, value) -> estimated candidate count`` — the
        #: live index's postings sizes.  When wired, the seed choice is
        #: cost-based: the smallest postings list seeds.
        self.selectivity = selectivity

    def plan(self, query: Query | CallQuery) -> PhysicalPlan:
        """Compile *query* (expanding virtual operators first)."""
        if isinstance(query, CallQuery):
            query = self.virtual_operators.expand(query)
        if not query.entity_type:
            raise KGQPlanError("a MATCH query needs an entity type")

        seed, remaining = self._choose_seed(query)
        reach = None
        if query.reach is not None:
            reach = ReachOp(
                expression=query.reach,
                target_type=query.reach_type,
                automaton=compile_automaton(query.reach),
                closure=single_label_closure(query.reach),
            )
        plan = PhysicalPlan(
            query=query,
            seed=seed,
            filters=[FilterOp(condition) for condition in remaining],
            project=ProjectOp(tuple(query.returns)),
            limit=LimitOp(query.limit) if query.limit is not None else None,
            reach=reach,
        )
        return plan

    def _choose_seed(
        self, query: Query
    ) -> tuple[IndexLookup | TypeScan, list[Condition]]:
        """Pick the most selective pushable condition as the index seed.

        With a :attr:`selectivity` estimator the choice is cost-based: every
        single-hop equality condition is scored by its estimated postings
        size and the smallest seeds (ties prefer name-shaped predicates, then
        query order).  Without one, the legacy heuristic applies — the first
        pushable condition wins, name equality preferred.
        """
        pushable_index = None
        if self.selectivity is not None:
            best_cost: tuple[int, int, int] | None = None
            for index, condition in enumerate(query.conditions):
                if condition.operator != "=" or len(condition.path) != 1:
                    continue
                cost = (
                    self.selectivity(condition.path[0], condition.value),
                    0 if condition.path[0] in self.NAME_PREDICATES else 1,
                    index,
                )
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    pushable_index = index
            if pushable_index is None:
                return TypeScan(query.entity_type), list(query.conditions)
            chosen = query.conditions[pushable_index]
            remaining = [c for i, c in enumerate(query.conditions) if i != pushable_index]
            return (
                IndexLookup(
                    predicate_path=chosen.path, operator=chosen.operator, value=chosen.value
                ),
                remaining,
            )
        for index, condition in enumerate(query.conditions):
            if condition.operator != "=":
                continue
            if len(condition.path) == 1:
                pushable_index = index
                # Name equality is the most selective seed we have; stop looking.
                if condition.path[0] in self.NAME_PREDICATES:
                    break
        if pushable_index is None:
            return TypeScan(query.entity_type), list(query.conditions)
        chosen = query.conditions[pushable_index]
        remaining = [c for i, c in enumerate(query.conditions) if i != pushable_index]
        return (
            IndexLookup(predicate_path=chosen.path, operator=chosen.operator, value=chosen.value),
            remaining,
        )
