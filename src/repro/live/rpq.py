"""Regular path query evaluation over compressed adjacency bitmaps.

This module gives the KGQ REACH clause (:mod:`repro.live.kgq`) its runtime:

* **Automaton compilation** — a REACH expression compiles through a Thompson
  construction into an epsilon-free NFA (:func:`compile_automaton`), so
  evaluation is a product construction over (node, automaton-state) pairs and
  never re-interprets the regex.
* **Per-predicate compressed adjacency** — :class:`AdjacencyIndex` maintains,
  per feed and per edge label, forward and reverse adjacency rows as packed
  bitsets (arbitrary-precision ints over dense node ordinals), kept
  incrementally consistent by :class:`~repro.live.index.LiveIndex` on every
  upsert/replace/delete — shipped view deltas invalidate adjacency exactly
  like they invalidate postings.
* **Provenance witnesses** — evaluation is a provenance semiring over edge
  sequences: *times* is path concatenation, *plus* keeps the canonical
  (shortest, then lexicographically least) witness.  Every answer therefore
  carries one concrete edge sequence ``(src, label, dst), ...`` proving
  reachability, and the canonical choice is independent of evaluation order —
  which is what lets distributed scatter-gather rounds reproduce the primary's
  witnesses bit for bit.
* **Interval encoding** — for tree-shaped predicates (``part_of``-style
  ontologies) a pre/post-order interval index (the XPath-accelerator idiom)
  turns single-label closures (``p*``, ``^p+``, ...) into parent-chain walks
  and preorder range scans instead of iteration to fixpoint.  The index is
  rebuilt lazily and invalidated by a per-feed mutation counter, so a shipped
  delta always drops the stale encoding.
* **Naive BFS reference** — :func:`naive_rpq` re-derives the edge relation by
  scanning documents and runs a plain set-based BFS; it is the oracle the
  seeded equivalence suite (and the BENCH_RPQ gate) compares against.

The round-based frontier protocol (:func:`expand_product_entries`,
:func:`merge_frontier`, :func:`accepting_answers`) is shared verbatim between
the local evaluator, :class:`~repro.serving.replica.ReplicaNode` expansion,
and the :class:`~repro.serving.query_router.QueryRouter` fixpoint loop.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.live.kgq import RpqAlt, RpqConcat, RpqExpr, RpqLabel, RpqPlus, RpqStar

#: One provenance witness: a tuple of (src, rendered label, dst) edge triples.
Witness = tuple[tuple[str, str, str], ...]

#: One frontier entry of the product BFS: (node, automaton state, witness).
FrontierEntry = tuple[str, int, Witness]


# ------------------------------------------------------------------ #
# automaton compilation (Thompson construction, epsilon-eliminated)
# ------------------------------------------------------------------ #
class Automaton:
    """Epsilon-free NFA over edge labels, compiled from a REACH expression.

    ``transitions`` maps each state to its outgoing ``(predicate, inverse,
    next_state)`` edges; states are numbered compactly in a deterministic
    BFS order from ``start``, so the same expression compiles to the same
    automaton in every process — a requirement for distributed evaluation,
    where primary and replicas must agree on state identity.
    """

    __slots__ = ("start", "accepting", "transitions", "num_states")

    def __init__(
        self,
        start: int,
        accepting: frozenset[int],
        transitions: dict[int, tuple[tuple[str, bool, int], ...]],
        num_states: int,
    ) -> None:
        self.start = start
        self.accepting = accepting
        self.transitions = transitions
        self.num_states = num_states

    def matches_empty(self) -> bool:
        """Whether the expression accepts the zero-length path (seeds answer)."""
        return self.start in self.accepting


class _NfaBuilder:
    """Thompson construction: one (start, end) fragment per sub-expression."""

    def __init__(self) -> None:
        self.count = 0
        self.edges: list[tuple[int, str, bool, int]] = []
        self.epsilon: list[tuple[int, int]] = []

    def state(self) -> int:
        state = self.count
        self.count += 1
        return state

    def build(self, expr: RpqExpr) -> tuple[int, int]:
        if isinstance(expr, RpqLabel):
            start, end = self.state(), self.state()
            self.edges.append((start, expr.predicate, expr.inverse, end))
            return start, end
        if isinstance(expr, RpqConcat):
            start, end = self.build(expr.parts[0])
            for part in expr.parts[1:]:
                part_start, part_end = self.build(part)
                self.epsilon.append((end, part_start))
                end = part_end
            return start, end
        if isinstance(expr, RpqAlt):
            start, end = self.state(), self.state()
            for option in expr.options:
                option_start, option_end = self.build(option)
                self.epsilon.append((start, option_start))
                self.epsilon.append((option_end, end))
            return start, end
        if isinstance(expr, (RpqStar, RpqPlus)):
            start, end = self.state(), self.state()
            inner_start, inner_end = self.build(expr.inner)
            self.epsilon.append((start, inner_start))
            self.epsilon.append((inner_end, end))
            self.epsilon.append((inner_end, inner_start))      # loop back
            if isinstance(expr, RpqStar):
                self.epsilon.append((start, end))              # zero matches
            return start, end
        raise TypeError(f"unknown RPQ expression node {expr!r}")


def compile_automaton(expr: RpqExpr) -> Automaton:
    """Compile a REACH expression into an epsilon-free :class:`Automaton`."""
    builder = _NfaBuilder()
    start, accept = builder.build(expr)

    # Epsilon closures by fixpoint over the (small) state set.
    closures = [{state} for state in range(builder.count)]
    changed = True
    while changed:
        changed = False
        for source, target in builder.epsilon:
            for closure in closures:
                if source in closure and target not in closure:
                    closure.add(target)
                    changed = True

    # Epsilon elimination: delta'(q, a) = closure(delta(closure(q), a)),
    # accepting'(q) iff closure(q) touches the accept state.
    by_source: dict[int, set[tuple[str, bool, int]]] = {}
    for source, predicate, inverse, target in builder.edges:
        for state in range(builder.count):
            if source in closures[state]:
                outgoing = by_source.setdefault(state, set())
                for landed in sorted(closures[target]):
                    outgoing.add((predicate, inverse, landed))

    # Keep only states reachable from the start, renumbered in BFS order
    # (edges explored in sorted label order) for cross-process determinism.
    order: dict[int, int] = {start: 0}
    queue = [start]
    while queue:
        state = queue.pop(0)
        for predicate, inverse, target in sorted(by_source.get(state, ())):
            if target not in order:
                order[target] = len(order)
                queue.append(target)
    transitions = {
        order[state]: tuple(
            (predicate, inverse, order[target])
            for predicate, inverse, target in sorted(by_source.get(state, ()))
            if target in order
        )
        for state in order
    }
    accepting = frozenset(
        order[state] for state in order if accept in closures[state]
    )
    return Automaton(
        start=0,
        accepting=accepting,
        transitions={state: edges for state, edges in transitions.items() if edges},
        num_states=len(order),
    )


def single_label_closure(expr: RpqExpr) -> tuple[str, bool, bool] | None:
    """``(predicate, inverse, include_zero)`` when *expr* is ``label*``/``label+``.

    These are the closures the interval encoding can answer with range scans
    (``part_of*`` ancestry, ``^part_of+`` proper descendants); anything else
    returns ``None`` and evaluates through the automaton product.
    """
    if isinstance(expr, RpqStar) and isinstance(expr.inner, RpqLabel):
        return (expr.inner.predicate, expr.inner.inverse, True)
    if isinstance(expr, RpqPlus) and isinstance(expr.inner, RpqLabel):
        return (expr.inner.predicate, expr.inner.inverse, False)
    return None


# ------------------------------------------------------------------ #
# edge extraction (the shared definition of the edge relation)
# ------------------------------------------------------------------ #
def document_feed_node(document) -> tuple[str, str]:
    """The ``(feed key, node id)`` a document contributes edges under.

    View-feed documents (``source_id = "view:X"``, keyed ``X:subject``) are
    graphed in subject space under their feed, so replicas and a primary that
    loaded the same feed build identical graphs; everything else belongs to
    the global live graph (feed ``""``) under its entity id.
    """
    source = document.source_id
    if source.startswith("view:"):
        prefix = source[5:] + ":"
        entity_id = document.entity_id
        node = entity_id[len(prefix):] if entity_id.startswith(prefix) else entity_id
        return source, node
    return "", document.entity_id


def document_edges(document) -> list[tuple[str, str]]:
    """The labeled out-edges one document asserts: ``(predicate, target)``.

    An edge exists for every non-empty string fact value and every reference
    — the same value space :meth:`LiveEntityDocument.values` exposes to KGQ
    path traversal, deduplicated and predicate-sorted for determinism.
    """
    edges: list[tuple[str, str]] = []
    seen: set[tuple[str, str]] = set()
    for predicate in sorted(set(document.facts) | set(document.references)):
        for value in document.values(predicate):
            if not isinstance(value, str) or not value:
                continue
            edge = (predicate, value)
            if edge not in seen:
                seen.add(edge)
                edges.append(edge)
    return edges


# ------------------------------------------------------------------ #
# compressed adjacency (packed bitsets over dense node ordinals)
# ------------------------------------------------------------------ #
def _iter_bits(bitmap: int) -> Iterator[int]:
    """Set-bit positions of a packed bitset, ascending."""
    while bitmap:
        low = bitmap & -bitmap
        yield low.bit_length() - 1
        bitmap ^= low


class _FeedGraph:
    """One feed's labeled graph: interned nodes + per-predicate bitmap rows."""

    __slots__ = ("ids", "names", "forward", "reverse", "doc_edges", "mutations")

    def __init__(self) -> None:
        self.ids: dict[str, int] = {}
        self.names: list[str] = []
        # predicate -> source ordinal -> bitset of target ordinals (and back).
        self.forward: dict[str, dict[int, int]] = {}
        self.reverse: dict[str, dict[int, int]] = {}
        # document id -> (source ordinal, its recorded (predicate, target) edges)
        self.doc_edges: dict[str, tuple[int, tuple[tuple[str, int], ...]]] = {}
        self.mutations = 0

    def intern(self, node: str) -> int:
        ordinal = self.ids.get(node)
        if ordinal is None:
            ordinal = len(self.names)
            self.ids[node] = ordinal
            self.names.append(node)
        return ordinal


class IntervalIndex:
    """Pre/post-order interval encoding of one tree-shaped predicate.

    The XPath-accelerator idiom: a DFS over the forest assigns every node a
    preorder number (``pre``) and the maximum preorder in its subtree
    (``end``), so the descendants of ``x`` are exactly the contiguous slice
    ``order[pre[x] : end[x] + 1]`` — ancestry becomes a range scan, and the
    parent map answers ancestor chains without touching bitmap rows.
    """

    __slots__ = ("parent", "pre", "end", "order")

    def __init__(
        self,
        parent: dict[int, int],
        pre: dict[int, int],
        end: dict[int, int],
        order: list[int],
    ) -> None:
        self.parent = parent
        self.pre = pre
        self.end = end
        self.order = order

    def descendants(self, ordinal: int) -> list[int]:
        """Every node in *ordinal*'s subtree (itself included), one slice."""
        position = self.pre.get(ordinal)
        if position is None:
            return []
        return self.order[position : self.end[ordinal] + 1]


def _build_interval_index(graph: _FeedGraph, predicate: str) -> IntervalIndex | None:
    """Interval-encode *predicate* when its edges form a forest, else ``None``.

    Forest-shaped means functional (every node at most one out-edge) and
    acyclic; DFS order is by node name so the encoding is process-stable.
    """
    rows = graph.forward.get(predicate, {})
    parent: dict[int, int] = {}
    nodes: set[int] = set()
    for source, bitmap in rows.items():
        targets = list(_iter_bits(bitmap))
        if len(targets) != 1:
            return None                       # a node with two parents: not a tree
        parent[source] = targets[0]
        nodes.add(source)
        nodes.add(targets[0])
    children: dict[int, list[int]] = {}
    for child, node_parent in parent.items():
        children.setdefault(node_parent, []).append(child)
    roots = sorted(
        (node for node in nodes if node not in parent),
        key=lambda node: graph.names[node],
    )
    pre: dict[int, int] = {}
    end: dict[int, int] = {}
    order: list[int] = []
    for root in roots:
        stack: list[tuple[int, bool]] = [(root, False)]
        while stack:
            node, done = stack.pop()
            if done:
                end[node] = len(order) - 1
                continue
            pre[node] = len(order)
            order.append(node)
            stack.append((node, True))
            for child in sorted(
                children.get(node, ()), key=lambda c: graph.names[c], reverse=True
            ):
                stack.append((child, False))
    if len(order) != len(nodes):
        return None                           # a cycle kept some nodes off the forest
    return IntervalIndex(parent=parent, pre=pre, end=end, order=order)


class AdjacencyIndex:
    """Per-feed, per-predicate compressed adjacency, incrementally maintained.

    Mirrors the :class:`~repro.live.index.InvertedGraphIndex` maintenance
    discipline: ``index_document`` re-derives one document's edges (removing
    its previous contribution first, via the per-document reverse map), and
    ``remove`` clears exactly the bits that document set.  Interval encodings
    are derived state: any mutation of a feed bumps its mutation counter,
    and :meth:`interval_index` rebuilds lazily when its stamp is stale — so
    shipped view deltas invalidate the encoding exactly like postings.
    """

    def __init__(self) -> None:
        self._feeds: dict[str, _FeedGraph] = {}
        self._doc_feed: dict[str, str] = {}
        self._intervals: dict[tuple[str, str], tuple[int, IntervalIndex | None]] = {}
        self.interval_builds = 0

    def index_document(self, document) -> None:
        """Record (or re-record) one document's out-edges."""
        self.remove(document.entity_id)
        feed_key, node = document_feed_node(document)
        graph = self._feeds.get(feed_key)
        if graph is None:
            graph = self._feeds[feed_key] = _FeedGraph()
        source = graph.intern(node)
        recorded: list[tuple[str, int]] = []
        for predicate, target in document_edges(document):
            ordinal = graph.intern(target)
            row = graph.forward.setdefault(predicate, {})
            row[source] = row.get(source, 0) | (1 << ordinal)
            reverse_row = graph.reverse.setdefault(predicate, {})
            reverse_row[ordinal] = reverse_row.get(ordinal, 0) | (1 << source)
            recorded.append((predicate, ordinal))
        graph.doc_edges[document.entity_id] = (source, tuple(recorded))
        self._doc_feed[document.entity_id] = feed_key
        if recorded:
            graph.mutations += 1

    def remove(self, doc_id: str) -> None:
        """Clear every bit the document set (no-op when never indexed)."""
        feed_key = self._doc_feed.pop(doc_id, None)
        if feed_key is None:
            return
        graph = self._feeds[feed_key]
        source, recorded = graph.doc_edges.pop(doc_id, (0, ()))
        if not recorded:
            return
        for predicate, ordinal in recorded:
            row = graph.forward.get(predicate)
            if row is not None:
                remaining = row.get(source, 0) & ~(1 << ordinal)
                if remaining:
                    row[source] = remaining
                else:
                    row.pop(source, None)
                if not row:
                    del graph.forward[predicate]
            reverse_row = graph.reverse.get(predicate)
            if reverse_row is not None:
                remaining = reverse_row.get(ordinal, 0) & ~(1 << source)
                if remaining:
                    reverse_row[ordinal] = remaining
                else:
                    reverse_row.pop(ordinal, None)
                if not reverse_row:
                    del graph.reverse[predicate]
        graph.mutations += 1

    def graph(self, feed: str) -> _FeedGraph | None:
        """The raw feed graph (``None`` when the feed asserted no edges)."""
        return self._feeds.get(feed)

    def interval_index(self, feed: str, predicate: str) -> IntervalIndex | None:
        """The (lazily rebuilt) interval encoding, ``None`` when not a forest."""
        graph = self._feeds.get(feed)
        if graph is None:
            return None
        key = (feed, predicate)
        cached = self._intervals.get(key)
        if cached is not None and cached[0] == graph.mutations:
            return cached[1]
        built = _build_interval_index(graph, predicate)
        self._intervals[key] = (graph.mutations, built)
        self.interval_builds += 1
        return built

    def stats(self) -> dict[str, int]:
        """Size counters for introspection."""
        return {
            "feeds": len(self._feeds),
            "documents": len(self._doc_feed),
            "nodes": sum(len(graph.names) for graph in self._feeds.values()),
            "predicates": sum(len(graph.forward) for graph in self._feeds.values()),
            "interval_builds": self.interval_builds,
        }


# ------------------------------------------------------------------ #
# the shared round protocol (local, replica, and router use the same)
# ------------------------------------------------------------------ #
def expand_product_entries(
    graph: _FeedGraph | None, automaton: Automaton, entries: Iterable[FrontierEntry]
) -> list[FrontierEntry]:
    """One product-BFS step: every successor of every frontier entry.

    Successor sets come from the bitmap rows (forward for plain labels,
    reverse for ``^label``); each candidate's witness is the entry's witness
    *times* (concatenated with) the traversed edge.
    """
    candidates: list[FrontierEntry] = []
    if graph is None:
        return candidates
    names = graph.names
    for node, state, witness in entries:
        edges = automaton.transitions.get(state)
        if not edges:
            continue
        ordinal = graph.ids.get(node)
        if ordinal is None:
            continue
        for predicate, inverse, next_state in edges:
            rows = graph.reverse.get(predicate) if inverse else graph.forward.get(predicate)
            if not rows:
                continue
            bitmap = rows.get(ordinal)
            if not bitmap:
                continue
            label = ("^" + predicate) if inverse else predicate
            for target in _iter_bits(bitmap):
                target_name = names[target]
                candidates.append(
                    (target_name, next_state, witness + ((node, label, target_name),))
                )
    return candidates


def merge_frontier(
    visited: dict[tuple[str, int], Witness], candidates: Iterable[FrontierEntry]
) -> list[FrontierEntry]:
    """Semiring *plus* over one round: keep the least witness per new pair.

    Every candidate in a round has the same path length, so plain tuple
    comparison picks the lexicographically least witness — and because all
    shortest paths to a pair arrive in the same round (BFS), the survivor is
    the canonical witness regardless of candidate order.  Already-visited
    pairs are dropped (their canonical witness is shorter).  The new pairs
    are folded into *visited* and returned, sorted, as the next frontier.
    """
    best: dict[tuple[str, int], Witness] = {}
    for node, state, witness in candidates:
        key = (node, state)
        if key in visited:
            continue
        held = best.get(key)
        if held is None or witness < held:
            best[key] = witness
    visited.update(best)
    return [(node, state, witness) for (node, state), witness in sorted(best.items())]


def accepting_answers(
    visited: dict[tuple[str, int], Witness], accepting: frozenset[int]
) -> dict[str, Witness]:
    """Project visited pairs onto accepting states: node -> canonical witness.

    A node reached in several accepting states keeps the shortest witness,
    ties broken lexicographically — the same canonical choice the per-round
    merge makes.
    """
    answers: dict[str, Witness] = {}
    for (node, state), witness in visited.items():
        if state not in accepting:
            continue
        if node not in answers:
            answers[node] = witness
            continue
        held = answers[node]
        if (len(witness), witness) < (len(held), held):
            answers[node] = witness
    return answers


def initial_frontier(
    seeds: Iterable[str], automaton: Automaton
) -> tuple[dict[tuple[str, int], Witness], list[FrontierEntry]]:
    """Round-zero state: every seed at the start state with the empty witness."""
    ordered = sorted(set(seeds))
    visited = {(node, automaton.start): () for node in ordered}
    return visited, [(node, automaton.start, ()) for node in ordered]


# ------------------------------------------------------------------ #
# local evaluation
# ------------------------------------------------------------------ #
class RpqEvaluator:
    """Evaluate compiled REACH automata over an :class:`AdjacencyIndex`.

    Single-label closures over forest-shaped predicates take the interval
    fast path (parent-chain walks and preorder range scans — counted in
    ``interval_hits``); everything else runs the bitmap product BFS
    (``product_runs``).  Both produce identical answers and canonical
    witnesses; only the reported expansion count differs, because the fast
    path genuinely does less work.
    """

    def __init__(self, adjacency: AdjacencyIndex) -> None:
        self.adjacency = adjacency
        self.interval_hits = 0
        self.product_runs = 0

    def evaluate(
        self,
        feed: str,
        seeds: Iterable[str],
        automaton: Automaton,
        closure: tuple[str, bool, bool] | None = None,
    ) -> tuple[dict[str, Witness], int]:
        """All reachable ``node -> witness`` answers plus the expansion count.

        *closure* (from :func:`single_label_closure`) enables the interval
        fast path; it silently falls back to the product BFS when the
        predicate is not forest-shaped in this feed.
        """
        ordered = sorted(set(seeds))
        if closure is not None:
            fast = self._evaluate_closure(feed, ordered, closure)
            if fast is not None:
                self.interval_hits += 1
                return fast
        self.product_runs += 1
        return self._evaluate_product(feed, ordered, automaton)

    def _evaluate_product(
        self, feed: str, seeds: list[str], automaton: Automaton
    ) -> tuple[dict[str, Witness], int]:
        graph = self.adjacency.graph(feed)
        visited, frontier = initial_frontier(seeds, automaton)
        expanded = 0
        while frontier:
            expanded += len(frontier)
            candidates = expand_product_entries(graph, automaton, frontier)
            frontier = merge_frontier(visited, candidates)
        return accepting_answers(visited, automaton.accepting), expanded

    def _evaluate_closure(
        self, feed: str, seeds: list[str], closure: tuple[str, bool, bool]
    ) -> tuple[dict[str, Witness], int] | None:
        predicate, inverse, include_zero = closure
        graph = self.adjacency.graph(feed)
        if graph is None:
            return None
        interval = self.adjacency.interval_index(feed, predicate)
        if interval is None:
            return None
        label = ("^" + predicate) if inverse else predicate
        answers: dict[str, Witness] = {}
        steps = 0

        def offer(node: str, witness: Witness) -> None:
            if node not in answers:
                answers[node] = witness
                return
            held = answers[node]
            if (len(witness), witness) < (len(held), held):
                answers[node] = witness

        if not inverse:
            # Ancestry (`part_of*`): walk each seed's parent chain — the path
            # is unique in a forest, so it is the canonical witness.
            for seed in seeds:
                if include_zero:
                    offer(seed, ())
                witness: Witness = ()
                current = graph.ids.get(seed)
                name = seed
                while current is not None:
                    parent = interval.parent.get(current)
                    if parent is None:
                        break
                    parent_name = graph.names[parent]
                    witness = witness + ((name, label, parent_name),)
                    steps += 1
                    offer(parent_name, witness)
                    current, name = parent, parent_name
            return answers, steps

        # Descendants (`^part_of*`): one preorder range scan per seed, then
        # each reached node's witness is the unique chain down from its
        # nearest seed ancestor (nearest = shortest, hence canonical).
        seed_ordinals = {
            graph.ids[seed] for seed in seeds if seed in graph.ids
        }
        reached: set[int] = set()
        for seed in seeds:
            if include_zero:
                offer(seed, ())
            ordinal = graph.ids.get(seed)
            if ordinal is not None:
                reached.update(interval.descendants(ordinal))
        for ordinal in reached:
            name = graph.names[ordinal]
            if include_zero and ordinal in seed_ordinals:
                continue                      # already answered with ()
            chain: list[tuple[str, str, str]] = []
            current = ordinal
            found = False
            while True:
                parent = interval.parent.get(current)
                if parent is None:
                    break
                chain.append((graph.names[parent], label, graph.names[current]))
                steps += 1
                if parent in seed_ordinals:
                    found = True
                    break
                current = parent
            if found:
                offer(name, tuple(reversed(chain)))
        return answers, steps


# ------------------------------------------------------------------ #
# the naive BFS reference (equivalence oracle and benchmark baseline)
# ------------------------------------------------------------------ #
def naive_rpq(
    documents: Iterable,
    seeds: Iterable[str],
    automaton: Automaton,
    feed: str = "",
) -> tuple[dict[str, Witness], int]:
    """Reference evaluation: rebuild plain adjacency, run a set-based BFS.

    Deliberately independent of :class:`AdjacencyIndex` — the edge relation
    is re-derived from the documents on every call and expansion uses plain
    dict-of-set adjacency, so the seeded equivalence suite genuinely tests
    the bitmap, interval, and distributed machinery against first
    principles.  Same round protocol, same canonical witnesses.
    """
    forward: dict[str, dict[str, set[str]]] = {}
    reverse: dict[str, dict[str, set[str]]] = {}
    for document in documents:
        feed_key, node = document_feed_node(document)
        if feed_key != feed:
            continue
        for predicate, target in document_edges(document):
            forward.setdefault(predicate, {}).setdefault(node, set()).add(target)
            reverse.setdefault(predicate, {}).setdefault(target, set()).add(node)

    ordered = sorted(set(seeds))
    visited: dict[tuple[str, int], Witness] = {
        (node, automaton.start): () for node in ordered
    }
    frontier: list[FrontierEntry] = [(node, automaton.start, ()) for node in ordered]
    expanded = 0
    while frontier:
        expanded += len(frontier)
        candidates: list[FrontierEntry] = []
        for node, state, witness in frontier:
            for predicate, inverse, next_state in automaton.transitions.get(state, ()):
                rows = reverse.get(predicate) if inverse else forward.get(predicate)
                if not rows:
                    continue
                label = ("^" + predicate) if inverse else predicate
                for target in sorted(rows.get(node, ())):
                    candidates.append(
                        (target, next_state, witness + ((node, label, target),))
                    )
        best: dict[tuple[str, int], Witness] = {}
        for node, state, witness in candidates:
            key = (node, state)
            if key in visited:
                continue
            if key not in best or witness < best[key]:
                best[key] = witness
        visited.update(best)
        frontier = [(node, state, witness) for (node, state), witness in sorted(best.items())]
    answers: dict[str, Witness] = {}
    for (node, state), witness in visited.items():
        if state not in automaton.accepting:
            continue
        if node not in answers or (len(witness), witness) < (
            len(answers[node]),
            answers[node],
        ):
            answers[node] = witness
    return answers, expanded
