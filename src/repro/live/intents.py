"""Query intent handling: route annotated NL intents to KGQ queries (§4.2).

An intent is a high-level operation with entity arguments, e.g.
``HeadOfState(Canada)``.  The same intent may need different graph queries
depending on the *semantics of the arguments*: the leader of a country is its
``head_of_state`` while the leader of a city is its ``mayor``.  The intent
handler inspects the KG types of the arguments and picks the meaningful
execution — exactly the "LeaderOf(Canada)" vs "LeaderOf(Chicago)" example in
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import IntentError
from repro.live.index import LiveIndex
from repro.live.kgq import Condition, Query


@dataclass
class Intent:
    """A structured query intent with its (textual) arguments."""

    name: str
    arguments: tuple[str, ...] = ()

    def render(self) -> str:
        """Render as ``Name(arg1, arg2)``."""
        return f"{self.name}({', '.join(self.arguments)})"


@dataclass
class IntentRoute:
    """One candidate execution of an intent for a specific argument type."""

    argument_type: str                   # entity type the argument must have
    build_query: Callable[[str], Query]  # argument value -> KGQ query
    answer_column: str = ""              # projected column holding the answer


class IntentHandler:
    """Route intents to KGQ queries based on argument semantics."""

    def __init__(self, index: LiveIndex) -> None:
        self.index = index
        self._routes: dict[str, list[IntentRoute]] = {}

    def register(self, intent_name: str, route: IntentRoute) -> None:
        """Register a candidate route for *intent_name*."""
        self._routes.setdefault(intent_name.lower(), []).append(route)

    def routes_for(self, intent_name: str) -> list[IntentRoute]:
        """Candidate routes registered for *intent_name*."""
        return list(self._routes.get(intent_name.lower(), []))

    # -------------------------------------------------------------- #
    # routing
    # -------------------------------------------------------------- #
    def route(self, intent: Intent) -> tuple[Query, IntentRoute]:
        """Pick the route whose argument-type requirement the KG satisfies.

        The argument entity is looked up by name in the live index; the route
        whose ``argument_type`` matches the entity's type wins.  If no route
        matches, an :class:`IntentError` explains which types were considered.
        """
        routes = self.routes_for(intent.name)
        if not routes:
            raise IntentError(f"no routes registered for intent {intent.name!r}")
        if not intent.arguments:
            raise IntentError(f"intent {intent.render()} has no argument to route on")
        argument = intent.arguments[0]
        argument_types = self._argument_types(argument)
        for route in routes:
            if route.argument_type in argument_types:
                return route.build_query(argument), route
        # Fall back to the first route when the argument is unknown to the KG;
        # execution will simply return no rows.
        considered = ", ".join(sorted(argument_types)) or "<unknown>"
        raise IntentError(
            f"intent {intent.render()}: no route matches argument types [{considered}]"
        )

    def _argument_types(self, argument: str) -> set[str]:
        entity_ids = self.index.inverted.lookup_name(argument)
        if not entity_ids:
            entity_ids = self.index.inverted.search_name_tokens(argument)
        types: set[str] = set()
        for entity_id in entity_ids:
            document = self.index.get(entity_id)
            if document is not None and document.entity_type:
                types.add(document.entity_type)
        return types


def default_intent_handler(index: LiveIndex) -> IntentHandler:
    """Intent handler with the routes used by the QA example and benchmarks."""
    handler = IntentHandler(index)

    handler.register(
        "LeaderOf",
        IntentRoute(
            argument_type="country",
            build_query=lambda name: Query(
                entity_type="country",
                conditions=[Condition(("name",), "=", name)],
                returns=[("head_of_state", "name")],
            ),
            answer_column="head_of_state.name",
        ),
    )
    handler.register(
        "LeaderOf",
        IntentRoute(
            argument_type="city",
            build_query=lambda name: Query(
                entity_type="city",
                conditions=[Condition(("name",), "=", name)],
                returns=[("mayor", "name")],
            ),
            answer_column="mayor.name",
        ),
    )
    handler.register(
        "SpouseOf",
        IntentRoute(
            argument_type="person",
            build_query=lambda name: Query(
                entity_type="person",
                conditions=[Condition(("name",), "=", name)],
                returns=[("spouse", "name")],
            ),
            answer_column="spouse.name",
        ),
    )
    for person_type in ("music_artist", "actor", "athlete"):
        handler.register(
            "SpouseOf",
            IntentRoute(
                argument_type=person_type,
                build_query=lambda name, entity_type=person_type: Query(
                    entity_type=entity_type,
                    conditions=[Condition(("name",), "=", name)],
                    returns=[("spouse", "name")],
                ),
                answer_column="spouse.name",
            ),
        )
        handler.register(
            "Birthplace",
            IntentRoute(
                argument_type=person_type,
                build_query=lambda name, entity_type=person_type: Query(
                    entity_type=entity_type,
                    conditions=[Condition(("name",), "=", name)],
                    returns=[("birth_place", "name")],
                ),
                answer_column="birth_place.name",
            ),
        )
    handler.register(
        "Birthplace",
        IntentRoute(
            argument_type="person",
            build_query=lambda name: Query(
                entity_type="person",
                conditions=[Condition(("name",), "=", name)],
                returns=[("birth_place", "name")],
            ),
            answer_column="birth_place.name",
        ),
    )
    handler.register(
        "GameScore",
        IntentRoute(
            argument_type="sports_team",
            build_query=lambda team: Query(
                entity_type="sports_game",
                conditions=[Condition(("home_team", "name"), "CONTAINS", team)],
                returns=[("name",), ("home_score",), ("away_score",), ("game_status",)],
            ),
            answer_column="name",
        ),
    )
    handler.register(
        "AgeOf",
        IntentRoute(
            argument_type="person",
            build_query=lambda name: Query(
                entity_type="person",
                conditions=[Condition(("name",), "=", name)],
                returns=[("birth_date",)],
            ),
            answer_column="birth_date",
        ),
    )
    return handler
