"""The Graph Engine: shared log, federated stores, views, and importance."""

from repro.engine.agents import (
    AgentCoordinator,
    CallbackAgent,
    OrchestrationAgent,
    ReplayReport,
)
from repro.engine.analytics import (
    AnalyticsStore,
    EntityViewSpec,
    JoinAccessPattern,
    Relation,
)
from repro.engine.entity_store import EntityDocument, EntityStore
from repro.engine.graph_engine import GraphEngine
from repro.engine.importance import (
    EntityImportance,
    ImportanceConfig,
    ImportanceScore,
    importance_view_rows,
)
from repro.engine.log import LogRecord, OperationLog
from repro.engine.metadata import MetadataStore
from repro.engine.object_store import ObjectStore
from repro.engine.text_index import InvertedTextIndex, SearchHit, TextDocument
from repro.engine.vector_db import VectorDB, VectorHit
from repro.engine.views import (
    DeltaApplyResult,
    JoinInput,
    JoinViewDefinition,
    ViewCatalog,
    ViewContext,
    ViewDefinition,
    ViewManager,
    ViewState,
)

__all__ = [
    "AgentCoordinator",
    "AnalyticsStore",
    "CallbackAgent",
    "DeltaApplyResult",
    "EntityDocument",
    "EntityImportance",
    "EntityStore",
    "EntityViewSpec",
    "GraphEngine",
    "ImportanceConfig",
    "ImportanceScore",
    "InvertedTextIndex",
    "JoinAccessPattern",
    "JoinInput",
    "JoinViewDefinition",
    "LogRecord",
    "MetadataStore",
    "ObjectStore",
    "OperationLog",
    "OrchestrationAgent",
    "Relation",
    "ReplayReport",
    "SearchHit",
    "TextDocument",
    "VectorDB",
    "VectorHit",
    "ViewCatalog",
    "ViewContext",
    "ViewDefinition",
    "ViewManager",
    "ViewState",
    "importance_view_rows",
]
