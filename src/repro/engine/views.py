"""KG views: catalog, dependency graph, and selective, LSN-tracked maintenance.

Section 3.2: a view is *any* transformation of the graph — subgraph views,
schematized relational views, aggregates, iterative algorithms (PageRank), or
alternative representations (embeddings).  View definitions are scripted
against the target engine's native APIs and provide three procedures (create,
update-given-changed-entity-ids, drop).  Definitions live in a central view
catalog with their dependencies; the View Manager coordinates execution over
the dependency graph, which enables the 26% runtime saving from reusing shared
intermediate views reported in the paper (the VIEWDEP benchmark re-measures
this effect).

Maintenance model
-----------------

The manager maintains views *selectively* and *change-driven* rather than
rebuilding every materialized view on any update:

* **Affected closure.**  Each :class:`ViewDefinition` may declare an entity
  ``scope`` predicate.  Given a batch of changed entity ids, a root view is
  affected only when the batch intersects its scope (no scope means
  "affected by any change"); a dependent view is affected when any of its
  dependencies is affected or its own scope matches.  Only the affected
  closure is rebuilt, in topological order, with fresh artifacts propagated
  downward through :attr:`ViewContext.artifacts`.

* **LSN watermarks.**  Every :class:`ViewState` records ``built_at_lsn`` — the
  operation-log position its artifact reflects.  Staleness is therefore
  measured in log positions (how many operations behind the log head), not
  wall-clock seconds; the wall-clock ``freshness_sla`` remains as an
  orthogonal serving-side SLA.  Watermarks are mirrored into the platform
  :class:`~repro.engine.metadata.MetadataStore` when one is attached, so
  consumers can route reads with the same freshness machinery they use for
  stores.

* **Batched deltas.**  Changed-entity deltas accumulate in a pending batch
  (fed by the Graph Engine's log-replay progress) and flush either explicitly
  or automatically once ``batch_size`` distinct entities are pending.  A view
  outside the affected closure of a flush only has its watermark advanced and
  its ``skipped_updates`` counter bumped — the proof of work avoided.

* **Lifecycle safety.**  ``drop`` cascades invalidation to transitive
  dependents so no dependent keeps serving an artifact built from a dropped
  view; re-registering a view resets the runtime state of the view and its
  dependents in every attached manager; and maintenance fails fast with a
  :class:`~repro.errors.ViewError` when a dependent would be rebuilt on top
  of a dependency that has never been materialized.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import networkx as nx

from repro.engine.metadata import MetadataStore
from repro.errors import ViewError


@dataclass
class ViewContext:
    """Execution context handed to view procedures.

    ``engines`` exposes the Graph Engine's stores by name (``analytics``,
    ``entity_store``, ``text_index``, ``vector_db``, ``triples``, ...);
    ``artifacts`` holds the materialized results of dependency views.
    """

    engines: dict[str, object] = field(default_factory=dict)
    artifacts: dict[str, object] = field(default_factory=dict)

    def engine(self, name: str) -> object:
        """Return the engine registered under *name*."""
        try:
            return self.engines[name]
        except KeyError:
            raise ViewError(f"no engine named {name!r} available to views") from None

    def artifact(self, view_name: str) -> object:
        """Return the materialized artifact of a dependency view."""
        try:
            return self.artifacts[view_name]
        except KeyError:
            raise ViewError(
                f"view dependency {view_name!r} has not been materialized"
            ) from None


CreateProcedure = Callable[[ViewContext], object]
UpdateProcedure = Callable[[ViewContext, list[str]], object]
DropProcedure = Callable[[ViewContext], None]
ScopePredicate = Callable[[str], bool]


@dataclass
class ViewDefinition:
    """A registered view: procedures plus dependency, scope, and SLA metadata."""

    name: str
    engine: str
    create: CreateProcedure
    update: UpdateProcedure | None = None
    drop: DropProcedure | None = None
    dependencies: tuple[str, ...] = ()
    scope: ScopePredicate | None = None    # entity-id predicate for selectivity
    freshness_sla: float | None = None     # seconds of staleness tolerated
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ViewError("view name must be non-empty")
        if not callable(self.create):
            raise ViewError(f"view {self.name!r} needs a callable create procedure")
        if self.scope is not None and not callable(self.scope):
            raise ViewError(f"view {self.name!r} scope must be callable")

    def affected_by(self, changed_entity_ids: Sequence[str]) -> bool:
        """Whether a batch of changed entities intersects this view's scope."""
        if self.scope is None:
            return True
        return any(self.scope(entity_id) for entity_id in changed_entity_ids)


@dataclass
class ViewState:
    """Runtime state of one registered view."""

    materialized: bool = False
    artifact: object = None
    last_built_at: float = 0.0
    last_build_seconds: float = 0.0
    built_at_lsn: int = 0          # operation-log position the artifact reflects
    builds: int = 0
    incremental_updates: int = 0
    skipped_updates: int = 0       # flushes that proved no rebuild was needed
    invalidations: int = 0         # cascade invalidations (drop / re-register)
    revision: int = 0              # bumped when state is recreated (redefinition)


class ViewCatalog:
    """Central registry of view definitions and their dependency graph."""

    def __init__(self) -> None:
        self._definitions: dict[str, ViewDefinition] = {}
        self._managers: list["ViewManager"] = []

    def attach(self, manager: "ViewManager") -> None:
        """Attach a manager so lifecycle events can reset its runtime state."""
        if manager not in self._managers:
            self._managers.append(manager)

    def register(self, definition: ViewDefinition, replace: bool = True) -> ViewDefinition:
        """Register a view; dependencies must already be registered.

        Re-registering an existing name with ``replace=True`` (the default)
        swaps the definition and resets the runtime state of the view *and*
        of every transitive dependent in all attached managers — stale state
        built against the old definition must never survive.  With
        ``replace=False`` re-registration is rejected outright.
        """
        for dependency in definition.dependencies:
            if dependency != definition.name and dependency not in self._definitions:
                raise ViewError(
                    f"view {definition.name!r} depends on unknown view {dependency!r}"
                )
        existing = self._definitions.get(definition.name)
        if existing is None:
            self._definitions[definition.name] = definition
            if not nx.is_directed_acyclic_graph(self.dependency_graph()):
                del self._definitions[definition.name]
                raise ViewError(
                    f"registering view {definition.name!r} would create a dependency cycle"
                )
            return definition
        if not replace:
            raise ViewError(f"view {definition.name!r} is already registered")
        old_dependents = self.dependents_of(definition.name)
        self._definitions[definition.name] = definition
        if not nx.is_directed_acyclic_graph(self.dependency_graph()):
            self._definitions[definition.name] = existing
            raise ViewError(
                f"re-registering view {definition.name!r} would create a dependency cycle"
            )
        affected = {definition.name, *old_dependents, *self.dependents_of(definition.name)}
        for manager in self._managers:
            manager.reset_views(affected)
        return definition

    def get(self, name: str) -> ViewDefinition:
        """Return the definition registered under *name*."""
        try:
            return self._definitions[name]
        except KeyError:
            raise ViewError(f"unknown view {name!r}") from None

    def names(self) -> list[str]:
        """All registered view names."""
        return sorted(self._definitions)

    def dependency_graph(self) -> nx.DiGraph:
        """Directed graph with an edge dependency → dependent view."""
        graph = nx.DiGraph()
        for name, definition in self._definitions.items():
            graph.add_node(name)
            for dependency in definition.dependencies:
                graph.add_edge(dependency, name)
        return graph

    def execution_order(self, targets: Iterable[str] | None = None) -> list[str]:
        """Topological execution order covering *targets* and their dependencies."""
        graph = self.dependency_graph()
        if not nx.is_directed_acyclic_graph(graph):
            raise ViewError("view dependency graph contains a cycle")
        if targets is None:
            return list(nx.topological_sort(graph))
        needed: set[str] = set()
        frontier = list(targets)
        while frontier:
            name = frontier.pop()
            if name in needed:
                continue
            needed.add(name)
            frontier.extend(self.get(name).dependencies)
        return [name for name in nx.topological_sort(graph) if name in needed]

    def dependents_of(self, name: str) -> list[str]:
        """Views that (transitively) depend on *name*."""
        graph = self.dependency_graph()
        if name not in graph:
            return []
        return sorted(nx.descendants(graph, name))

    def affected_closure(self, changed_entity_ids: Sequence[str]) -> list[str]:
        """Views whose scope matches the changed entities, plus all dependents.

        Returned in topological order; views with no declared scope are
        conservatively considered affected by any change.
        """
        affected: set[str] = set()
        for name in self.execution_order():
            definition = self.get(name)
            if any(dep in affected for dep in definition.dependencies) or (
                definition.affected_by(changed_entity_ids)
            ):
                affected.add(name)
        return [name for name in self.execution_order() if name in affected]

    def __contains__(self, name: object) -> bool:
        return name in self._definitions

    def __len__(self) -> int:
        return len(self._definitions)


class ViewManager:
    """Materialize and selectively maintain views over the engine's stores.

    ``lsn_source`` (usually the operation log's ``head_lsn``) stamps every
    build with the log position it reflects; ``metadata`` mirrors the per-view
    watermarks into the platform metadata store; ``batch_size`` turns on
    automatic flushing of the pending changed-entity delta.
    """

    def __init__(
        self,
        catalog: ViewCatalog,
        engines: dict[str, object],
        metadata: MetadataStore | None = None,
        lsn_source: Callable[[], int] | None = None,
        batch_size: int | None = None,
    ) -> None:
        if batch_size is not None and batch_size <= 0:
            raise ViewError("view maintenance batch_size must be positive")
        self.catalog = catalog
        self.engines = engines
        self.metadata = metadata
        self.lsn_source = lsn_source
        self.batch_size = batch_size
        self.states: dict[str, ViewState] = {}
        self.flushes = 0
        self.deltas_observed = 0
        self._pending: set[str] = set()
        self._pending_deleted: set[str] = set()
        self._pending_lsn = 0
        self._pending_forced = False
        self._pending_full = False
        self._pending_rebuild = False
        self._revision_counter = 0
        self._local_lsn = 0
        self.delta_lsn = 0          # highest LSN whose delta has been observed
        catalog.attach(self)

    # -------------------------------------------------------------- #
    # materialization
    # -------------------------------------------------------------- #
    def materialize(
        self, targets: Sequence[str] | None = None, reuse_shared: bool = True
    ) -> dict[str, float]:
        """Materialize the target views (or all) and return per-view seconds.

        With ``reuse_shared=True`` every view in the dependency closure is
        built exactly once and its artifact reused by all dependents — the
        multi-query-optimization practice behind the paper's 26% saving.  With
        ``reuse_shared=False`` each target rebuilds its own dependency chain,
        emulating the naive one-pipeline-per-view deployment.
        """
        timings: dict[str, float] = {}
        if reuse_shared:
            order = self.catalog.execution_order(targets)
            context = ViewContext(engines=self.engines)
            for name in order:
                seconds = self._build_view(name, context)
                timings[name] = timings.get(name, 0.0) + seconds
            return timings

        target_names = list(targets) if targets is not None else self.catalog.names()
        for target in target_names:
            context = ViewContext(engines=self.engines)
            for name in self.catalog.execution_order([target]):
                seconds = self._build_view(name, context)
                timings[name] = timings.get(name, 0.0) + seconds
        return timings

    def _build_view(self, name: str, context: ViewContext) -> float:
        definition = self.catalog.get(name)
        started = time.perf_counter()
        artifact = definition.create(context)
        elapsed = time.perf_counter() - started
        context.artifacts[name] = artifact
        state = self.states.get(name)
        if state is None:
            # A fresh revision distinguishes "same LSN, new definition" for
            # consumers caching by log position (e.g. the live serving layer).
            self._revision_counter += 1
            state = ViewState(revision=self._revision_counter)
            self.states[name] = state
        state.materialized = True
        state.artifact = artifact
        state.last_built_at = time.time()
        state.last_build_seconds = elapsed
        state.built_at_lsn = max(state.built_at_lsn, self.current_lsn())
        state.builds += 1
        self._record_watermark(name, state)
        return elapsed

    # -------------------------------------------------------------- #
    # incremental maintenance
    # -------------------------------------------------------------- #
    def enqueue(
        self,
        changed_entity_ids: Iterable[str],
        lsn: int | None = None,
        deleted_entity_ids: Iterable[str] = (),
    ) -> dict[str, float]:
        """Accumulate a changed-entity delta for a later (or automatic) flush.

        *deleted_entity_ids* must name entities removed from the stores: a
        scope predicate that consults the store can no longer classify them,
        so deletions conservatively widen the next flush to every
        materialized view (they still reach ``update`` procedures as part of
        the changed list).  Returns flush timings when the pending batch
        reached ``batch_size`` and auto-flushed, an empty dict otherwise.
        Deltas observed before any view is materialized are dropped: the
        initial ``create`` reads current store state, so those changes are
        already covered.
        """
        observed = int(lsn) if lsn is not None else self.current_lsn()
        self.delta_lsn = max(self.delta_lsn, observed)
        if not self._has_materialized():
            return {}
        self._pending.update(changed_entity_ids)
        deleted = set(deleted_entity_ids)
        self._pending.update(deleted)
        self._pending_deleted.update(deleted)
        self._pending_lsn = max(self._pending_lsn, observed)
        self.deltas_observed += 1
        if self.batch_size is not None and len(self._pending) >= self.batch_size:
            return self.flush()
        return {}

    def mark_full_refresh(self, lsn: int | None = None) -> None:
        """Force the next flush to treat every materialized view as affected.

        Used for operations whose changed-entity set is unknown, e.g. a
        source removal that may touch arbitrary subjects.  Because no view's
        incremental ``update`` procedure can be told *which* entities changed,
        the flush rebuilds every view from scratch via ``create``.
        """
        observed = int(lsn) if lsn is not None else self.current_lsn()
        self.delta_lsn = max(self.delta_lsn, observed)
        if not self._has_materialized():
            return
        self._pending_full = True
        self._pending_rebuild = True
        self._pending_lsn = max(self._pending_lsn, observed)

    def flush(self) -> dict[str, float]:
        """Maintain the affected closure of the pending delta, topologically.

        Only views affected by the batched changed entities (directly through
        their scope or transitively through an affected dependency) are
        rebuilt; every other materialized view merely advances its LSN
        watermark and counts a skipped update.  A view already at or beyond
        the batch's target LSN is not rebuilt unless the flush was forced by a
        direct :meth:`update` call.
        """
        if not (self._pending or self._pending_full or self._pending_forced):
            return {}
        changed = sorted(self._pending)
        deleted = set(self._pending_deleted)
        forced = self._pending_forced
        # Deleted entities can no longer be classified by store-derived scope
        # predicates, so their presence widens the flush to every view.
        full = self._pending_full or bool(deleted)
        rebuild = self._pending_rebuild
        self._local_lsn += 1
        target_lsn = self._pending_lsn or self.current_lsn()
        self._pending = set()
        self._pending_deleted = set()
        self._pending_lsn = 0
        self._pending_forced = False
        self._pending_full = False
        self._pending_rebuild = False

        try:
            return self._flush_batch(changed, target_lsn, forced, full, rebuild)
        except Exception:
            # A failed flush must not lose the delta: restore it (merged with
            # anything enqueued by reentrant observers) so a retry still
            # covers every pending change.
            self._pending.update(changed)
            self._pending_deleted.update(deleted)
            self._pending_lsn = max(self._pending_lsn, target_lsn)
            self._pending_forced = self._pending_forced or forced
            self._pending_full = self._pending_full or full
            self._pending_rebuild = self._pending_rebuild or rebuild
            raise

    def _flush_batch(
        self,
        changed: list[str],
        target_lsn: int,
        forced: bool,
        full: bool,
        rebuild: bool,
    ) -> dict[str, float]:
        closure = None if full else set(self.catalog.affected_closure(changed))
        timings: dict[str, float] = {}
        context = ViewContext(engines=self.engines, artifacts=self._artifacts())
        for name in self.catalog.execution_order():
            state = self.states.get(name)
            if state is None or not state.materialized:
                continue
            if not (full or name in closure):
                state.skipped_updates += 1
                if target_lsn > state.built_at_lsn:
                    state.built_at_lsn = target_lsn
                    self._record_watermark(name, state)
                continue
            if not forced and state.built_at_lsn >= target_lsn:
                state.skipped_updates += 1
                continue
            definition = self.catalog.get(name)
            self._require_dependencies(name, definition)
            timings[name] = self._maintain_view(
                name, definition, state, context, changed, force_create=rebuild
            )
            state.built_at_lsn = max(state.built_at_lsn, target_lsn)
            self._record_watermark(name, state)
        self.flushes += 1
        return timings

    def update(
        self,
        changed_entity_ids: Sequence[str],
        lsn: int | None = None,
        selective: bool = True,
    ) -> dict[str, float]:
        """Immediately maintain views for the changed entities.

        With ``selective=True`` only the affected closure is rebuilt; with
        ``selective=False`` every materialized view is maintained regardless
        of scope (the pre-selective behavior, kept for A/B measurement).
        Views without an ``update`` procedure are rebuilt from scratch, which
        is the fallback the paper allows for non-incrementally-maintainable
        views (e.g. iterative algorithms).
        """
        self._pending.update(changed_entity_ids)
        self._pending_forced = True
        if not selective:
            self._pending_full = True
        if lsn is not None:
            self._pending_lsn = max(self._pending_lsn, int(lsn))
        return self.flush()

    def _require_dependencies(self, name: str, definition: ViewDefinition) -> None:
        missing = [
            dependency
            for dependency in definition.dependencies
            if not self.is_materialized(dependency)
        ]
        if missing:
            raise ViewError(
                f"cannot maintain view {name!r}: dependencies {missing} have never "
                "been materialized — materialize them before updating dependents"
            )

    def _maintain_view(
        self,
        name: str,
        definition: ViewDefinition,
        state: ViewState,
        context: ViewContext,
        changed: Sequence[str],
        force_create: bool = False,
    ) -> float:
        started = time.perf_counter()
        if definition.update is not None and not force_create:
            artifact = definition.update(context, list(changed))
            state.incremental_updates += 1
        else:
            artifact = definition.create(context)
            state.builds += 1
        elapsed = time.perf_counter() - started
        if artifact is not None:
            state.artifact = artifact
            context.artifacts[name] = artifact
        state.last_built_at = time.time()
        state.last_build_seconds = elapsed
        return elapsed

    # -------------------------------------------------------------- #
    # lifecycle
    # -------------------------------------------------------------- #
    def drop(self, name: str, cascade: bool = True) -> list[str]:
        """Drop one view's materialization, cascading to its dependents.

        Transitive dependents are invalidated (their drop procedures run, the
        artifacts are discarded) in reverse topological order so no dependent
        keeps serving a result built from the dropped view.  With
        ``cascade=False`` the drop is rejected while materialized dependents
        exist.  Returns the names whose materialization was removed.
        """
        definition = self.catalog.get(name)
        dependents = self.catalog.dependents_of(name)
        materialized_dependents = [d for d in dependents if self.is_materialized(d)]
        if not cascade and materialized_dependents:
            raise ViewError(
                f"cannot drop view {name!r}: materialized dependents "
                f"{materialized_dependents} would go stale (use cascade=True)"
            )
        removed: list[str] = []
        if dependents:
            dependent_set = set(dependents)
            order = [n for n in self.catalog.execution_order() if n in dependent_set]
            for dependent in reversed(order):
                if self._invalidate(dependent):
                    removed.append(dependent)
        state = self.states.get(name)
        if definition.drop is not None and state is not None and state.materialized:
            definition.drop(ViewContext(engines=self.engines, artifacts=self._artifacts()))
        if state is not None and state.materialized:
            removed.append(name)
        self.states.pop(name, None)
        self._clear_watermark(name)
        return removed

    def _invalidate(self, name: str) -> bool:
        """Invalidate one view's materialization; returns True when it was live."""
        state = self.states.get(name)
        if state is None or not state.materialized:
            return False
        definition = self.catalog.get(name) if name in self.catalog else None
        if definition is not None and definition.drop is not None:
            definition.drop(ViewContext(engines=self.engines, artifacts=self._artifacts()))
        state.materialized = False
        state.artifact = None
        state.invalidations += 1
        self._clear_watermark(name)
        return True

    def reset_views(self, names: Iterable[str]) -> None:
        """Discard runtime state for *names* (called on re-registration).

        The old artifacts were built against definitions that no longer
        exist, so the state is removed outright; drop procedures are not run
        because they belong to the replaced definitions.
        """
        for name in names:
            self.states.pop(name, None)
            self._clear_watermark(name)

    # -------------------------------------------------------------- #
    # access
    # -------------------------------------------------------------- #
    def artifact(self, name: str) -> object:
        """Return the materialized artifact of *name*."""
        state = self.states.get(name)
        if state is None or not state.materialized:
            raise ViewError(f"view {name!r} has not been materialized")
        return state.artifact

    def is_materialized(self, name: str) -> bool:
        """Whether *name* currently has a materialized artifact."""
        state = self.states.get(name)
        return bool(state and state.materialized)

    def built_at_lsn(self, name: str) -> int:
        """The operation-log position the view's artifact reflects."""
        state = self.states.get(name)
        return state.built_at_lsn if state is not None else 0

    def state_revision(self, name: str) -> int:
        """Identifier of the view's state lineage; changes on redefinition.

        Lets LSN-caching consumers notice that an artifact was rebuilt under
        a new definition even when the log position did not move.
        """
        state = self.states.get(name)
        return state.revision if state is not None else 0

    def current_lsn(self) -> int:
        """The log position maintenance is stamped against right now."""
        if self.lsn_source is not None:
            return int(self.lsn_source())
        return self._local_lsn

    def pending_changes(self) -> list[str]:
        """Changed entity ids accumulated and not yet flushed."""
        return sorted(self._pending)

    def stale_views(self, now: float | None = None) -> list[str]:
        """Views whose wall-clock freshness SLA is violated at time *now*."""
        current = now if now is not None else time.time()
        stale = []
        for name in self.catalog.names():
            definition = self.catalog.get(name)
            state = self.states.get(name)
            if definition.freshness_sla is None:
                continue
            if state is None or not state.materialized:
                stale.append(name)
                continue
            if current - state.last_built_at > definition.freshness_sla:
                stale.append(name)
        return stale

    def lagging_views(self, head_lsn: int | None = None) -> dict[str, int]:
        """Materialized views behind *head_lsn*, and how many log positions."""
        head = head_lsn if head_lsn is not None else self.current_lsn()
        return {
            name: head - state.built_at_lsn
            for name, state in sorted(self.states.items())
            if state.materialized and state.built_at_lsn < head
        }

    def maintenance_stats(self) -> dict[str, dict[str, object]]:
        """Per-view lifecycle counters proving the work selectivity avoided."""
        return {
            name: {
                "materialized": state.materialized,
                "builds": state.builds,
                "incremental_updates": state.incremental_updates,
                "skipped_updates": state.skipped_updates,
                "invalidations": state.invalidations,
                "built_at_lsn": state.built_at_lsn,
            }
            for name, state in sorted(self.states.items())
        }

    # -------------------------------------------------------------- #
    # internals
    # -------------------------------------------------------------- #
    def _has_materialized(self) -> bool:
        return any(state.materialized for state in self.states.values())

    def _record_watermark(self, name: str, state: ViewState) -> None:
        if self.metadata is not None:
            self.metadata.update_view_watermark(name, state.built_at_lsn)

    def _clear_watermark(self, name: str) -> None:
        if self.metadata is not None:
            self.metadata.clear_view_watermark(name)

    def _artifacts(self) -> dict[str, object]:
        return {
            name: state.artifact
            for name, state in self.states.items()
            if state.materialized
        }
