"""KG views: catalog, dependency graph, and delta-journaled, LSN-tracked maintenance.

Section 3.2: a view is *any* transformation of the graph — subgraph views,
schematized relational views, aggregates, iterative algorithms (PageRank), or
alternative representations (embeddings).  View definitions are scripted
against the target engine's native APIs and provide three procedures (create,
update-given-changed-entity-ids, drop).  Definitions live in a central view
catalog with their dependencies; the View Manager coordinates execution over
the dependency graph, which enables the 26% runtime saving from reusing shared
intermediate views reported in the paper (the VIEWDEP benchmark re-measures
this effect).

Maintenance model
-----------------

The manager maintains views *selectively* and *change-driven* rather than
rebuilding every materialized view on any update:

* **Entity-level deltas.**  Changed-entity deltas accumulate in a pending
  batch (fed by the Graph Engine's log-replay progress, which classifies ids
  as added / updated / deleted) and flush either explicitly or automatically
  once ``batch_size`` distinct entities are pending.  A flush turns the batch
  into one :class:`ViewDelta` carrying the LSN range it covers.

* **Affected closure.**  Each :class:`ViewDefinition` may declare an entity
  ``scope`` predicate.  A root view is affected when the delta's changed ids
  intersect its scope *or* its pre-delete scope snapshot (no scope means
  "affected by any change"); a dependent view is affected when any of its
  dependencies is affected.  Only the affected closure is maintained; every
  other materialized view merely advances its watermark and counts a skipped
  update — the proof of work avoided.

* **Pre-delete scope snapshots.**  A deleted entity can no longer be
  classified by a store-derived scope predicate, so the manager keeps a
  per-view snapshot of scope membership (seeded from ``entity_source`` at
  build time, maintained from deltas afterwards).  Deletions resolve to the
  views whose snapshot actually contained the entity; a deletion matching no
  snapshot (and no unscoped view) is a no-op flush.  Without a complete
  snapshot the manager stays conservative about *deletions* and treats the
  view as affected.  Scope *migration* (a changed entity leaving a view's
  scope) is caught through snapshot membership, which is only complete when
  ``entity_source`` is supplied — a standalone manager without one tracks
  membership from observed deltas only, so entities present since the
  initial ``create`` that later migrate out are missed (the pre-snapshot
  behavior; the Graph Engine always supplies ``entity_source``).

* **Delta journals.**  Every :class:`ViewState` carries a
  :class:`DeltaJournal` of the per-view deltas its artifact has absorbed,
  with LSN ranges.  Views maintained through ``apply_delta`` or ``update``
  append their scope-projected delta; views rebuilt through ``create``
  truncate the journal (the extent of the change is unknown).  Downstream
  consumers (the live serving layer) call :meth:`ViewManager.view_deltas_since`
  to fetch only what changed since the version they serve, falling back to a
  full reload when the journal cannot cover the gap.  Journals are compacted
  once they exceed ``journal_limit`` entries.

* **Parallel branch flushing.**  ``flush()`` schedules the affected closure
  over the topological antichains of the dependency graph: views within one
  antichain are mutually independent and run on a thread pool when
  ``max_workers`` allows, while a dependent never starts before its
  dependencies' antichain completed.  Journal append/truncate, scope-snapshot
  update, and watermark publication are committed atomically per view under a
  per-view lock, so a failing branch neither corrupts a sibling branch's
  journal nor loses the pending delta (the flush restores it and re-raises).

* **LSN watermarks.**  Every :class:`ViewState` records ``built_at_lsn`` — the
  operation-log position its artifact reflects.  Watermarks and journal
  high-water marks are mirrored into the platform
  :class:`~repro.engine.metadata.MetadataStore` when one is attached, so
  consumers can route reads with the same freshness machinery they use for
  stores.  The wall-clock ``freshness_sla`` remains as an orthogonal
  serving-side SLA.

* **Lifecycle safety.**  ``drop`` cascades invalidation to transitive
  dependents so no dependent keeps serving an artifact built from a dropped
  view; re-registering a view resets the runtime state of the view and its
  dependents in every attached manager; and maintenance fails fast with a
  :class:`~repro.errors.ViewError` when a dependent would be rebuilt on top
  of a dependency that has never been materialized.

Incremental-procedure contract
------------------------------

``apply_delta(context, delta)`` (and ``update``) must confine artifact row
changes to the delta's entities: rows outside ``delta.changed | delta.deleted``
must be byte-identical to a from-scratch rebuild.  A view whose rows can
change beyond the delta (e.g. an iterative algorithm) must not declare an
incremental procedure — the ``create`` fallback truncates the journal so no
consumer trusts a delta that undersells the change.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
import weakref
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import networkx as nx

from repro.engine.analytics import JoinAccessPattern, _collapse
from repro.engine.metadata import MetadataStore
from repro.errors import JournalGapError, ViewError


def row_checksum(row: object) -> str:
    """Content digest of one artifact row (canonical-JSON ``blake2b``).

    The same row always hashes to the same digest regardless of dict insertion
    order, so primary and replica can compare copies without shipping rows.
    Values outside the JSON types are stringified — a checksum must never fail
    on a serveable row.
    """
    canonical = json.dumps(row, sort_keys=True, default=str, separators=(",", ":"))
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=8).hexdigest()


def combine_checksums(checksums: dict[str, str]) -> str:
    """One digest over a subject → row-checksum map (order-independent)."""
    digest = hashlib.blake2b(digest_size=8)
    for subject in sorted(checksums):
        digest.update(subject.encode("utf-8"))
        digest.update(checksums[subject].encode("utf-8"))
    return digest.hexdigest()


def rows_by_subject(
    artifact: object, view_name: str, error: type[Exception] = ViewError
) -> dict[str, dict]:
    """Normalize a row-shaped artifact into a subject → row mapping.

    The one definition of "row-shaped" every consumer shares — a sequence of
    dicts with a ``subject`` key, or a mapping whose values are such dicts.
    Anything else raises *error* (:class:`~repro.errors.ViewError` here;
    the serving layer passes its own class so its callers keep catching
    serving errors).
    """
    if isinstance(artifact, dict):
        rows = list(artifact.values())
    elif isinstance(artifact, (list, tuple)):
        rows = list(artifact)
    else:
        raise error(
            f"view artifact {view_name!r} is not row-shaped; cannot ship it"
        )
    by_subject: dict[str, dict] = {}
    for row in rows:
        if not isinstance(row, dict) or "subject" not in row:
            raise error(
                f"view artifact {view_name!r} rows need a 'subject' key to be shipped"
            )
        by_subject[str(row["subject"])] = row
    return by_subject


@dataclass(frozen=True)
class ViewDelta:
    """One entity-level delta with the LSN range it covers.

    ``added`` / ``updated`` / ``deleted`` partition the entity ids; ``changed``
    is the union of the first two.  Journal entries and the arguments of
    ``apply_delta`` procedures are instances of this class — for scoped views
    the sets are projected onto the view's scope, so ``deleted`` also contains
    entities that migrated *out* of the scope (their rows leave the view).
    """

    added: frozenset[str] = frozenset()
    updated: frozenset[str] = frozenset()
    deleted: frozenset[str] = frozenset()
    first_lsn: int = 0
    last_lsn: int = 0

    @property
    def changed(self) -> frozenset[str]:
        """Entities whose rows must be (re)computed: added plus updated."""
        return self.added | self.updated

    def is_empty(self) -> bool:
        """Whether the delta carries no entity at all."""
        return not (self.added or self.updated or self.deleted)

    def merge(self, later: "ViewDelta") -> "ViewDelta":
        """Net effect of this delta followed by *later* (entity-wise fold)."""
        added = set(self.added)
        updated = set(self.updated)
        deleted = set(self.deleted)
        for entity_id in later.added:
            deleted.discard(entity_id)
            updated.discard(entity_id)
            added.add(entity_id)
        for entity_id in later.updated:
            if entity_id in deleted:
                # deleted then updated: net-new from the consumer's viewpoint
                deleted.discard(entity_id)
                added.add(entity_id)
            elif entity_id not in added:
                updated.add(entity_id)
        for entity_id in later.deleted:
            added.discard(entity_id)
            updated.discard(entity_id)
            deleted.add(entity_id)
        return ViewDelta(
            added=frozenset(added),
            updated=frozenset(updated),
            deleted=frozenset(deleted),
            first_lsn=min(self.first_lsn, later.first_lsn) or later.first_lsn,
            last_lsn=max(self.last_lsn, later.last_lsn),
        )


@dataclass(frozen=True)
class DeltaApplyResult:
    """An ``apply_delta`` outcome that refines the journaled delta.

    A plain ``apply_delta`` return value is the new artifact, and the manager
    journals the scope-projected *input* delta — correct for entity-scoped
    views whose output rows are keyed by the very entities that changed.  A
    join-shaped view breaks that identity: a delta on the *right* input
    changes output rows keyed by *left* subjects, so journaling the input
    delta would ship the wrong subjects to replicas.  Returning a
    ``DeltaApplyResult`` instead lets the builder name the **output-row**
    delta (which subjects were added / updated / deleted in the artifact);
    the manager journals and ships exactly that, while still advancing the
    view's pre-delete scope snapshot from the input delta.

    The output delta must satisfy the same incremental-procedure contract:
    artifact rows outside ``delta.changed | delta.deleted`` are byte-identical
    to a from-scratch rebuild.
    """

    artifact: object
    delta: ViewDelta


class DeltaJournal:
    """Applied-delta history of one view, LSN-ascending and bounded.

    ``floor_lsn`` marks the position below which history is unavailable —
    either because it was never recorded (full ``create`` rebuilds truncate
    the journal) or because compaction merged it away.  :meth:`since` answers
    "what changed after LSN *n*" for consumers that serve version *n*, or
    ``None`` when the journal cannot cover the gap (forcing a full reload).
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 2:
            raise ViewError("delta journal needs room for at least two entries")
        self.max_entries = max_entries
        self.entries: list[ViewDelta] = []
        self.floor_lsn = 0
        self.appends = 0
        self.compactions = 0

    def append(self, delta: ViewDelta) -> None:
        """Record one applied delta (no-op for empty deltas)."""
        if delta.is_empty():
            return
        self.entries.append(delta)
        self.appends += 1
        if len(self.entries) > self.max_entries:
            self._compact()

    def truncate(self, lsn: int) -> None:
        """Forget all history: the artifact changed by an unknown extent."""
        self.entries.clear()
        self.floor_lsn = max(self.floor_lsn, lsn)

    def since(self, lsn: int) -> ViewDelta | None:
        """Net delta after *lsn*, or ``None`` when history does not reach back."""
        if lsn < self.floor_lsn:
            return None
        merged = ViewDelta(first_lsn=lsn, last_lsn=lsn)
        for entry in self.entries:
            if entry.last_lsn > lsn:
                merged = merged.merge(entry)
        return merged

    def high_water_mark(self) -> int:
        """The highest LSN the journal has recorded history up to."""
        if self.entries:
            return self.entries[-1].last_lsn
        return self.floor_lsn

    def _compact(self) -> None:
        """Merge the oldest half of the journal into a single entry."""
        keep_from = len(self.entries) // 2
        merged = self.entries[0]
        for entry in self.entries[1:keep_from]:
            merged = merged.merge(entry)
        self.entries[:keep_from] = [merged]
        self.compactions += 1


@dataclass(frozen=True)
class JournalEvent:
    """One committed journal transition, published to journal listeners.

    ``kind`` is ``"append"`` (an incremental delta was journaled — ``delta``
    carries the scope-projected entities), ``"advance"`` (a flush proved the
    view unaffected and only moved its watermark to ``lsn`` — shipped copies
    advance their applied LSN without touching a row), ``"truncate"`` (the
    view was rebuilt from scratch; history restarts at ``lsn`` and any
    shipped copy must resync from the artifact), or ``"drop"`` (the
    materialization was removed; shipped copies must stop serving the view).
    ``revision`` identifies the state lineage so consumers notice
    redefinitions.
    """

    kind: str
    view_name: str
    lsn: int
    revision: int
    delta: ViewDelta | None = None


JournalListener = Callable[[JournalEvent], None]


@dataclass
class ScopeSnapshot:
    """Pre-delete snapshot of which entities a view's scope contains.

    ``complete`` is only True when the membership was seeded from a full
    entity enumeration; otherwise deletions stay conservative for the view.
    """

    members: set[str] = field(default_factory=set)
    complete: bool = False


@dataclass
class ViewContext:
    """Execution context handed to view procedures.

    ``engines`` exposes the Graph Engine's stores by name (``analytics``,
    ``entity_store``, ``text_index``, ``vector_db``, ``triples``, ...);
    ``artifacts`` holds the materialized results of dependency views (during
    maintenance it also holds the view's own previous artifact, which
    ``apply_delta`` procedures may patch in place).
    """

    engines: dict[str, object] = field(default_factory=dict)
    artifacts: dict[str, object] = field(default_factory=dict)

    def engine(self, name: str) -> object:
        """Return the engine registered under *name*."""
        try:
            return self.engines[name]
        except KeyError:
            raise ViewError(f"no engine named {name!r} available to views") from None

    def artifact(self, view_name: str) -> object:
        """Return the materialized artifact of a dependency view."""
        try:
            return self.artifacts[view_name]
        except KeyError:
            raise ViewError(
                f"view dependency {view_name!r} has not been materialized"
            ) from None


CreateProcedure = Callable[[ViewContext], object]
UpdateProcedure = Callable[[ViewContext, list[str]], object]
DeltaProcedure = Callable[[ViewContext, ViewDelta], object]
DropProcedure = Callable[[ViewContext], None]
ScopePredicate = Callable[[str], bool]


@dataclass
class ViewDefinition:
    """A registered view: procedures plus dependency, scope, and SLA metadata."""

    name: str
    engine: str
    create: CreateProcedure
    update: UpdateProcedure | None = None
    apply_delta: DeltaProcedure | None = None  # incremental builder (ViewDelta in)
    drop: DropProcedure | None = None
    dependencies: tuple[str, ...] = ()
    scope: ScopePredicate | None = None    # entity-id predicate for selectivity
    freshness_sla: float | None = None     # seconds of staleness tolerated
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ViewError("view name must be non-empty")
        if not callable(self.create):
            raise ViewError(f"view {self.name!r} needs a callable create procedure")
        if self.apply_delta is not None and not callable(self.apply_delta):
            raise ViewError(f"view {self.name!r} apply_delta must be callable")
        if self.scope is not None and not callable(self.scope):
            raise ViewError(f"view {self.name!r} scope must be callable")

    def affected_by(self, changed_entity_ids: Sequence[str]) -> bool:
        """Whether a batch of changed entities intersects this view's scope."""
        if self.scope is None:
            return True
        return any(self.scope(entity_id) for entity_id in changed_entity_ids)


#: Loads a join input's current rows: ``loader(context, None)`` enumerates the
#: whole input; ``loader(context, ids)`` returns rows for the named entities
#: only — and only for those that are *currently members* of the input, so an
#: id returning no rows reads as "left the input".  Rows are dicts carrying
#: ``subject`` plus the input's join-key column.
JoinRowLoader = Callable[[ViewContext, "Sequence[str] | None"], Sequence[dict]]


@dataclass
class JoinInput:
    """One side of a join view: a named relation with a join key.

    ``scope`` classifies which entity ids belong to this input (the same
    predicate contract as :attr:`ViewDefinition.scope`); when ``None`` the
    runtime falls back to probing the loader for every changed id, which is
    correct but less selective.
    """

    name: str
    key: str
    loader: JoinRowLoader
    scope: ScopePredicate | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ViewError("join input name must be non-empty")
        if not self.key:
            raise ViewError(f"join input {self.name!r} needs a join key")
        if not callable(self.loader):
            raise ViewError(f"join input {self.name!r} loader must be callable")
        if self.scope is not None and not callable(self.scope):
            raise ViewError(f"join input {self.name!r} scope must be callable")


class JoinViewDefinition(ViewDefinition):
    """A two-input join view maintained incrementally via delta rules.

    The delta-query/access-pattern factorization (PAPERS.md, *Conjunctive
    Queries with Free Access Patterns under Updates*) applied to the view
    layer: both inputs are materialized as hash access patterns
    (:class:`~repro.engine.analytics.JoinAccessPattern` — ``subject → rows``
    and ``join-key → subjects``), and each maintenance round evaluates the
    delta join instead of the full join::

        Δ(L ⋈ R)  is covered by recomputing   ΔL-subjects  ∪  L ⋉ keys(ΔR)

    — the left subjects the left delta names, plus the left subjects whose
    key joins a key value added *or* removed on the right.  Taking the set
    union counts the ΔL ⋈ ΔR overlap once (the "minus double-counted" term
    of the textbook rule), and each affected output row is recomputed from
    the post-delta access patterns, so maintenance costs
    O(|delta| · lookup) rather than O(|view|).

    Output rows are keyed by **left** subject: the left row's columns merged
    with the matched right rows' columns (right's non-key columns override
    left's on a name collision; multi-valued columns collapse like the
    warehouse's grouped relations).  ``how="left"`` keeps unmatched left
    subjects; ``how="inner"`` drops them.  Join-key values must be hashable.

    ``apply_delta`` returns a :class:`DeltaApplyResult` whose delta names the
    changed **output** subjects — that is what flows through the journal →
    shipping → replica path, so replicas converge even when the triggering
    entity was a right-side subject that owns no output row.  Deletions
    resolve against access-pattern membership (complete since ``create``
    seeds both inputs in full), complementing the manager's pre-delete scope
    snapshots which decide that the view is affected at all.

    The instance holds the access-pattern state: register one instance with
    one manager (the usual catalog arrangement); ``create`` reseeds the
    state from scratch, so redefinitions and forced rebuilds stay safe.
    """

    def __init__(
        self,
        name: str,
        left: JoinInput,
        right: JoinInput,
        how: str = "left",
        engine: str = "analytics",
        dependencies: tuple[str, ...] = (),
        freshness_sla: float | None = None,
        description: str = "",
    ) -> None:
        if how not in ("inner", "left"):
            raise ViewError(f"join view {name!r}: unsupported join type {how!r}")
        if left.name == right.name:
            raise ViewError(f"join view {name!r}: input names must differ")
        self.left = left
        self.right = right
        self.how = how
        self._left_index = JoinAccessPattern(left.name, left.key)
        self._right_index = JoinAccessPattern(right.name, right.key)
        self.full_builds = 0        # create-path rebuilds (initial + forced)
        self.delta_rounds = 0       # apply_delta maintenance rounds
        self.rows_recomputed = 0    # output rows recomputed across all rounds
        self.noop_rows = 0          # affected rows whose recompute changed nothing
        scope: ScopePredicate | None = None
        if left.scope is not None and right.scope is not None:
            left_scope, right_scope = left.scope, right.scope

            def scope(entity_id: str) -> bool:
                return left_scope(entity_id) or right_scope(entity_id)

        super().__init__(
            name=name,
            engine=engine,
            create=self._create,
            apply_delta=self._apply_delta,
            dependencies=dependencies,
            scope=scope,
            freshness_sla=freshness_sla,
            description=description or (
                f"{how} join of {left.name!r} and {right.name!r} on "
                f"{left.key!r} = {right.key!r}, delta-maintained"
            ),
        )

    # ------------------------------------------------------------------ #
    # procedures (bound into the ViewDefinition slots)
    # ------------------------------------------------------------------ #
    def _create(self, context: ViewContext) -> dict[str, dict]:
        """Full rebuild: reseed both access patterns, join every left subject."""
        self._left_index.rebuild(self.left.loader(context, None))
        self._right_index.rebuild(self.right.loader(context, None))
        artifact: dict[str, dict] = {}
        for subject in self._left_index.subjects():
            row = self._join_row(subject)
            if row is not None:
                artifact[subject] = row
        self.full_builds += 1
        self.rows_recomputed += len(self._left_index)
        return artifact

    def _apply_delta(self, context: ViewContext, delta: ViewDelta) -> DeltaApplyResult:
        """One delta-join round: classify, reload, probe, recompute affected."""
        previous = context.artifact(self.name)
        if not isinstance(previous, dict):
            raise ViewError(
                f"join view {self.name!r} artifact must be a subject → row dict"
            )
        changed = sorted(delta.changed)
        deleted = sorted(delta.deleted)
        affected: set[str] = set()
        probe_keys: set[object] = set()
        for view_input, index in (
            (self.left, self._left_index),
            (self.right, self._right_index),
        ):
            touched = self._touched(view_input, index, changed, deleted)
            reload_ids = [e for e in touched if e not in delta.deleted]
            fresh: dict[str, list[dict]] = {}
            if reload_ids:
                for row in view_input.loader(context, reload_ids):
                    fresh.setdefault(str(row.get("subject", "")), []).append(row)
            for entity_id in sorted(touched):
                old_keys, new_keys = index.replace_subject_rows(
                    entity_id, fresh.get(entity_id, [])
                )
                if index is self._left_index:
                    affected.add(entity_id)
                else:
                    probe_keys |= old_keys | new_keys
        # Probe after both inputs applied their delta: the recompute below
        # must see post-delta state on both sides.
        affected |= self._left_index.subjects_for_keys(probe_keys)
        artifact = dict(previous)
        added: set[str] = set()
        updated: set[str] = set()
        removed: set[str] = set()
        for subject in sorted(affected):
            new_row = self._join_row(subject)
            old_row = previous.get(subject)
            if new_row is None:
                if old_row is not None:
                    del artifact[subject]
                    removed.add(subject)
                else:
                    self.noop_rows += 1
            elif old_row is None:
                artifact[subject] = new_row
                added.add(subject)
            elif new_row != old_row:
                artifact[subject] = new_row
                updated.add(subject)
            else:
                self.noop_rows += 1
        self.delta_rounds += 1
        self.rows_recomputed += len(affected)
        return DeltaApplyResult(
            artifact=artifact,
            delta=ViewDelta(
                added=frozenset(added),
                updated=frozenset(updated),
                deleted=frozenset(removed),
                first_lsn=delta.first_lsn,
                last_lsn=delta.last_lsn,
            ),
        )

    # ------------------------------------------------------------------ #
    # delta-rule internals
    # ------------------------------------------------------------------ #
    def _touched(
        self,
        view_input: JoinInput,
        index: JoinAccessPattern,
        changed: list[str],
        deleted: list[str],
    ) -> set[str]:
        """The delta's entities this input must reload or retract.

        A changed id is touched when the input's scope claims it (it may be
        a new member) or the access pattern already holds it (it may have
        migrated out — the loader answering no rows retracts it).  A deleted
        id is touched only when it is a current member: access-pattern
        membership is complete (seeded by ``create``), which is the per-input
        analogue of the manager's pre-delete scope snapshot.
        """
        touched: set[str] = set()
        for entity_id in changed:
            if (
                view_input.scope is None
                or view_input.scope(entity_id)
                or index.contains(entity_id)
            ):
                touched.add(entity_id)
        for entity_id in deleted:
            if index.contains(entity_id):
                touched.add(entity_id)
        return touched

    def _join_row(self, subject: str) -> dict | None:
        """The view's current output row for one left subject (None = no row).

        Deterministic regardless of maintenance history: left rows in load
        order, matched right rows grouped by partner subject in sorted order,
        multi-values collapsed — ``create`` and ``apply_delta`` produce
        byte-identical rows, which the seeded equivalence suite asserts.
        """
        left_rows = self._left_index.rows_of(subject)
        if not left_rows:
            return None
        left_values: dict[str, list] = {}
        matched: list[dict] = []
        for left_row in left_rows:
            for column, value in left_row.items():
                if column != "subject":
                    left_values.setdefault(column, []).append(value)
            key_value = left_row[self.left.key]
            for partner in sorted(self._right_index.subjects_for_keys([key_value])):
                for right_row in self._right_index.rows_of(partner):
                    if right_row[self.right.key] == key_value:
                        matched.append(right_row)
        if not matched and self.how == "inner":
            return None
        row: dict = {"subject": subject}
        for column, values in left_values.items():
            row[column] = _collapse(list(values))
        right_values: dict[str, list] = {}
        for right_row in matched:
            for column, value in right_row.items():
                if column not in ("subject", self.right.key):
                    right_values.setdefault(column, []).append(value)
        for column, values in right_values.items():
            row[column] = _collapse(list(values))
        return row

    def ivm_stats(self) -> dict[str, int]:
        """Counters proving the delta rules did the work, not rebuilds."""
        return {
            "full_builds": self.full_builds,
            "delta_rounds": self.delta_rounds,
            "rows_recomputed": self.rows_recomputed,
            "noop_rows": self.noop_rows,
            "left_size": len(self._left_index),
            "right_size": len(self._right_index),
            "index_lookups": self._left_index.lookups + self._right_index.lookups,
        }


@dataclass
class ViewState:
    """Runtime state of one registered view."""

    materialized: bool = False
    artifact: object = None
    last_built_at: float = 0.0     # manager-clock stamp (monotonic by default)
    last_build_seconds: float = 0.0
    built_at_lsn: int = 0          # operation-log position the artifact reflects
    builds: int = 0
    incremental_updates: int = 0   # maintenance runs through the update procedure
    delta_applies: int = 0         # maintenance runs through apply_delta
    skipped_updates: int = 0       # flushes that proved no rebuild was needed
    invalidations: int = 0         # cascade invalidations (drop / re-register)
    revision: int = 0              # bumped when state is recreated (redefinition)
    journal: DeltaJournal = field(default_factory=DeltaJournal)


class ViewCatalog:
    """Central registry of view definitions and their dependency graph."""

    def __init__(self) -> None:
        self._definitions: dict[str, ViewDefinition] = {}
        self._managers: list["ViewManager"] = []

    def attach(self, manager: "ViewManager") -> None:
        """Attach a manager so lifecycle events can reset its runtime state."""
        if manager not in self._managers:
            self._managers.append(manager)

    def register(self, definition: ViewDefinition, replace: bool = True) -> ViewDefinition:
        """Register a view; dependencies must already be registered.

        Re-registering an existing name with ``replace=True`` (the default)
        swaps the definition and resets the runtime state of the view *and*
        of every transitive dependent in all attached managers — stale state
        built against the old definition must never survive.  With
        ``replace=False`` re-registration is rejected outright.
        """
        for dependency in definition.dependencies:
            if dependency != definition.name and dependency not in self._definitions:
                raise ViewError(
                    f"view {definition.name!r} depends on unknown view {dependency!r}"
                )
        existing = self._definitions.get(definition.name)
        if existing is None:
            self._definitions[definition.name] = definition
            if not nx.is_directed_acyclic_graph(self.dependency_graph()):
                del self._definitions[definition.name]
                raise ViewError(
                    f"registering view {definition.name!r} would create a dependency cycle"
                )
            return definition
        if not replace:
            raise ViewError(f"view {definition.name!r} is already registered")
        old_dependents = self.dependents_of(definition.name)
        self._definitions[definition.name] = definition
        if not nx.is_directed_acyclic_graph(self.dependency_graph()):
            self._definitions[definition.name] = existing
            raise ViewError(
                f"re-registering view {definition.name!r} would create a dependency cycle"
            )
        affected = {definition.name, *old_dependents, *self.dependents_of(definition.name)}
        for manager in self._managers:
            manager.reset_views(affected)
        return definition

    def get(self, name: str) -> ViewDefinition:
        """Return the definition registered under *name*."""
        try:
            return self._definitions[name]
        except KeyError:
            raise ViewError(f"unknown view {name!r}") from None

    def names(self) -> list[str]:
        """All registered view names."""
        return sorted(self._definitions)

    def dependency_graph(self) -> nx.DiGraph:
        """Directed graph with an edge dependency → dependent view."""
        graph = nx.DiGraph()
        for name, definition in self._definitions.items():
            graph.add_node(name)
            for dependency in definition.dependencies:
                graph.add_edge(dependency, name)
        return graph

    def execution_order(self, targets: Iterable[str] | None = None) -> list[str]:
        """Topological execution order covering *targets* and their dependencies."""
        graph = self.dependency_graph()
        if not nx.is_directed_acyclic_graph(graph):
            raise ViewError("view dependency graph contains a cycle")
        if targets is None:
            return list(nx.topological_sort(graph))
        needed: set[str] = set()
        frontier = list(targets)
        while frontier:
            name = frontier.pop()
            if name in needed:
                continue
            needed.add(name)
            frontier.extend(self.get(name).dependencies)
        return [name for name in nx.topological_sort(graph) if name in needed]

    def dependents_of(self, name: str) -> list[str]:
        """Views that (transitively) depend on *name*."""
        graph = self.dependency_graph()
        if name not in graph:
            return []
        return sorted(nx.descendants(graph, name))

    def affected_closure(self, changed_entity_ids: Sequence[str]) -> list[str]:
        """Views whose scope matches the changed entities, plus all dependents.

        Returned in topological order; views with no declared scope are
        conservatively considered affected by any change.  This is the
        snapshot-free catalog-level closure; the manager refines it with
        scope snapshots to keep deletions selective.
        """
        affected: set[str] = set()
        for name in self.execution_order():
            definition = self.get(name)
            if any(dep in affected for dep in definition.dependencies) or (
                definition.affected_by(changed_entity_ids)
            ):
                affected.add(name)
        return [name for name in self.execution_order() if name in affected]

    def __contains__(self, name: object) -> bool:
        return name in self._definitions

    def __len__(self) -> int:
        return len(self._definitions)


class ViewManager:
    """Materialize and selectively maintain views over the engine's stores.

    ``lsn_source`` (usually the operation log's ``head_lsn``) stamps every
    build with the log position it reflects; ``metadata`` mirrors the per-view
    watermarks and journal high-water marks into the platform metadata store;
    ``batch_size`` turns on automatic flushing of the pending changed-entity
    delta; ``entity_source`` enumerates current entity ids so scoped views get
    complete pre-delete scope snapshots; ``max_workers`` > 1 flushes
    independent dependency-graph branches on a thread pool.
    """

    def __init__(
        self,
        catalog: ViewCatalog,
        engines: dict[str, object],
        metadata: MetadataStore | None = None,
        lsn_source: Callable[[], int] | None = None,
        batch_size: int | None = None,
        entity_source: Callable[[], Iterable[str]] | None = None,
        max_workers: int | None = None,
        journal_limit: int = 256,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if batch_size is not None and batch_size <= 0:
            raise ViewError("view maintenance batch_size must be positive")
        if max_workers is not None and max_workers <= 0:
            raise ViewError("view maintenance max_workers must be positive")
        if clock is not None and not callable(clock):
            raise ViewError("view maintenance clock must be callable")
        # Freshness math (last_built_at, stale_views) runs on a monotonic
        # clock: a wall-clock jump (NTP step, DST) must not mark every view
        # stale or fresh at once, and tests can fake time without sleeping.
        self.clock: Callable[[], float] = clock if clock is not None else time.monotonic
        self.catalog = catalog
        self.engines = engines
        self.metadata = metadata
        self.lsn_source = lsn_source
        self.batch_size = batch_size
        self.entity_source = entity_source
        self.max_workers = max_workers
        self.journal_limit = journal_limit
        self.states: dict[str, ViewState] = {}
        self.flushes = 0
        self.deltas_observed = 0
        self.maintenance_decisions = 0   # skip-or-rebuild verdicts reached
        self.maintenance_skips = 0
        self.maintenance_rebuilds = 0
        self.full_rebuilds = 0           # maintenance runs through the create fallback
        self.incremental_applies = 0     # maintenance runs through apply_delta/update
        self.delta_rows_journaled = 0    # entities across journaled maintenance deltas
        self.noop_maintenance = 0        # incremental runs that journaled an empty delta
        self._pending: set[str] = set()
        self._pending_added: set[str] = set()
        self._pending_deleted: set[str] = set()
        self._pending_lsn = 0
        self._pending_first_lsn = 0
        self._pending_forced = False
        self._pending_full = False
        self._pending_rebuild = False
        self._revision_counter = 0
        self._local_lsn = 0
        self.delta_lsn = 0          # highest LSN whose delta has been observed
        self._scope_snapshots: dict[str, ScopeSnapshot] = {}
        self._state_locks: dict[str, threading.Lock] = {}
        self._locks_guard = threading.Lock()
        self._counters_lock = threading.Lock()   # manager totals, pool-thread safe
        self._pool: ThreadPoolExecutor | None = None   # lazy, shut down on failure/close
        self.journal_listeners: list[JournalListener] = []
        # Bounded: a persistently failing listener must not grow memory.
        self.journal_listener_errors: deque[str] = deque(maxlen=256)
        catalog.attach(self)

    def add_journal_listener(self, listener: JournalListener) -> None:
        """Call *listener* with every committed :class:`JournalEvent`.

        Events fire after the per-view commit (artifact, journal, snapshot,
        watermark) released its lock, in the order the views committed.
        Listener failures are recorded in ``journal_listener_errors`` (a
        bounded deque of the most recent 256) and never unwind maintenance —
        a broken shipper must not fail a flush.
        """
        self.journal_listeners.append(listener)

    def remove_journal_listener(self, listener: JournalListener) -> None:
        """Detach a journal listener (no-op when it was never attached)."""
        try:
            self.journal_listeners.remove(listener)
        except ValueError:
            pass

    def _emit_journal_event(self, event: JournalEvent) -> None:
        for listener in self.journal_listeners:
            try:
                listener(event)
            except Exception as exc:  # noqa: BLE001 - maintenance already committed
                self.journal_listener_errors.append(
                    f"{event.kind} {event.view_name} lsn={event.lsn}: {exc}"
                )

    # -------------------------------------------------------------- #
    # materialization
    # -------------------------------------------------------------- #
    def materialize(
        self, targets: Sequence[str] | None = None, reuse_shared: bool = True
    ) -> dict[str, float]:
        """Materialize the target views (or all) and return per-view seconds.

        With ``reuse_shared=True`` every view in the dependency closure is
        built exactly once and its artifact reused by all dependents — the
        multi-query-optimization practice behind the paper's 26% saving.  With
        ``reuse_shared=False`` each target rebuilds its own dependency chain,
        emulating the naive one-pipeline-per-view deployment.
        """
        timings: dict[str, float] = {}
        if reuse_shared:
            order = self.catalog.execution_order(targets)
            context = ViewContext(engines=self.engines)
            for name in order:
                seconds = self._build_view(name, context)
                timings[name] = timings.get(name, 0.0) + seconds
            self._record_stats()
            return timings

        target_names = list(targets) if targets is not None else self.catalog.names()
        for target in target_names:
            context = ViewContext(engines=self.engines)
            for name in self.catalog.execution_order([target]):
                seconds = self._build_view(name, context)
                timings[name] = timings.get(name, 0.0) + seconds
        self._record_stats()
        return timings

    def _build_view(self, name: str, context: ViewContext) -> float:
        definition = self.catalog.get(name)
        started = time.perf_counter()
        artifact = definition.create(context)
        elapsed = time.perf_counter() - started
        context.artifacts[name] = artifact
        state = self.states.get(name)
        if state is None:
            # A fresh revision distinguishes "same LSN, new definition" for
            # consumers caching by log position (e.g. the live serving layer).
            self._revision_counter += 1
            state = ViewState(
                revision=self._revision_counter,
                journal=DeltaJournal(self.journal_limit),
            )
            self.states[name] = state
        with self._state_lock(name):
            state.materialized = True
            state.artifact = artifact
            state.last_built_at = self.clock()
            state.last_build_seconds = elapsed
            state.built_at_lsn = max(state.built_at_lsn, self.current_lsn())
            state.builds += 1
            # A from-scratch build changes the artifact by an unknown extent
            # relative to any previously served version: history restarts here.
            state.journal.truncate(state.built_at_lsn)
            self._seed_snapshot(name, definition)
            self._record_watermark(name, state)
        self._emit_journal_event(JournalEvent(
            kind="truncate", view_name=name, lsn=state.built_at_lsn,
            revision=state.revision,
        ))
        return elapsed

    # -------------------------------------------------------------- #
    # incremental maintenance
    # -------------------------------------------------------------- #
    def enqueue(
        self,
        changed_entity_ids: Iterable[str],
        lsn: int | None = None,
        deleted_entity_ids: Iterable[str] = (),
        added_entity_ids: Iterable[str] = (),
    ) -> dict[str, float]:
        """Accumulate a changed-entity delta for a later (or automatic) flush.

        *deleted_entity_ids* must name entities removed from the stores; the
        next flush resolves them against the pre-delete scope snapshots so
        only the views that actually contained them are maintained (they
        still reach ``update`` procedures as part of the changed list).
        *added_entity_ids* classifies the subset of the changed ids that are
        net-new, refining the delta journals downstream consumers read.
        Returns flush timings when the pending batch reached ``batch_size``
        and auto-flushed, an empty dict otherwise.  Deltas observed before
        any view is materialized are dropped: the initial ``create`` reads
        current store state, so those changes are already covered.
        """
        observed = int(lsn) if lsn is not None else self.current_lsn()
        self.delta_lsn = max(self.delta_lsn, observed)
        if not self._has_materialized():
            return {}
        changed = set(changed_entity_ids)
        added = set(added_entity_ids)
        deleted = set(deleted_entity_ids)
        self._pending.update(changed | added | deleted)
        # Fold the event into the pending classification with the same net
        # semantics as ViewDelta.merge: a delete followed by a re-add (or an
        # update) resurrects the entity as net-added, never as net-deleted.
        for entity_id in added:
            self._pending_deleted.discard(entity_id)
            self._pending_added.add(entity_id)
        for entity_id in changed - added:
            if entity_id in self._pending_deleted:
                self._pending_deleted.discard(entity_id)
                self._pending_added.add(entity_id)
        for entity_id in deleted:
            self._pending_added.discard(entity_id)
            self._pending_deleted.add(entity_id)
        self._pending_lsn = max(self._pending_lsn, observed)
        if not self._pending_first_lsn:
            self._pending_first_lsn = observed
        self.deltas_observed += 1
        if self.batch_size is not None and len(self._pending) >= self.batch_size:
            return self.flush()
        return {}

    def mark_full_refresh(self, lsn: int | None = None) -> None:
        """Force the next flush to treat every materialized view as affected.

        Used for operations whose changed-entity set is unknown, e.g. a
        source removal that may touch arbitrary subjects.  Because no view's
        incremental procedure can be told *which* entities changed, the flush
        rebuilds every view from scratch via ``create`` and truncates the
        delta journals.
        """
        observed = int(lsn) if lsn is not None else self.current_lsn()
        self.delta_lsn = max(self.delta_lsn, observed)
        if not self._has_materialized():
            return
        self._pending_full = True
        self._pending_rebuild = True
        self._pending_lsn = max(self._pending_lsn, observed)
        if not self._pending_first_lsn:
            self._pending_first_lsn = observed

    def flush(self) -> dict[str, float]:
        """Maintain the affected closure of the pending delta.

        Only views affected by the batched delta (directly through their
        scope or snapshot, or transitively through an affected dependency)
        are maintained; every other materialized view merely advances its LSN
        watermark and counts a skipped update.  A view already at or beyond
        the batch's target LSN is not rebuilt unless the flush was forced by a
        direct :meth:`update` call.  Independent branches of the affected
        closure run in parallel when ``max_workers`` allows.
        """
        if not (self._pending or self._pending_full or self._pending_forced):
            return {}
        changed = sorted(self._pending)
        added = set(self._pending_added)
        deleted = set(self._pending_deleted)
        forced = self._pending_forced
        full = self._pending_full
        rebuild = self._pending_rebuild
        first_lsn = self._pending_first_lsn
        self._local_lsn += 1
        target_lsn = self._pending_lsn or self.current_lsn()
        delta = ViewDelta(
            added=frozenset(added - deleted),
            updated=frozenset(set(changed) - added - deleted),
            deleted=frozenset(deleted),
            first_lsn=first_lsn or target_lsn,
            last_lsn=target_lsn,
        )
        self._pending = set()
        self._pending_added = set()
        self._pending_deleted = set()
        self._pending_lsn = 0
        self._pending_first_lsn = 0
        self._pending_forced = False
        self._pending_full = False
        self._pending_rebuild = False

        try:
            return self._flush_batch(changed, delta, target_lsn, forced, full, rebuild)
        except Exception:
            # A failed flush must not lose the delta: restore it (merged with
            # anything enqueued by reentrant observers) so a retry still
            # covers every pending change.  The restore must respect the fold
            # semantics — a reentrant re-add (or re-delete) of one of the
            # batch's ids wins over the batch's older classification.
            reentrant_added = set(self._pending_added)
            reentrant_deleted = set(self._pending_deleted)
            self._pending.update(changed)
            self._pending_added.update(added - reentrant_deleted)
            self._pending_deleted.update(deleted - reentrant_added)
            self._pending_lsn = max(self._pending_lsn, target_lsn)
            self._pending_first_lsn = (
                min(self._pending_first_lsn, first_lsn)
                if self._pending_first_lsn and first_lsn
                else (self._pending_first_lsn or first_lsn)
            )
            self._pending_forced = self._pending_forced or forced
            self._pending_full = self._pending_full or full
            self._pending_rebuild = self._pending_rebuild or rebuild
            raise

    def _flush_batch(
        self,
        changed: list[str],
        delta: ViewDelta,
        target_lsn: int,
        forced: bool,
        full: bool,
        rebuild: bool,
    ) -> dict[str, float]:
        closure = None if full else self._affected_closure(delta)
        to_maintain: list[str] = []
        for name in self.catalog.execution_order():
            state = self.states.get(name)
            if state is None or not state.materialized:
                continue
            if not (full or name in closure):
                self.maintenance_decisions += 1
                self.maintenance_skips += 1
                state.skipped_updates += 1
                if target_lsn > state.built_at_lsn:
                    with self._state_lock(name):
                        state.built_at_lsn = target_lsn
                        self._record_watermark(name, state)
                    # Watermark-only progress still ships: replicas must
                    # advance their applied LSN or consistency-gated reads
                    # would reject them for changes that never touched the
                    # view ("empty delta is a positive answer").
                    self._emit_journal_event(JournalEvent(
                        kind="advance", view_name=name, lsn=target_lsn,
                        revision=state.revision,
                    ))
                continue
            if not forced and state.built_at_lsn >= target_lsn:
                self.maintenance_decisions += 1
                self.maintenance_skips += 1
                state.skipped_updates += 1
                continue
            definition = self.catalog.get(name)
            self._require_dependencies(name, definition)
            to_maintain.append(name)
        timings = self._run_schedule(to_maintain, changed, delta, target_lsn, rebuild)
        self.flushes += 1
        self._record_stats()
        return timings

    def _run_schedule(
        self,
        names: list[str],
        changed: list[str],
        delta: ViewDelta,
        target_lsn: int,
        rebuild: bool,
    ) -> dict[str, float]:
        """Run maintenance over the topological antichains of *names*.

        Views inside one antichain (a ``topological_generations`` layer) have
        no dependency edges between them, so they may run concurrently; the
        barrier between antichains guarantees a dependent never starts before
        every dependency has committed its artifact.  A failing view blocks
        its own transitive dependents but sibling branches run to completion
        before the first failure is re-raised (in topological order).
        """
        timings: dict[str, float] = {}
        if not names:
            return timings
        context = ViewContext(engines=self.engines, artifacts=self._artifacts())
        subgraph = self.catalog.dependency_graph().subgraph(names)
        failures: dict[str, Exception] = {}
        blocked: set[str] = set()
        for generation in nx.topological_generations(subgraph):
            runnable = []
            for name in sorted(generation):
                dependencies = self.catalog.get(name).dependencies
                if any(dep in failures or dep in blocked for dep in dependencies):
                    blocked.add(name)
                    continue
                runnable.append(name)
            if not runnable:
                continue
            pool = self._flush_pool() if len(runnable) > 1 else None
            if pool is not None:
                futures = {
                    name: pool.submit(
                        self._maintain_one, name, context, changed, delta,
                        target_lsn, rebuild,
                    )
                    for name in runnable
                }
                for name, future in futures.items():
                    try:
                        timings[name] = future.result()
                    except Exception as exc:  # noqa: BLE001 - collected below
                        failures[name] = exc
            else:
                for name in runnable:
                    try:
                        timings[name] = self._maintain_one(
                            name, context, changed, delta, target_lsn, rebuild
                        )
                    except Exception as exc:  # noqa: BLE001 - collected below
                        failures[name] = exc
        if failures:
            # Deterministic executor lifecycle: a failed flush must not leave
            # worker threads behind for callers that abandon the manager after
            # the error.  The pool is recreated lazily if a retry needs it.
            self.close()
            for name in names:
                if name in failures:
                    raise failures[name]
        return timings

    def _maintain_one(
        self,
        name: str,
        context: ViewContext,
        changed: list[str],
        delta: ViewDelta,
        target_lsn: int,
        rebuild: bool,
    ) -> float:
        """Maintain one view and commit journal + watermark atomically."""
        definition = self.catalog.get(name)
        state = self.states[name]
        projected = None if rebuild else self._project_delta(definition, delta)
        incremental = not rebuild and (
            definition.apply_delta is not None or definition.update is not None
        )
        if incremental and projected.is_empty() and not delta.is_empty():
            # Only transitively affected, with nothing in its own scope: the
            # dependency change's extent relative to this view's rows is
            # unknown.  An apply_delta call would keep a stale artifact, and
            # an update call may change rows while the empty projection
            # journals nothing — either way downstream consumers would read a
            # false "nothing changed".  Rebuild (and truncate) instead.
            incremental = False
        started = time.perf_counter()
        journaled = projected
        if not incremental:
            kind = "create"
            artifact = definition.create(context)
        elif definition.apply_delta is not None:
            kind = "delta"
            artifact = definition.apply_delta(context, projected)
            if isinstance(artifact, DeltaApplyResult):
                # The builder refined the journaled delta to the output rows
                # it actually changed (a join view's output subjects are not
                # its input subjects).  The scope snapshot still advances
                # from the input-level projection below.
                journaled = artifact.delta
                artifact = artifact.artifact
        else:
            kind = "update"
            artifact = definition.update(context, list(changed))
        elapsed = time.perf_counter() - started
        with self._state_lock(name):
            if kind == "create":
                state.builds += 1
            elif kind == "delta":
                state.delta_applies += 1
            else:
                state.incremental_updates += 1
            if artifact is not None:
                state.artifact = artifact
                context.artifacts[name] = artifact
            state.last_built_at = self.clock()
            state.last_build_seconds = elapsed
            if kind == "create":
                # The rebuild's change extent is unknown to consumers — even a
                # delta-driven create may touch rows the delta does not name.
                state.journal.truncate(target_lsn)
                if rebuild:
                    self._seed_snapshot(name, definition)
                elif projected is not None:
                    self._update_snapshot(name, definition, projected)
            else:
                state.journal.append(journaled)
                self._update_snapshot(name, definition, projected)
            state.built_at_lsn = max(state.built_at_lsn, target_lsn)
            self._record_watermark(name, state)
        if kind == "create":
            self._emit_journal_event(JournalEvent(
                kind="truncate", view_name=name, lsn=state.built_at_lsn,
                revision=state.revision,
            ))
        else:
            self._emit_journal_event(JournalEvent(
                kind="append", view_name=name, lsn=state.built_at_lsn,
                revision=state.revision, delta=journaled,
            ))
        with self._counters_lock:
            self.maintenance_decisions += 1
            self.maintenance_rebuilds += 1
            if kind == "create":
                self.full_rebuilds += 1
            else:
                self.incremental_applies += 1
                self.delta_rows_journaled += (
                    len(journaled.added) + len(journaled.updated) + len(journaled.deleted)
                )
                if journaled.is_empty():
                    self.noop_maintenance += 1
        return elapsed

    def update(
        self,
        changed_entity_ids: Sequence[str],
        lsn: int | None = None,
        selective: bool = True,
    ) -> dict[str, float]:
        """Immediately maintain views for the changed entities.

        With ``selective=True`` only the affected closure is rebuilt; with
        ``selective=False`` every materialized view is maintained regardless
        of scope (the pre-selective behavior, kept for A/B measurement).
        Views without an ``apply_delta`` or ``update`` procedure are rebuilt
        from scratch, which is the fallback the paper allows for
        non-incrementally-maintainable views (e.g. iterative algorithms).
        """
        self._pending.update(changed_entity_ids)
        self._pending_forced = True
        if not selective:
            self._pending_full = True
        if lsn is not None:
            self._pending_lsn = max(self._pending_lsn, int(lsn))
        return self.flush()

    def _affected_closure(self, delta: ViewDelta) -> set[str]:
        """Views the delta affects, resolved against pre-delete snapshots.

        A scoped root is affected when the delta's changed ids intersect its
        scope or its snapshot (an entity migrating out of scope must leave
        the view), or when a deleted id was a snapshot member.  Deletions
        against an incomplete snapshot stay conservative.  Unscoped views are
        affected by any change, including any deletion.

        Note the snapshot-membership check is only as complete as the
        snapshot: without ``entity_source``, membership covers delta-observed
        entities only, so a create-era entity migrating out of scope is not
        detected (documented limitation; supply ``entity_source`` for full
        migration tracking).
        """
        affected: set[str] = set()
        has_changes = bool(delta.changed) or bool(delta.deleted)
        for name in self.catalog.execution_order():
            definition = self.catalog.get(name)
            if any(dep in affected for dep in definition.dependencies):
                affected.add(name)
                continue
            if definition.scope is None:
                if has_changes:
                    affected.add(name)
                continue
            snapshot = self._scope_snapshots.get(name)
            members = snapshot.members if snapshot is not None else set()
            if any(definition.scope(e) for e in delta.changed):
                affected.add(name)
                continue
            if any(e in members for e in delta.changed):
                affected.add(name)              # entity left the scope
                continue
            if delta.deleted:
                if snapshot is None or not snapshot.complete:
                    affected.add(name)          # cannot prove the delete missed us
                elif any(e in members for e in delta.deleted):
                    affected.add(name)
        return affected

    def _project_delta(self, definition: ViewDefinition, delta: ViewDelta) -> ViewDelta:
        """Restrict a delta to one view's scope using its pre-delete snapshot."""
        if definition.scope is None:
            return delta
        snapshot = self._scope_snapshots.get(definition.name)
        members = snapshot.members if snapshot is not None else set()
        complete = snapshot.complete if snapshot is not None else False
        added: set[str] = set()
        updated: set[str] = set()
        deleted: set[str] = set()
        for entity_id in delta.changed:
            if definition.scope(entity_id):
                (updated if entity_id in members else added).add(entity_id)
            elif entity_id in members:
                deleted.add(entity_id)          # migrated out of scope
        for entity_id in delta.deleted:
            if entity_id in members or not complete:
                deleted.add(entity_id)
        return ViewDelta(
            added=frozenset(added),
            updated=frozenset(updated),
            deleted=frozenset(deleted),
            first_lsn=delta.first_lsn,
            last_lsn=delta.last_lsn,
        )

    def _seed_snapshot(self, name: str, definition: ViewDefinition) -> None:
        """(Re)seed a view's scope snapshot from the entity enumeration."""
        if definition.scope is None:
            self._scope_snapshots.pop(name, None)
            return
        if self.entity_source is None:
            snapshot = self._scope_snapshots.setdefault(name, ScopeSnapshot())
            snapshot.complete = False
            return
        members = {e for e in self.entity_source() if definition.scope(e)}
        self._scope_snapshots[name] = ScopeSnapshot(members=members, complete=True)

    def _update_snapshot(
        self, name: str, definition: ViewDefinition, projected: ViewDelta
    ) -> None:
        """Advance scope membership by one applied (already projected) delta."""
        if definition.scope is None:
            return
        snapshot = self._scope_snapshots.setdefault(name, ScopeSnapshot())
        snapshot.members |= projected.added | projected.updated
        snapshot.members -= projected.deleted

    def _require_dependencies(self, name: str, definition: ViewDefinition) -> None:
        missing = [
            dependency
            for dependency in definition.dependencies
            if not self.is_materialized(dependency)
        ]
        if missing:
            raise ViewError(
                f"cannot maintain view {name!r}: dependencies {missing} have never "
                "been materialized — materialize them before updating dependents"
            )

    # -------------------------------------------------------------- #
    # lifecycle
    # -------------------------------------------------------------- #
    def drop(self, name: str, cascade: bool = True) -> list[str]:
        """Drop one view's materialization, cascading to its dependents.

        Transitive dependents are invalidated (their drop procedures run, the
        artifacts are discarded) in reverse topological order so no dependent
        keeps serving a result built from the dropped view.  With
        ``cascade=False`` the drop is rejected while materialized dependents
        exist.  Returns the names whose materialization was removed.
        """
        definition = self.catalog.get(name)
        dependents = self.catalog.dependents_of(name)
        materialized_dependents = [d for d in dependents if self.is_materialized(d)]
        if not cascade and materialized_dependents:
            raise ViewError(
                f"cannot drop view {name!r}: materialized dependents "
                f"{materialized_dependents} would go stale (use cascade=True)"
            )
        removed: list[str] = []
        if dependents:
            dependent_set = set(dependents)
            order = [n for n in self.catalog.execution_order() if n in dependent_set]
            for dependent in reversed(order):
                if self._invalidate(dependent):
                    removed.append(dependent)
        state = self.states.get(name)
        if definition.drop is not None and state is not None and state.materialized:
            definition.drop(ViewContext(engines=self.engines, artifacts=self._artifacts()))
        if state is not None and state.materialized:
            removed.append(name)
        self.states.pop(name, None)
        self._scope_snapshots.pop(name, None)
        self._clear_watermark(name)
        if state is not None:
            self._emit_journal_event(JournalEvent(
                kind="drop", view_name=name, lsn=state.built_at_lsn,
                revision=state.revision,
            ))
        return removed

    def _invalidate(self, name: str) -> bool:
        """Invalidate one view's materialization; returns True when it was live."""
        state = self.states.get(name)
        if state is None or not state.materialized:
            return False
        definition = self.catalog.get(name) if name in self.catalog else None
        if definition is not None and definition.drop is not None:
            definition.drop(ViewContext(engines=self.engines, artifacts=self._artifacts()))
        state.materialized = False
        state.artifact = None
        state.invalidations += 1
        self._scope_snapshots.pop(name, None)
        self._clear_watermark(name)
        self._emit_journal_event(JournalEvent(
            kind="drop", view_name=name, lsn=state.built_at_lsn,
            revision=state.revision,
        ))
        return True

    def reset_views(self, names: Iterable[str]) -> None:
        """Discard runtime state for *names* (called on re-registration).

        The old artifacts were built against definitions that no longer
        exist, so the state is removed outright; drop procedures are not run
        because they belong to the replaced definitions.
        """
        for name in names:
            state = self.states.pop(name, None)
            self._scope_snapshots.pop(name, None)
            self._clear_watermark(name)
            if state is not None:
                self._emit_journal_event(JournalEvent(
                    kind="drop", view_name=name, lsn=state.built_at_lsn,
                    revision=state.revision,
                ))

    # -------------------------------------------------------------- #
    # access
    # -------------------------------------------------------------- #
    def artifact(self, name: str) -> object:
        """Return the materialized artifact of *name*."""
        state = self.states.get(name)
        if state is None or not state.materialized:
            raise ViewError(f"view {name!r} has not been materialized")
        return state.artifact

    def is_materialized(self, name: str) -> bool:
        """Whether *name* currently has a materialized artifact."""
        state = self.states.get(name)
        return bool(state and state.materialized)

    def built_at_lsn(self, name: str) -> int:
        """The operation-log position the view's artifact reflects."""
        state = self.states.get(name)
        return state.built_at_lsn if state is not None else 0

    def state_revision(self, name: str) -> int:
        """Identifier of the view's state lineage; changes on redefinition.

        Lets LSN-caching consumers notice that an artifact was rebuilt under
        a new definition even when the log position did not move.
        """
        state = self.states.get(name)
        return state.revision if state is not None else 0

    def view_deltas_since(
        self, name: str, lsn: int, strict: bool = False
    ) -> ViewDelta | None:
        """Net per-view delta applied after *lsn*, from the view's journal.

        Returns ``None`` when the journal cannot cover the gap (the view was
        rebuilt from scratch since *lsn*, compaction passed it, or the view
        is unknown/unmaterialized) — the consumer must fall back to a full
        artifact reload.  An *empty* delta is a positive answer: nothing in
        the artifact changed, only the watermark moved.

        With ``strict=True`` a journal that cannot reach back to *lsn* for a
        *materialized* view raises :class:`~repro.errors.JournalGapError`
        instead of returning ``None``, so resync-capable consumers (the
        serving fleet, the live layer) can tell "history was lost, resync"
        apart from "the view does not exist here".
        """
        state = self.states.get(name)
        if state is None or not state.materialized:
            return None
        with self._state_lock(name):
            merged = state.journal.since(lsn)
            if merged is None and strict:
                raise JournalGapError(name, lsn, state.journal.floor_lsn)
            return merged

    def view_rows_snapshot(self, name: str) -> tuple[int, int, dict[str, dict]]:
        """Atomic ``(built_at_lsn, revision, subject → row copy)`` snapshot.

        Taken under the view's state lock — the same lock maintenance
        commits hold — so a concurrent flush can neither mutate the rows
        mid-iteration nor leave the LSN and the rows from different
        commits.  Rows are shallow-copied: auditors hash them after the
        lock is released, and ``apply_delta`` builders may patch artifact
        dicts in place.  Raises :class:`~repro.errors.ViewError` when the
        artifact is not row-shaped or not materialized.
        """
        with self._state_lock(name):
            rows = {
                subject: dict(row)
                for subject, row in rows_by_subject(self.artifact(name), name).items()
            }
            state = self.states[name]
            return state.built_at_lsn, state.revision, rows

    def view_checksums(self, name: str) -> dict[str, str]:
        """Per-subject row checksums of a materialized row-shaped artifact.

        The primary-side half of the anti-entropy contract: a replica holding
        the same rows produces the same digests.  Raises
        :class:`~repro.errors.ViewError` when the artifact is not row-shaped
        (nothing to audit row-wise) or not materialized.
        """
        # Hash in one pass under the state lock: the checksums only need a
        # consistent read of each row, so the per-row dict copies a full
        # snapshot makes for post-lock hashing are wasted work here.
        with self._state_lock(name):
            rows = rows_by_subject(self.artifact(name), name)
            return {subject: row_checksum(row) for subject, row in rows.items()}

    def view_digest(
        self, name: str, snapshot: tuple[int, int, dict[str, dict]] | None = None
    ) -> str:
        """One content digest over the view's rows, recorded as a journal mark.

        Combines the row checksums of one atomic snapshot (*snapshot* when a
        caller — the anti-entropy auditor — already took one;
        :meth:`view_rows_snapshot` otherwise) into a single digest and
        mirrors it — stamped with the **snapshot's** LSN, never a re-read
        one a concurrent flush could have moved — into the metadata store's
        checksum namespace, so audits leave an observable trail next to the
        watermark and journal marks.  This is the one definition of the
        recorded digest; every writer of the checksum namespace goes through
        it.
        """
        if snapshot is None:
            snapshot = self.view_rows_snapshot(name)
        lsn, _, rows = snapshot
        digest = combine_checksums(
            {subject: row_checksum(row) for subject, row in rows.items()}
        )
        if self.metadata is not None:
            self.metadata.update_view_checksum(name, lsn, digest)
        return digest

    def scope_snapshot(self, name: str) -> ScopeSnapshot | None:
        """The pre-delete scope snapshot tracked for *name* (read-only use)."""
        return self._scope_snapshots.get(name)

    def current_lsn(self) -> int:
        """The log position maintenance is stamped against right now."""
        if self.lsn_source is not None:
            return int(self.lsn_source())
        return self._local_lsn

    def pending_changes(self) -> list[str]:
        """Changed entity ids accumulated and not yet flushed."""
        return sorted(self._pending)

    def stale_views(self, now: float | None = None) -> list[str]:
        """Views whose wall-clock freshness SLA is violated at time *now*."""
        current = now if now is not None else self.clock()
        stale = []
        for name in self.catalog.names():
            definition = self.catalog.get(name)
            state = self.states.get(name)
            if definition.freshness_sla is None:
                continue
            if state is None or not state.materialized:
                stale.append(name)
                continue
            if current - state.last_built_at > definition.freshness_sla:
                stale.append(name)
        return stale

    def lagging_views(self, head_lsn: int | None = None) -> dict[str, int]:
        """Materialized views behind *head_lsn*, and how many log positions."""
        head = head_lsn if head_lsn is not None else self.current_lsn()
        return {
            name: head - state.built_at_lsn
            for name, state in sorted(self.states.items())
            if state.materialized and state.built_at_lsn < head
        }

    def stats(self) -> dict[str, float]:
        """Manager-wide maintenance counters (the incremental-vs-rebuild proof).

        ``full_rebuilds`` counts maintenance runs that fell back to the
        ``create`` procedure, ``incremental_applies`` the runs served by
        ``apply_delta``/``update``; a delta-only workload over views with
        working incremental procedures keeps ``full_rebuilds`` at zero.
        ``delta_rows_journaled`` totals the entities across journaled
        maintenance deltas (the shipped change volume) and
        ``noop_maintenance`` counts incremental runs whose journaled delta
        came out empty — affected views whose rows did not actually change.
        Mirrored into the metadata store's serving-metrics namespace under
        component ``"view_manager"`` after every materialize and flush.
        """
        with self._counters_lock:
            return {
                "flushes": self.flushes,
                "deltas_observed": self.deltas_observed,
                "maintenance_decisions": self.maintenance_decisions,
                "maintenance_skips": self.maintenance_skips,
                "maintenance_rebuilds": self.maintenance_rebuilds,
                "full_rebuilds": self.full_rebuilds,
                "incremental_applies": self.incremental_applies,
                "delta_rows_journaled": self.delta_rows_journaled,
                "noop_maintenance": self.noop_maintenance,
            }

    def maintenance_stats(self) -> dict[str, dict[str, object]]:
        """Per-view lifecycle counters proving the work selectivity avoided."""
        return {
            name: {
                "materialized": state.materialized,
                "builds": state.builds,
                "incremental_updates": state.incremental_updates,
                "delta_applies": state.delta_applies,
                "skipped_updates": state.skipped_updates,
                "invalidations": state.invalidations,
                "built_at_lsn": state.built_at_lsn,
                "journal_entries": len(state.journal.entries),
                "journal_floor_lsn": state.journal.floor_lsn,
                "journal_compactions": state.journal.compactions,
            }
            for name, state in sorted(self.states.items())
        }

    # -------------------------------------------------------------- #
    # internals
    # -------------------------------------------------------------- #
    def close(self) -> None:
        """Release the flush thread pool (idempotent; recreated on demand).

        Called automatically when a flush fails (so failure paths never leak
        worker threads) and by ``with ViewManager(...)``; long-lived owners
        should call it on teardown.  ``shutdown(wait=True)`` makes the
        lifecycle deterministic: after close returns, no ``view-flush``
        thread is alive.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ViewManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _flush_pool(self) -> ThreadPoolExecutor | None:
        """The manager-lifetime flush pool (lazily created, reused per flush)."""
        if self.max_workers is None or self.max_workers <= 1:
            return None
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="view-flush"
            )
            # Reap the workers when the manager is collected, not at exit.
            weakref.finalize(self, self._pool.shutdown, wait=False)
        return self._pool

    def _state_lock(self, name: str) -> threading.Lock:
        with self._locks_guard:
            lock = self._state_locks.get(name)
            if lock is None:
                lock = self._state_locks[name] = threading.Lock()
        return lock

    def _has_materialized(self) -> bool:
        return any(state.materialized for state in self.states.values())

    def _record_watermark(self, name: str, state: ViewState) -> None:
        if self.metadata is not None:
            self.metadata.update_view_watermark(name, state.built_at_lsn)
            self.metadata.update_view_journal_mark(
                name, state.journal.high_water_mark()
            )

    def _record_stats(self) -> None:
        if self.metadata is not None:
            self.metadata.update_serving_metrics("view_manager", self.stats())

    def _clear_watermark(self, name: str) -> None:
        if self.metadata is not None:
            self.metadata.clear_view_watermark(name)
            self.metadata.clear_view_journal_mark(name)
            self.metadata.clear_view_checksum(name)

    def _artifacts(self) -> dict[str, object]:
        return {
            name: state.artifact
            for name, state in self.states.items()
            if state.materialized
        }
