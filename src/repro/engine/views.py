"""KG views: catalog, dependency graph, materialization, incremental updates.

Section 3.2: a view is *any* transformation of the graph — subgraph views,
schematized relational views, aggregates, iterative algorithms (PageRank), or
alternative representations (embeddings).  View definitions are scripted
against the target engine's native APIs and provide three procedures (create,
update-given-changed-entity-ids, drop).  Definitions live in a central view
catalog with their dependencies; the View Manager coordinates execution over
the dependency graph, which enables the 26% runtime saving from reusing shared
intermediate views reported in the paper (the VIEWDEP benchmark re-measures
this effect).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import networkx as nx

from repro.errors import ViewError


@dataclass
class ViewContext:
    """Execution context handed to view procedures.

    ``engines`` exposes the Graph Engine's stores by name (``analytics``,
    ``entity_store``, ``text_index``, ``vector_db``, ``triples``, ...);
    ``artifacts`` holds the materialized results of dependency views.
    """

    engines: dict[str, object] = field(default_factory=dict)
    artifacts: dict[str, object] = field(default_factory=dict)

    def engine(self, name: str) -> object:
        """Return the engine registered under *name*."""
        try:
            return self.engines[name]
        except KeyError:
            raise ViewError(f"no engine named {name!r} available to views") from None

    def artifact(self, view_name: str) -> object:
        """Return the materialized artifact of a dependency view."""
        try:
            return self.artifacts[view_name]
        except KeyError:
            raise ViewError(
                f"view dependency {view_name!r} has not been materialized"
            ) from None


CreateProcedure = Callable[[ViewContext], object]
UpdateProcedure = Callable[[ViewContext, list[str]], object]
DropProcedure = Callable[[ViewContext], None]


@dataclass
class ViewDefinition:
    """A registered view: procedures plus dependency and SLA metadata."""

    name: str
    engine: str
    create: CreateProcedure
    update: UpdateProcedure | None = None
    drop: DropProcedure | None = None
    dependencies: tuple[str, ...] = ()
    freshness_sla: float | None = None     # seconds of staleness tolerated
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ViewError("view name must be non-empty")
        if not callable(self.create):
            raise ViewError(f"view {self.name!r} needs a callable create procedure")


@dataclass
class ViewState:
    """Runtime state of one registered view."""

    materialized: bool = False
    artifact: object = None
    last_built_at: float = 0.0
    last_build_seconds: float = 0.0
    builds: int = 0
    incremental_updates: int = 0


class ViewCatalog:
    """Central registry of view definitions and their dependency graph."""

    def __init__(self) -> None:
        self._definitions: dict[str, ViewDefinition] = {}

    def register(self, definition: ViewDefinition) -> ViewDefinition:
        """Register a view; dependencies must already be registered."""
        for dependency in definition.dependencies:
            if dependency not in self._definitions:
                raise ViewError(
                    f"view {definition.name!r} depends on unknown view {dependency!r}"
                )
        self._definitions[definition.name] = definition
        return definition

    def get(self, name: str) -> ViewDefinition:
        """Return the definition registered under *name*."""
        try:
            return self._definitions[name]
        except KeyError:
            raise ViewError(f"unknown view {name!r}") from None

    def names(self) -> list[str]:
        """All registered view names."""
        return sorted(self._definitions)

    def dependency_graph(self) -> nx.DiGraph:
        """Directed graph with an edge dependency → dependent view."""
        graph = nx.DiGraph()
        for name, definition in self._definitions.items():
            graph.add_node(name)
            for dependency in definition.dependencies:
                graph.add_edge(dependency, name)
        return graph

    def execution_order(self, targets: Iterable[str] | None = None) -> list[str]:
        """Topological execution order covering *targets* and their dependencies."""
        graph = self.dependency_graph()
        if not nx.is_directed_acyclic_graph(graph):
            raise ViewError("view dependency graph contains a cycle")
        if targets is None:
            return list(nx.topological_sort(graph))
        needed: set[str] = set()
        frontier = list(targets)
        while frontier:
            name = frontier.pop()
            if name in needed:
                continue
            needed.add(name)
            frontier.extend(self.get(name).dependencies)
        return [name for name in nx.topological_sort(graph) if name in needed]

    def dependents_of(self, name: str) -> list[str]:
        """Views that (transitively) depend on *name*."""
        graph = self.dependency_graph()
        if name not in graph:
            return []
        return sorted(nx.descendants(graph, name))

    def __contains__(self, name: object) -> bool:
        return name in self._definitions

    def __len__(self) -> int:
        return len(self._definitions)


class ViewManager:
    """Materialize and maintain views over the Graph Engine's stores."""

    def __init__(self, catalog: ViewCatalog, engines: dict[str, object]) -> None:
        self.catalog = catalog
        self.engines = engines
        self.states: dict[str, ViewState] = {}

    # -------------------------------------------------------------- #
    # materialization
    # -------------------------------------------------------------- #
    def materialize(
        self, targets: Sequence[str] | None = None, reuse_shared: bool = True
    ) -> dict[str, float]:
        """Materialize the target views (or all) and return per-view seconds.

        With ``reuse_shared=True`` every view in the dependency closure is
        built exactly once and its artifact reused by all dependents — the
        multi-query-optimization practice behind the paper's 26% saving.  With
        ``reuse_shared=False`` each target rebuilds its own dependency chain,
        emulating the naive one-pipeline-per-view deployment.
        """
        timings: dict[str, float] = {}
        if reuse_shared:
            order = self.catalog.execution_order(targets)
            context = ViewContext(engines=self.engines)
            for name in order:
                seconds = self._build_view(name, context)
                timings[name] = timings.get(name, 0.0) + seconds
            return timings

        target_names = list(targets) if targets is not None else self.catalog.names()
        for target in target_names:
            context = ViewContext(engines=self.engines)
            for name in self.catalog.execution_order([target]):
                seconds = self._build_view(name, context)
                timings[name] = timings.get(name, 0.0) + seconds
        return timings

    def _build_view(self, name: str, context: ViewContext) -> float:
        definition = self.catalog.get(name)
        started = time.perf_counter()
        artifact = definition.create(context)
        elapsed = time.perf_counter() - started
        context.artifacts[name] = artifact
        state = self.states.setdefault(name, ViewState())
        state.materialized = True
        state.artifact = artifact
        state.last_built_at = time.time()
        state.last_build_seconds = elapsed
        state.builds += 1
        return elapsed

    # -------------------------------------------------------------- #
    # incremental maintenance
    # -------------------------------------------------------------- #
    def update(self, changed_entity_ids: Sequence[str]) -> dict[str, float]:
        """Incrementally update every materialized view for the changed entities.

        Views without an ``update`` procedure are rebuilt from scratch, which
        is the fallback the paper allows for non-incrementally-maintainable
        views (e.g. iterative algorithms).
        """
        timings: dict[str, float] = {}
        context = ViewContext(engines=self.engines, artifacts=self._artifacts())
        for name in self.catalog.execution_order():
            state = self.states.get(name)
            if state is None or not state.materialized:
                continue
            definition = self.catalog.get(name)
            started = time.perf_counter()
            if definition.update is not None:
                artifact = definition.update(context, list(changed_entity_ids))
                state.incremental_updates += 1
            else:
                artifact = definition.create(context)
                state.builds += 1
            elapsed = time.perf_counter() - started
            if artifact is not None:
                state.artifact = artifact
                context.artifacts[name] = artifact
            state.last_built_at = time.time()
            timings[name] = elapsed
        return timings

    def drop(self, name: str) -> None:
        """Drop one view's materialization (calls its drop procedure if any)."""
        definition = self.catalog.get(name)
        state = self.states.get(name)
        if definition.drop is not None and state is not None and state.materialized:
            definition.drop(ViewContext(engines=self.engines, artifacts=self._artifacts()))
        self.states.pop(name, None)

    # -------------------------------------------------------------- #
    # access
    # -------------------------------------------------------------- #
    def artifact(self, name: str) -> object:
        """Return the materialized artifact of *name*."""
        state = self.states.get(name)
        if state is None or not state.materialized:
            raise ViewError(f"view {name!r} has not been materialized")
        return state.artifact

    def is_materialized(self, name: str) -> bool:
        """Whether *name* currently has a materialized artifact."""
        state = self.states.get(name)
        return bool(state and state.materialized)

    def stale_views(self, now: float | None = None) -> list[str]:
        """Views whose freshness SLA is violated at time *now*."""
        current = now if now is not None else time.time()
        stale = []
        for name in self.catalog.names():
            definition = self.catalog.get(name)
            state = self.states.get(name)
            if definition.freshness_sla is None:
                continue
            if state is None or not state.materialized:
                stale.append(name)
                continue
            if current - state.last_built_at > definition.freshness_sla:
                stale.append(name)
        return stale

    def _artifacts(self) -> dict[str, object]:
        return {
            name: state.artifact
            for name, state in self.states.items()
            if state.materialized
        }
