"""Durable, ordered operation log with log sequence numbers (Section 3.1).

A distributed shared log coordinates continuous ingest in Saga: the KG
construction pipeline is the sole producer, every storage engine replays the
same operations in the same order, and log sequence numbers (LSNs) act as the
distributed synchronization primitive that lets consumers reason about store
freshness.

This module provides an in-process implementation with the same contract:
append-only, strictly increasing LSNs, replay from any LSN, and optional
file-backed durability so a restarted process can recover the log.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.errors import LogError


@dataclass(frozen=True)
class LogRecord:
    """One durable operation in the shared log."""

    lsn: int
    operation: str               # e.g. "ingest_delta", "overwrite_partition", "curation"
    source_id: str = ""
    payload_key: str = ""        # reference into the staging object store
    metadata: dict = field(default_factory=dict)

    def to_json(self) -> str:
        """Serialize the record to one JSON line."""
        return json.dumps(
            {
                "lsn": self.lsn,
                "operation": self.operation,
                "source_id": self.source_id,
                "payload_key": self.payload_key,
                "metadata": self.metadata,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "LogRecord":
        """Deserialize a record from :meth:`to_json` output."""
        data = json.loads(line)
        return cls(
            lsn=int(data["lsn"]),
            operation=data["operation"],
            source_id=data.get("source_id", ""),
            payload_key=data.get("payload_key", ""),
            metadata=data.get("metadata", {}),
        )


class OperationLog:
    """Append-only operation log with monotonically increasing LSNs."""

    def __init__(self, path: str | Path | None = None) -> None:
        self._records: list[LogRecord] = []
        self._path = Path(path) if path is not None else None
        if self._path is not None and self._path.exists():
            self._recover()

    # -------------------------------------------------------------- #
    # producing
    # -------------------------------------------------------------- #
    def append(
        self,
        operation: str,
        source_id: str = "",
        payload_key: str = "",
        metadata: dict | None = None,
    ) -> LogRecord:
        """Append an operation and return its durable record."""
        if not operation:
            raise LogError("operation name must be non-empty")
        record = LogRecord(
            lsn=self.head_lsn() + 1,
            operation=operation,
            source_id=source_id,
            payload_key=payload_key,
            metadata=metadata or {},
        )
        self._records.append(record)
        if self._path is not None:
            try:
                with open(self._path, "a", encoding="utf-8") as handle:
                    handle.write(record.to_json() + "\n")
            except OSError as exc:
                raise LogError(f"cannot persist log record: {exc}") from exc
        return record

    # -------------------------------------------------------------- #
    # consuming
    # -------------------------------------------------------------- #
    def head_lsn(self) -> int:
        """LSN of the most recent record (0 when the log is empty)."""
        return self._records[-1].lsn if self._records else 0

    def read_from(self, lsn_exclusive: int) -> list[LogRecord]:
        """Return every record with LSN strictly greater than *lsn_exclusive*."""
        return [record for record in self._records if record.lsn > lsn_exclusive]

    def get(self, lsn: int) -> LogRecord:
        """Return the record with exactly *lsn*."""
        index = lsn - 1
        if index < 0 or index >= len(self._records):
            raise LogError(f"no log record with LSN {lsn}")
        record = self._records[index]
        if record.lsn != lsn:
            raise LogError(f"log is corrupted around LSN {lsn}")
        return record

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(list(self._records))

    def __len__(self) -> int:
        return len(self._records)

    # -------------------------------------------------------------- #
    # recovery
    # -------------------------------------------------------------- #
    def _recover(self) -> None:
        try:
            lines = self._path.read_text(encoding="utf-8").splitlines()
        except OSError as exc:
            raise LogError(f"cannot recover log from {self._path}: {exc}") from exc
        expected = 1
        for line in lines:
            if not line.strip():
                continue
            record = LogRecord.from_json(line)
            if record.lsn != expected:
                raise LogError(
                    f"log recovery found LSN {record.lsn}, expected {expected}"
                )
            self._records.append(record)
            expected += 1
